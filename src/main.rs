//! `wsmed` — an interactive shell for the WSMED mediator.
//!
//! ```text
//! cargo run --release -- [--scale 0.002] [--dataset paper|small|tiny]
//! ```
//!
//! ```text
//! wsmed> views
//! wsmed> mode adaptive p=2
//! wsmed> select gp.ToState, gp.zip From GetAllStates gs, ...
//! wsmed> tree
//! wsmed> metrics
//! ```

use std::io::{BufRead, Write};

use wsmed::core::{paper, AdaptiveConfig, ExecutionReport, FanoutVector, RouterPolicy};
use wsmed::netsim::{FaultSpec, ProviderSpec, TopologyAction, TopologyScenario};
use wsmed::services::{calibration, DatasetConfig};

/// How queries are executed.
#[derive(Debug, Clone, PartialEq)]
enum Mode {
    Central,
    Parallel(FanoutVector),
    Adaptive(AdaptiveConfig),
    /// Plans chosen by the mediator's installed planner policy
    /// (`plan heuristic|cost|cost+prune`).
    Planned,
}

struct Shell {
    setup: paper::PaperSetup,
    scale: f64,
    dataset_name: String,
    mode: Mode,
    last_tree: Option<wsmed::core::TreeSnapshot>,
    last_resilience: Option<wsmed::core::ResilienceStats>,
    /// Trace of the most recent traced query (kept across untraced ones),
    /// for `trace dump`.
    last_trace: Option<std::sync::Arc<wsmed::core::TraceLog>>,
}

fn main() {
    let mut scale = 0.002;
    let mut dataset_name = "small".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a float")
            }
            "--dataset" => dataset_name = args.next().expect("--dataset needs a name"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut shell = Shell::new(scale, dataset_name);
    println!("WSMED interactive shell — type `help` for commands, `quit` to exit.");
    println!(
        "simulated web at scale {} ({} dataset); views: {:?}\n",
        shell.scale,
        shell.dataset_name,
        shell.setup.wsmed.owf_names()
    );

    let stdin = std::io::stdin();
    loop {
        print!("wsmed> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        if !shell.dispatch(line.trim()) {
            break;
        }
    }
}

impl Shell {
    fn new(scale: f64, dataset_name: String) -> Self {
        let setup = paper::setup(scale, dataset_by_name(&dataset_name));
        Shell {
            setup,
            scale,
            dataset_name,
            mode: Mode::Adaptive(AdaptiveConfig::default()),
            last_tree: None,
            last_resilience: None,
            last_trace: None,
        }
    }

    /// Executes one command; returns `false` to exit the shell.
    fn dispatch(&mut self, line: &str) -> bool {
        let lower = line.to_ascii_lowercase();
        match () {
            _ if line.is_empty() => {}
            _ if lower == "quit" || lower == "exit" => return false,
            _ if lower == "help" => print_help(),
            _ if lower == "views" => self.cmd_views(),
            _ if lower == "metrics" => self.cmd_metrics(),
            _ if lower == "tree" => self.cmd_tree(),
            _ if lower == "query1" => self.run_sql(paper::QUERY1_SQL),
            _ if lower == "query2" => self.run_sql(paper::QUERY2_SQL),
            _ if lower == "query3" => self.run_sql(paper::QUERY3_SQL),
            _ if lower.starts_with("mode") => self.cmd_mode(line),
            _ if lower.starts_with("plan") => self.cmd_plan(line),
            _ if lower.starts_with("explain") => self.cmd_explain(line),
            _ if lower.starts_with("scale") => self.cmd_scale(line),
            _ if lower.starts_with("dataset") => self.cmd_dataset(line),
            _ if lower.starts_with("fault") => self.cmd_fault(line),
            _ if lower.starts_with("cache") => self.cmd_cache(line),
            _ if lower.starts_with("pool") => self.cmd_pool(line),
            _ if lower.starts_with("batch") => self.cmd_batch(line),
            _ if lower.starts_with("retry") => self.cmd_retry(line),
            _ if lower.starts_with("resilience") => self.cmd_resilience(line),
            _ if lower.starts_with("trace") => self.cmd_trace(line),
            _ if lower.starts_with("mq") => self.cmd_mq(line),
            _ if lower.starts_with("load") => self.cmd_load(line),
            _ if lower.starts_with("topology") => self.cmd_topology(line),
            _ if lower.starts_with("route") => self.cmd_route(line),
            _ if lower.starts_with("select") => self.run_sql(line),
            _ => println!("unknown command; try `help`"),
        }
        true
    }

    fn cmd_views(&self) {
        for name in self.setup.wsmed.owf_names() {
            let owf = self
                .setup
                .wsmed
                .owfs()
                .get(name)
                .expect("listed view exists");
            println!("{name}{}", owf.view_schema());
        }
    }

    fn cmd_metrics(&self) {
        // Per-provider retry/breaker counters come from the last report;
        // calls/faults/timeouts are cumulative network-side counters.
        let res: std::collections::BTreeMap<&str, &wsmed::core::ProviderResilience> = self
            .last_resilience
            .iter()
            .flat_map(|r| r.per_provider.iter())
            .map(|(name, pr)| (name.as_str(), pr))
            .collect();
        println!(
            "{:<22} {:>8} {:>8} {:>9} {:>13} {:>14} {:>8} {:>10}",
            "provider",
            "calls",
            "faults",
            "timeouts",
            "mean lat (s)",
            "max in-flight",
            "retries",
            "brk opens"
        );
        for (name, m) in self.setup.network.metrics_by_provider() {
            let pr = res.get(name.as_str());
            println!(
                "{name:<22} {:>8} {:>8} {:>9} {:>13.2} {:>14} {:>8} {:>10}",
                m.calls,
                m.faults,
                m.timeouts,
                m.mean_latency(),
                m.max_in_flight,
                pr.map_or(0, |p| p.retries),
                pr.map_or(0, |p| p.breaker_opens),
            );
        }
    }

    fn cmd_tree(&self) {
        match &self.last_tree {
            Some(tree) => {
                println!("{}", tree.describe());
                if tree.nodes.len() <= 40 {
                    print!("{}", tree.render_ascii());
                }
                for level in &tree.levels {
                    println!(
                        "  level {}: {} alive / {} ever ({}), avg fanout {:.1}",
                        level.level, level.alive, level.ever, level.pf_name, level.avg_fanout
                    );
                }
                println!(
                    "  adds {}, drops {}, peak {}",
                    tree.adds, tree.drops, tree.peak_alive
                );
                if !tree.adapt_events.is_empty() {
                    println!("  adaptation decisions (last 8):");
                    let skip = tree.adapt_events.len().saturating_sub(8);
                    for e in &tree.adapt_events[skip..] {
                        println!(
                            "    q{} L{}: {} ({:.4}s/tuple, {} children)",
                            e.process, e.level, e.decision, e.per_tuple_secs, e.alive
                        );
                    }
                }
            }
            None => println!("no query executed yet"),
        }
    }

    fn cmd_mode(&mut self, line: &str) {
        match parse_mode(line) {
            Ok(mode) => {
                println!("mode set: {mode:?}");
                self.mode = mode;
            }
            Err(msg) => println!("{msg}"),
        }
    }

    /// `plan explain <sql|queryN>` shows the planner's decision record;
    /// `plan heuristic|cost|cost+prune` installs the policy and switches to
    /// planned mode; `plan` / `plan show` prints the current policy.
    fn cmd_plan(&mut self, line: &str) {
        use wsmed::core::PlannerPolicy;
        let rest = line["plan".len()..].trim();
        if let Some(sql) = rest.strip_prefix("explain") {
            let sql = sql.trim();
            let sql = match sql.to_ascii_lowercase().as_str() {
                "query1" => paper::QUERY1_SQL,
                "query2" => paper::QUERY2_SQL,
                "query3" => paper::QUERY3_SQL,
                _ => sql,
            };
            if sql.is_empty() {
                println!("usage: plan explain <sql | query1 | query2 | query3>");
                return;
            }
            match self.setup.wsmed.plan_explain(sql) {
                Ok(explanation) => println!("{explanation}"),
                Err(e) => println!("error: {e}"),
            }
            return;
        }
        let policy = match rest {
            "heuristic" => PlannerPolicy::Heuristic,
            "cost" => PlannerPolicy::CostBased { prune: false },
            "cost+prune" => PlannerPolicy::CostBased { prune: true },
            "" | "show" => {
                println!(
                    "planner policy: {} (mode {:?})",
                    self.setup.wsmed.planner_policy().name(),
                    self.mode
                );
                return;
            }
            _ => {
                println!(
                    "usage: plan explain <sql|queryN> | plan heuristic|cost|cost+prune | plan show"
                );
                return;
            }
        };
        self.setup.wsmed.set_planner_policy(policy);
        self.mode = Mode::Planned;
        println!(
            "planner policy: {} — subsequent queries run planner-chosen plans",
            policy.name()
        );
    }

    fn cmd_explain(&self, line: &str) {
        let sql = line["explain".len()..].trim();
        let sql = match sql {
            "query1" => paper::QUERY1_SQL,
            "query2" => paper::QUERY2_SQL,
            "query3" => paper::QUERY3_SQL,
            other => other,
        };
        let fanouts = match &self.mode {
            Mode::Parallel(f) => Some(f.clone()),
            _ => Some(vec![2, 2]),
        };
        match self.setup.wsmed.explain(sql, fanouts.as_ref()) {
            Ok(text) => println!("{text}"),
            Err(e) => println!("error: {e}"),
        }
    }

    fn cmd_scale(&mut self, line: &str) {
        match line["scale".len()..].trim().parse::<f64>() {
            Ok(scale) if scale >= 0.0 => {
                self.scale = scale;
                self.setup = paper::setup(scale, dataset_by_name(&self.dataset_name));
                println!("rebuilt world at scale {scale}");
            }
            _ => println!("usage: scale <wall-seconds-per-model-second>"),
        }
    }

    fn cmd_dataset(&mut self, line: &str) {
        let name = line["dataset".len()..].trim();
        if matches!(name, "paper" | "small" | "tiny") {
            self.dataset_name = name.to_owned();
            self.setup = paper::setup(self.scale, dataset_by_name(name));
            println!("rebuilt world with {name} dataset");
        } else {
            println!("usage: dataset paper|small|tiny");
        }
    }

    fn cmd_fault(&mut self, line: &str) {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["fault", provider, "every", n] => {
                match (self.setup.network.provider(provider), n.parse::<u64>()) {
                    (Ok(p), Ok(n)) if n > 0 => {
                        p.set_fault(FaultSpec::every(n));
                        println!("{provider} now fails every {n}th call");
                    }
                    _ => println!("usage: fault <provider> every <n>   (see `metrics` for names)"),
                }
            }
            ["fault", provider, "clear"] => match self.setup.network.provider(provider) {
                Ok(p) => {
                    p.set_fault(FaultSpec::none());
                    println!("{provider} faults cleared");
                }
                Err(e) => println!("{e}"),
            },
            ["fault", provider, "hang", "every", n] => {
                match (self.setup.network.provider(provider), n.parse::<u64>()) {
                    (Ok(p), Ok(n)) if n > 0 => {
                        p.set_fault(FaultSpec::hang_every(n));
                        println!(
                            "{provider} now hangs every {n}th call — observable only \
                             through a deadline (`resilience deadline <s>`)"
                        );
                    }
                    _ => println!("usage: fault <provider> hang every <n>"),
                }
            }
            ["fault", provider, "down", t0, t1] => {
                match (
                    self.setup.network.provider(provider),
                    t0.parse::<f64>(),
                    t1.parse::<f64>(),
                ) {
                    (Ok(p), Ok(t0), Ok(t1)) if t1 > t0 => {
                        p.set_fault(FaultSpec {
                            down_between: vec![(t0, t1)],
                            ..FaultSpec::default()
                        });
                        println!("{provider} down for model time [{t0}, {t1})");
                    }
                    _ => println!("usage: fault <provider> down <model-t0> <model-t1>"),
                }
            }
            ["fault", provider, "brownout", t0, t1, factor] => {
                match (
                    self.setup.network.provider(provider),
                    t0.parse::<f64>(),
                    t1.parse::<f64>(),
                    factor.parse::<f64>(),
                ) {
                    (Ok(p), Ok(t0), Ok(t1), Ok(f)) if t1 > t0 && f >= 1.0 => {
                        p.set_fault(FaultSpec {
                            brownout_between: vec![(t0, t1)],
                            brownout_factor: f,
                            ..FaultSpec::default()
                        });
                        println!("{provider} browned out ×{f} for model time [{t0}, {t1})");
                    }
                    _ => println!(
                        "usage: fault <provider> brownout <model-t0> <model-t1> <factor ≥ 1>"
                    ),
                }
            }
            _ => println!(
                "usage: fault <provider> every <n> | hang every <n> | \
                 down <t0> <t1> | brownout <t0> <t1> <f> | clear"
            ),
        }
    }

    fn cmd_cache(&mut self, line: &str) {
        match line["cache".len()..].trim() {
            "on" => {
                self.setup.wsmed.enable_call_cache(true);
                println!("per-run call cache enabled (sharded, single-flight)");
            }
            "cross" => {
                self.setup
                    .wsmed
                    .set_cache_policy(Some(wsmed::core::CachePolicy::cross_run()));
                println!("cross-run call cache enabled: entries survive between queries");
            }
            "off" => {
                self.setup.wsmed.enable_call_cache(false);
                println!("call cache disabled");
            }
            _ => println!("usage: cache on|off|cross"),
        }
    }

    fn cmd_batch(&mut self, line: &str) {
        let args = line["batch".len()..].trim();
        let (n_str, columnar) = match args.strip_suffix("columnar") {
            Some(rest) => (rest.trim(), true),
            None => (args, false),
        };
        match n_str.parse::<usize>() {
            Ok(n) if n >= 1 => {
                let policy = if columnar {
                    wsmed::core::BatchPolicy::columnar(n)
                } else {
                    wsmed::core::BatchPolicy::uniform(n)
                };
                self.setup.wsmed.set_batch_policy(policy);
                println!(
                    "tuple shipping: up to {n} tuples per frame, {} wire layout",
                    if columnar {
                        "columnar (zero-copy decode)"
                    } else {
                        "per-row"
                    }
                );
            }
            _ => println!("usage: batch <n> [columnar]   (n ≥ 1; 1 = paper's per-tuple streaming)"),
        }
    }

    fn cmd_pool(&mut self, line: &str) {
        match line["pool".len()..].trim() {
            "on" => {
                self.setup.wsmed.enable_process_pool(true);
                println!("warm process pool enabled: idle query processes park at end of run");
            }
            "off" => {
                self.setup.wsmed.enable_process_pool(false);
                println!("process pool disabled; parked processes joined");
            }
            "status" => match self.setup.wsmed.process_pool() {
                None => println!("process pool: off"),
                Some(pool) => {
                    let policy = pool.policy();
                    let s = pool.stats();
                    println!(
                        "process pool: {} — {} idle parked (bounds {}/key, {} total{})",
                        if policy.enabled {
                            "on"
                        } else {
                            "installed, disabled"
                        },
                        pool.idle_total(),
                        policy.max_idle_per_pf,
                        policy.max_idle_total,
                        policy
                            .idle_ttl_model_secs
                            .map(|t| format!(", ttl {t} model-s"))
                            .unwrap_or_default(),
                    );
                    println!(
                        "last run: {} warm acquire(s), {} cold spawn(s), \
                         {:.3} model-s startup saved, {} eviction(s)",
                        s.warm_acquires, s.cold_spawns, s.startup_model_secs_saved, s.evictions
                    );
                }
            },
            _ => println!("usage: pool on|off|status"),
        }
    }

    fn cmd_retry(&mut self, line: &str) {
        match line["retry".len()..].trim().parse::<usize>() {
            Ok(attempts) if attempts >= 1 => {
                self.setup
                    .wsmed
                    .set_retry_policy(wsmed::core::RetryPolicy::attempts(attempts));
                println!("transient faults now retried: {attempts} attempt(s) per call");
            }
            _ => println!("usage: retry <attempts ≥ 1>"),
        }
    }

    fn cmd_resilience(&mut self, line: &str) {
        let parts: Vec<&str> = line.split_whitespace().collect();
        let mut policy = self.setup.wsmed.resilience_policy();
        match parts.as_slice() {
            ["resilience"] | ["resilience", "show"] => {
                println!(
                    "attempts {}, backoff {} model-s ×{} (jitter {}), deadline {}, \
                     breaker {}, hedge {}, on failure {}",
                    policy.max_attempts,
                    policy.backoff_model_secs,
                    policy.backoff_multiplier,
                    policy.backoff_jitter_frac,
                    policy
                        .deadline_model_secs
                        .map(|d| format!("{d} model-s"))
                        .unwrap_or_else(|| "off".into()),
                    policy
                        .breaker
                        .map(|b| format!(
                            "on (trip {}, cooldown {} model-s)",
                            b.failure_threshold, b.cooldown_model_secs
                        ))
                        .unwrap_or_else(|| "off".into()),
                    policy
                        .hedge
                        .map(|h| format!("after {} model-s", h.delay_model_secs))
                        .unwrap_or_else(|| "off".into()),
                    match policy.failure_mode {
                        wsmed::core::FailureMode::Abort => "abort",
                        wsmed::core::FailureMode::Partial => "drop parameter (partial)",
                    },
                );
                return;
            }
            ["resilience", "deadline", "off"] => {
                policy.deadline_model_secs = None;
                println!("per-call deadline off");
            }
            ["resilience", "deadline", d] => match d.parse::<f64>() {
                Ok(d) if d > 0.0 => {
                    policy.deadline_model_secs = Some(d);
                    println!("per-call deadline: {d} model-s (hung calls time out)");
                }
                _ => {
                    println!("usage: resilience deadline <model-secs > 0 | off>");
                    return;
                }
            },
            ["resilience", "breaker", "on"] => {
                policy.breaker = Some(wsmed::core::BreakerPolicy::default());
                let b = policy.breaker.unwrap();
                println!(
                    "circuit breaker on: opens after {} consecutive failures, \
                     half-open probe after {} model-s",
                    b.failure_threshold, b.cooldown_model_secs
                );
            }
            ["resilience", "breaker", "off"] => {
                policy.breaker = None;
                println!("circuit breaker off");
            }
            ["resilience", "hedge", "off"] => {
                policy.hedge = None;
                println!("hedged requests off");
            }
            ["resilience", "hedge", d] => match d.parse::<f64>() {
                Ok(d) if d > 0.0 => {
                    policy.hedge = Some(wsmed::core::HedgePolicy {
                        delay_model_secs: d,
                    });
                    println!("hedged requests: backup call after {d} model-s, first success wins");
                }
                _ => {
                    println!("usage: resilience hedge <model-secs > 0 | off>");
                    return;
                }
            },
            ["resilience", "mode", "abort"] => {
                policy.failure_mode = wsmed::core::FailureMode::Abort;
                println!("failure mode: abort the query on an exhausted call");
            }
            ["resilience", "mode", "partial"] => {
                policy.failure_mode = wsmed::core::FailureMode::Partial;
                println!(
                    "failure mode: drop the failing parameter tuple and continue \
                     (skips reported per OWF)"
                );
            }
            _ => {
                println!(
                    "usage: resilience [show] | deadline <s|off> | breaker on|off | \
                     hedge <s|off> | mode abort|partial"
                );
                return;
            }
        }
        self.setup.wsmed.set_resilience_policy(policy);
    }

    fn cmd_trace(&mut self, line: &str) {
        match line["trace".len()..].trim() {
            "on" => {
                self.setup
                    .wsmed
                    .set_trace_policy(wsmed::core::TracePolicy::enabled());
                println!("structured tracing enabled for subsequent queries");
            }
            "off" => {
                self.setup
                    .wsmed
                    .set_trace_policy(wsmed::core::TracePolicy::default());
                println!("structured tracing disabled");
            }
            "dump" => match self.last_trace.clone() {
                None => println!("no traced query yet — `trace on`, then run one"),
                Some(trace) => {
                    let events = trace.events();
                    let violations = wsmed::core::obs::validate(&events);
                    println!(
                        "{} event(s), {} dropped, {} invariant violation(s)",
                        events.len(),
                        trace.dropped(),
                        violations.len()
                    );
                    for v in &violations {
                        println!("  violation: {v}");
                    }
                    print!("{}", wsmed::core::obs::replay_transcript(&events));
                    std::fs::create_dir_all("target/experiments").ok();
                    let path = "target/experiments/shell_trace.jsonl";
                    match std::fs::write(path, trace.to_jsonl()) {
                        Ok(()) => println!("JSONL written to {path}"),
                        Err(e) => println!("could not write {path}: {e}"),
                    }
                }
            },
            _ => println!("usage: trace on|off|dump"),
        }
    }

    fn run_sql(&mut self, sql: &str) {
        let t0 = std::time::Instant::now();
        let plan = match &self.mode {
            Mode::Central => self.setup.wsmed.compile_central(sql),
            Mode::Parallel(fanouts) => self.setup.wsmed.compile_parallel(sql, fanouts),
            Mode::Adaptive(config) => self.setup.wsmed.compile_adaptive(sql, config),
            Mode::Planned => self.setup.wsmed.plan_query(sql),
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let (result, trace) = self.setup.wsmed.execute_traced(&plan);
        if trace.is_some() {
            self.last_trace = trace;
        }
        match result {
            Ok(report) => {
                print_rows(&report);
                let model = report
                    .model_seconds
                    .map(|m| format!(" ≈ {m:.1} model-s"))
                    .unwrap_or_default();
                println!(
                    "{} row(s) in {:?}{model} — {} web service calls, tree {}",
                    report.row_count(),
                    t0.elapsed(),
                    report.ws_calls,
                    report.tree.describe()
                );
                let c = &report.cache;
                if c.hits + c.misses + c.short_circuits > 0 {
                    println!(
                        "cache: {} hits / {} misses, {} dedup wait(s), \
                         {} dispatch short-circuit(s), {} resident",
                        c.hits, c.misses, c.dedup_waits, c.short_circuits, c.entries
                    );
                }
                let p = &report.pool;
                if p.warm_acquires + p.cold_spawns > 0 {
                    println!(
                        "pool: {} warm / {} cold, {:.3} model-s startup saved",
                        p.warm_acquires, p.cold_spawns, p.startup_model_secs_saved
                    );
                }
                if report.pruned_params > 0 {
                    println!(
                        "semi-join pruning: {} parameter(s) dropped parent-side",
                        report.pruned_params
                    );
                }
                let r = &report.resilience;
                if !r.is_quiet() {
                    println!(
                        "resilience: {} retries, {} deadline(s) exceeded, {} hedge(s) \
                         ({} won), breaker {} open / {} reject(s), {} param(s) skipped",
                        r.retries,
                        r.deadline_exceeded,
                        r.hedges_launched,
                        r.hedge_wins,
                        r.breaker_opens,
                        r.breaker_rejections,
                        r.skipped_params
                    );
                    for (owf, n) in &r.skipped_by_owf {
                        println!("  skipped {n} parameter(s) at {owf}");
                    }
                }
                self.last_resilience = Some(report.resilience.clone());
                self.last_tree = Some(report.tree);
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `mq run <K> <sql>`: K concurrent executions of one query over the
    /// shared mediator, then per-query and shared-infrastructure stats.
    fn cmd_mq(&mut self, line: &str) {
        const USAGE: &str = "usage: mq run <K> <sql | query1 | query2 | query3>";
        let rest = line["mq".len()..].trim();
        let Some(rest) = rest.strip_prefix("run") else {
            println!("{USAGE}");
            return;
        };
        let Some((k_str, sql)) = rest.trim_start().split_once(char::is_whitespace) else {
            println!("{USAGE}");
            return;
        };
        let Ok(k) = k_str.parse::<usize>() else {
            println!("{USAGE}");
            return;
        };
        if k == 0 || k > 64 {
            println!("K must be between 1 and 64");
            return;
        }
        let sql = match sql.trim().to_ascii_lowercase().as_str() {
            "query1" => paper::QUERY1_SQL,
            "query2" => paper::QUERY2_SQL,
            "query3" => paper::QUERY3_SQL,
            _ => sql.trim(),
        };
        let med = &self.setup.wsmed;
        let plan = match &self.mode {
            Mode::Central => med.compile_central(sql),
            Mode::Parallel(fanouts) => med.compile_parallel(sql, fanouts),
            Mode::Adaptive(config) => med.compile_adaptive(sql, config),
            Mode::Planned => med.plan_query(sql),
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };

        let t0 = std::time::Instant::now();
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=k)
                .map(|q| {
                    let plan = &plan;
                    scope.spawn(move || med.execute_for(&format!("t{q}"), plan))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });
        let wall = t0.elapsed();

        for (q, result) in results.iter().enumerate() {
            match result {
                Ok(report) => {
                    let model = report
                        .model_seconds
                        .map(|m| format!(" ≈ {m:.1} model-s"))
                        .unwrap_or_default();
                    println!(
                        "  q{} (tenant t{}): {} row(s) in {:?}{model}, {} ws call(s), \
                         cache {}/{} ({} cross-query), pool {} warm / {} cold",
                        q + 1,
                        q + 1,
                        report.row_count(),
                        report.wall,
                        report.ws_calls,
                        report.cache.hits,
                        report.cache.misses,
                        report.cache.cross_query_hits,
                        report.pool.warm_acquires,
                        report.pool.cold_spawns,
                    );
                }
                Err(e) => println!("  q{} (tenant t{}): error: {e}", q + 1, q + 1),
            }
        }
        let model = if self.scale > 0.0 {
            format!(" ≈ {:.1} model-s", wall.as_secs_f64() / self.scale)
        } else {
            String::new()
        };
        println!("makespan: {wall:?}{model} for {k} concurrent quer(ies)");

        if let Some(cache) = med.call_cache() {
            let c = cache.stats();
            println!(
                "shared cache: {} hits / {} misses, {} dedup wait(s), \
                 {} cross-query hit(s), {} resident",
                c.hits, c.misses, c.dedup_waits, c.cross_query_hits, c.entries
            );
        }
        if let Some(pool) = med.process_pool() {
            let p = pool.stats();
            println!(
                "shared pool: {} parked, {} warm / {} cold, \
                 {:.3} model-s startup saved",
                pool.idle_total(),
                p.warm_acquires,
                p.cold_spawns,
                p.startup_model_secs_saved
            );
        }
        let b = med.breaker_totals();
        if b.opens + b.rejections > 0 {
            println!(
                "shared breakers: {} open(s), {} rejection(s) lifetime",
                b.opens, b.rejections
            );
        }
        let a = med.admission().stats();
        if a.shed_queries + a.shed_calls > 0 {
            println!(
                "admission: {} quer(ies) shed, {} call(s) shed",
                a.shed_queries, a.shed_calls
            );
        }

        if let Some(Ok(report)) = results.into_iter().find(|r| r.is_ok()) {
            self.last_resilience = Some(report.resilience.clone());
            self.last_tree = Some(report.tree);
        }
    }

    /// `load run <poisson|diurnal|square> <rate> <secs>`: replays a seeded
    /// open-loop workload against the live mediator (with whatever cache,
    /// pool, planner and resilience settings the shell has configured) and
    /// prints the per-phase percentile table.
    fn cmd_load(&mut self, line: &str) {
        use wsmed::trafficgen::{
            replay, ArrivalProfile, LoadReport, SubsystemCounters, Workload, WorkloadSpec,
        };
        const USAGE: &str = "usage: load run <poisson|diurnal|square> <rate> <secs>";
        let words: Vec<&str> = line.split_whitespace().collect();
        let ["load", "run", profile_name, rate_str, secs_str] = words.as_slice() else {
            println!("{USAGE}");
            return;
        };
        let (Ok(rate), Ok(secs)) = (rate_str.parse::<f64>(), secs_str.parse::<f64>()) else {
            println!("{USAGE}");
            return;
        };
        if !(rate > 0.0 && secs > 0.0) {
            println!("rate and secs must be positive");
            return;
        }
        let profile = match *profile_name {
            "poisson" => ArrivalProfile::Poisson { rate },
            "diurnal" => ArrivalProfile::Diurnal {
                trough_rate: 0.3 * rate,
                peak_rate: 1.7 * rate,
                period_model_secs: secs / 2.0,
            },
            "square" => ArrivalProfile::SquareWave {
                quiet_rate: 0.4 * rate,
                burst_rate: 3.0 * rate,
                period_model_secs: secs / 4.0,
                burst_fraction: 0.25,
            },
            _ => {
                println!("{USAGE}");
                return;
            }
        };
        let states: Vec<String> = self
            .setup
            .dataset
            .states()
            .iter()
            .map(|s| s.abbr.clone())
            .collect();
        let workload = Workload::generate(WorkloadSpec::standard(0x10AD, profile, secs), &states);
        println!(
            "replaying {} injection(s) over {secs} model s (wall ≈ {:.1}s)...",
            workload.injections.len(),
            secs * self.scale
        );
        let med = &self.setup.wsmed;
        let before = SubsystemCounters::collect(med, &self.setup.network);
        let outcomes = match replay(med, &workload, self.scale) {
            Ok(outcomes) => outcomes,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        let after = SubsystemCounters::collect(med, &self.setup.network);
        let report = LoadReport::build(
            "shell",
            &workload,
            &outcomes,
            self.scale,
            after.since(&before),
        );
        print!("{}", report.table());
        let c = &report.counters;
        println!(
            "counters: cache {}/{} ({} cross-query), pool {} warm / {} cold, \
             {} breaker open(s), {} quer(ies) / {} call(s) shed, \
             {} provider call(s), {} param(s) pruned",
            c.cache_hits,
            c.cache_misses,
            c.cross_query_hits,
            c.warm_acquires,
            c.cold_spawns,
            c.breaker_opens,
            c.shed_queries,
            c.shed_calls,
            c.provider_calls,
            c.pruned_params,
        );
        if self.scale == 0.0 {
            println!("note: scale 0 — latency columns are meaningless (sim does not sleep)");
        }
    }

    /// `topology show | replicate <provider> [n] | scenario <name>`:
    /// replicated provider groups with scripted elasticity. Scenarios are
    /// scheduled on the network's model clock, which only advances as
    /// queries charge work — run queries to drive the script forward.
    fn cmd_topology(&mut self, line: &str) {
        const USAGE: &str =
            "usage: topology show | replicate <provider> [n] | scenario flap|drain|brownout";
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["topology"] | ["topology", "show"] => {
                let names = self.setup.network.group_names();
                if names.is_empty() {
                    println!("no replica groups — `topology replicate <provider> [n]` creates one");
                    return;
                }
                for name in names {
                    let group = self
                        .setup
                        .network
                        .group(&name)
                        .expect("listed group exists");
                    println!(
                        "{name}: {} replica(s), effective capacity {}",
                        group.status().len(),
                        group.effective_capacity()
                    );
                    for s in group.status() {
                        let state = if s.standby {
                            "standby"
                        } else if s.active {
                            "active"
                        } else {
                            "left"
                        };
                        println!(
                            "  {:<26} {state:<8} capacity {:>2}, {} in flight",
                            s.replica, s.capacity, s.in_flight
                        );
                    }
                }
            }
            ["topology", "replicate", provider] | ["topology", "replicate", provider, _] => {
                let n = match parts.get(3) {
                    None => 2usize,
                    Some(v) => match v.parse() {
                        Ok(n) if (1..=8).contains(&n) => n,
                        _ => {
                            println!("replica count must be between 1 and 8");
                            return;
                        }
                    },
                };
                let Some(base) = calibration::paper_specs()
                    .into_iter()
                    .find(|s| s.name == *provider)
                else {
                    println!("unknown provider {provider:?}; `metrics` lists them");
                    return;
                };
                let extras: Vec<ProviderSpec> = (1..=n)
                    .map(|i| {
                        let mut spec = base.clone();
                        spec.name = format!("{provider}#{i}");
                        spec
                    })
                    .collect();
                match self.setup.network.replicate(provider, extras) {
                    Ok(group) => {
                        self.setup.wsmed.reseed_profiles();
                        println!(
                            "replica group {provider}: {} member(s), pooled capacity {} \
                             (planner reseeded; `route …` picks a policy)",
                            group.status().len(),
                            group.effective_capacity()
                        );
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            ["topology", "scenario", which] => {
                let names = self.setup.network.group_names();
                if names.is_empty() {
                    println!("no replica groups — `topology replicate <provider>` first");
                    return;
                }
                let start = self.setup.network.model_time() + 2.0;
                for name in names {
                    let group = self
                        .setup
                        .network
                        .group(&name)
                        .expect("listed group exists");
                    let extras: Vec<String> = group
                        .status()
                        .into_iter()
                        .map(|s| s.replica)
                        .filter(|r| r != &name)
                        .collect();
                    if extras.is_empty() {
                        println!("{name}: no extra replicas to script");
                        continue;
                    }
                    let scenario = match *which {
                        // One replica leaves, then rejoins 10 model-s later.
                        "flap" => TopologyScenario::flap(&extras[0], start, start + 10.0),
                        // Every extra replica drains away and stays gone.
                        "drain" => {
                            let mut s = TopologyScenario::new("drain");
                            for r in &extras {
                                s = s.at(start, TopologyAction::Leave { replica: r.clone() });
                            }
                            s
                        }
                        // Staggered ×4 slowdowns roll across the extras.
                        "brownout" => {
                            TopologyScenario::rolling_brownout(&extras, start, 5.0, 10.0, 4.0)
                        }
                        _ => {
                            println!("usage: topology scenario flap|drain|brownout");
                            return;
                        }
                    };
                    println!(
                        "{name}: scenario {:?} installed — {} event(s), first at \
                         model-t {start:.1} (queries drive the clock)",
                        scenario.name,
                        scenario.events.len()
                    );
                    group.install_scenario(scenario);
                }
            }
            _ => println!("{USAGE}"),
        }
    }

    /// `route weighted|least|locality|random|off|show`: client-side routing
    /// policy across replica groups. Changing it reseeds planner profiles so
    /// cost estimates see the group's pooled capacity.
    fn cmd_route(&mut self, line: &str) {
        let policy = match line["route".len()..].trim() {
            "" | "show" => {
                match self.setup.wsmed.router_policy() {
                    Some(p) => println!("router: {} across replica groups", p.name()),
                    None => println!("router: off (every call goes to the group primary)"),
                }
                return;
            }
            "off" => {
                self.setup.wsmed.set_router_policy(None);
                self.setup.wsmed.reseed_profiles();
                println!("router off: calls go to each group's primary replica");
                return;
            }
            "weighted" => RouterPolicy::Weighted,
            "least" | "least-in-flight" => RouterPolicy::LeastInFlight,
            "locality" | "locality-aware" => RouterPolicy::LocalityAware,
            "random" => RouterPolicy::Random,
            _ => {
                println!("usage: route weighted|least|locality|random|off|show");
                return;
            }
        };
        self.setup.wsmed.set_router_policy(Some(policy));
        self.setup.wsmed.reseed_profiles();
        println!(
            "router: {} — calls spread across replica group members \
             (per-replica breakers; hedges retarget)",
            policy.name()
        );
    }
}

fn dataset_by_name(name: &str) -> DatasetConfig {
    match name {
        "paper" => DatasetConfig::paper(),
        "tiny" => DatasetConfig::tiny(),
        _ => DatasetConfig::small(),
    }
}

/// Parses `mode central`, `mode parallel 5,4`, or
/// `mode adaptive [p=N] [drop] [threshold=F]`.
fn parse_mode(line: &str) -> Result<Mode, String> {
    let rest = line["mode".len()..].trim();
    let mut words = rest.split_whitespace();
    match words.next() {
        Some("central") => Ok(Mode::Central),
        Some("parallel") => {
            let spec = words
                .next()
                .ok_or("usage: mode parallel <fo1,fo2,...>")?;
            let fanouts: Result<Vec<usize>, _> =
                spec.split(',').map(|s| s.trim().parse::<usize>()).collect();
            match fanouts {
                Ok(f) if !f.is_empty() => Ok(Mode::Parallel(f)),
                _ => Err("usage: mode parallel <fo1,fo2,...>".into()),
            }
        }
        Some("adaptive") => {
            let mut config = AdaptiveConfig::default();
            for word in words {
                if let Some(p) = word.strip_prefix("p=") {
                    config.add_step =
                        p.parse().map_err(|_| format!("bad add step {p:?}"))?;
                } else if word == "drop" {
                    config.drop_enabled = true;
                } else if let Some(t) = word.strip_prefix("threshold=") {
                    config.threshold =
                        t.parse().map_err(|_| format!("bad threshold {t:?}"))?;
                } else {
                    return Err(format!("unknown adaptive option {word:?}"));
                }
            }
            Ok(Mode::Adaptive(config))
        }
        Some("planned") => Ok(Mode::Planned),
        _ => Err("usage: mode central | mode parallel <fo1,fo2> | mode adaptive [p=N] [drop] [threshold=F] | mode planned".into()),
    }
}

fn print_rows(report: &ExecutionReport) {
    println!("{}", report.column_names.join(" | "));
    let show = report.rows.len().min(20);
    for row in &report.rows[..show] {
        let cells: Vec<String> = row.values().iter().map(|v| v.render()).collect();
        println!("{}", cells.join(" | "));
    }
    if report.rows.len() > show {
        println!("… {} more rows", report.rows.len() - show);
    }
}

fn print_help() {
    println!(
        "\
commands:
  select …                         run an SQL query in the current mode
  query1 | query2                  run the paper's benchmark queries
  query3                           three-level aviation chain (extension)
  explain [query1|query2|<sql>]    show calculus, central and parallel plans
  mode central                     naive sequential execution
  mode parallel <fo1,fo2,…>        FF_APPLYP with a manual fanout vector
  mode adaptive [p=N] [drop] [threshold=F]
                                   AFF_APPLYP (default: p=2, no drop, 25%)
  mode planned                     run plans chosen by the planner policy
  plan heuristic|cost|cost+prune   install the planning policy (and switch
                                   to planned mode); `plan show` prints it
  plan explain <sql|queryN>        join order, section splits, estimated
                                   per-level cost, pushed semi-join filters
  views                            imported OWF views and their schemas
  metrics                          per-provider web service call metrics
  tree                             process tree of the last query
  scale <f>                        wall seconds per model second (rebuilds)
  dataset paper|small|tiny         dataset size (rebuilds)
  fault <provider> every <n>       inject faults; `fault <provider> clear`
  fault <provider> hang every <n>  hang calls (needs a deadline to observe)
  fault <provider> down <t0> <t1>  outage window on the provider model clock
  fault <provider> brownout <t0> <t1> <f>
                                   multiply latency ×f inside the window
  cache on|off|cross               sharded single-flight call cache
                                   (`cross` keeps entries across queries)
  pool on|off|status               warm process pool (reuses query
                                   processes + installed plans across runs)
  batch <n> [columnar]             tuples per shipped frame; `columnar`
                                   switches to whole-column zero-copy frames
  retry <n>                        attempts per call on transient faults
  resilience …                     deadline <s|off> | breaker on|off |
                                   hedge <s|off> | mode abort|partial | show
  trace on|off|dump                structured model-time execution traces
                                   (`dump` replays the last traced query
                                   and writes JSONL for trace_export --check)
  load run <profile> <rate> <secs> open-loop workload replay: seeded
                                   poisson|diurnal|square arrivals at
                                   <rate>/model-s for <secs> model-s, with
                                   per-phase latency percentiles
  mq run <K> <sql|queryN>          K concurrent executions over the shared
                                   mediator (cache/pool/breakers shared),
                                   with per-query + shared stats
  topology show                    replica groups: members, state, pooled
                                   capacity, in-flight calls
  topology replicate <prov> [n]    clone a provider into an n+1-member
                                   replica group (default n=2)
  topology scenario flap|drain|brownout
                                   script elasticity on the model clock:
                                   leave/rejoin, permanent drain, or
                                   staggered brownouts across the extras
  route weighted|least|locality    client-side routing across replicas
                                   (also: random | off | show)
  quit"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mode_variants() {
        assert_eq!(parse_mode("mode central").unwrap(), Mode::Central);
        assert_eq!(
            parse_mode("mode parallel 5,4").unwrap(),
            Mode::Parallel(vec![5, 4])
        );
        match parse_mode("mode adaptive p=3 drop threshold=0.1").unwrap() {
            Mode::Adaptive(c) => {
                assert_eq!(c.add_step, 3);
                assert!(c.drop_enabled);
                assert!((c.threshold - 0.1).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_mode("mode parallel").is_err());
        assert!(parse_mode("mode parallel x,y").is_err());
        assert!(parse_mode("mode warp").is_err());
        assert!(parse_mode("mode adaptive q=1").is_err());
    }

    #[test]
    fn dataset_names() {
        assert_eq!(dataset_by_name("paper").zips_per_state, 100);
        assert!(dataset_by_name("small").zips_per_state < 100);
        assert!(dataset_by_name("tiny").zips_per_state < 10);
    }

    #[test]
    fn shell_runs_query_and_tracks_tree() {
        let mut shell = Shell::new(0.0, "tiny".into());
        shell.mode = Mode::Parallel(vec![2, 2]);
        assert!(shell.dispatch("query2"));
        let tree = shell.last_tree.as_ref().expect("tree recorded");
        assert_eq!(tree.levels[1].alive, 2);
        // Mode changes and explain don't crash.
        assert!(shell.dispatch("mode adaptive p=1"));
        assert!(shell.dispatch("explain query1"));
        assert!(shell.dispatch("views"));
        assert!(shell.dispatch("metrics"));
        assert!(shell.dispatch("tree"));
        assert!(shell.dispatch("nonsense"));
        assert!(!shell.dispatch("quit"));
    }

    #[test]
    fn shell_cache_and_retry_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("cache on"));
        assert!(shell.dispatch("retry 3"));
        assert!(shell.dispatch("cache bogus"));
        assert!(shell.dispatch("retry zero"));
        shell.mode = Mode::Central;
        assert!(shell.dispatch("query2"));
        assert_eq!(shell.last_tree.as_ref().unwrap().total_alive(), 1);
        // Cross-run mode survives between queries.
        assert!(shell.dispatch("cache cross"));
        assert!(shell.dispatch("query2"));
        assert!(shell.dispatch("query2"));
        assert!(shell.dispatch("cache off"));
    }

    #[test]
    fn shell_pool_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("pool status")); // off by default
        assert!(shell.dispatch("pool on"));
        assert!(shell.dispatch("pool bogus"));
        shell.mode = Mode::Parallel(vec![2, 2]);
        assert!(shell.dispatch("query2"));
        assert!(shell.setup.wsmed.process_pool().unwrap().idle_total() > 0);
        assert!(shell.dispatch("query2"));
        // The rerun reused the parked tree: zero cold spawns.
        assert_eq!(
            shell
                .setup
                .wsmed
                .process_pool()
                .unwrap()
                .stats()
                .cold_spawns,
            0
        );
        assert!(shell.dispatch("pool status"));
        assert!(shell.dispatch("pool off"));
        assert!(shell.setup.wsmed.process_pool().is_none());
    }

    #[test]
    fn shell_trace_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("trace dump")); // nothing traced yet
        assert!(shell.dispatch("trace on"));
        shell.mode = Mode::Adaptive(AdaptiveConfig::default());
        assert!(shell.dispatch("query2"));
        let trace = shell.last_trace.clone().expect("trace stashed");
        assert!(!trace.events().is_empty());
        assert!(wsmed::core::obs::validate(&trace.events()).is_empty());
        assert!(shell.dispatch("trace dump"));
        assert!(shell.dispatch("trace off"));
        assert!(shell.dispatch("trace bogus"));
        // A query after `trace off` leaves the stashed trace untouched.
        assert!(shell.dispatch("query2"));
        assert!(shell.last_trace.is_some());
    }

    #[test]
    fn shell_plan_commands() {
        use wsmed::core::PlannerPolicy;
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("plan show")); // default policy, prints fine
        assert_eq!(shell.setup.wsmed.planner_policy(), PlannerPolicy::Heuristic);
        assert!(shell.dispatch("plan explain query2"));
        assert!(shell.dispatch("plan explain")); // usage, shell stays alive
        assert!(shell.dispatch("plan bogus"));
        assert!(shell.dispatch("plan cost"));
        assert_eq!(
            shell.setup.wsmed.planner_policy(),
            PlannerPolicy::CostBased { prune: false }
        );
        assert_eq!(shell.mode, Mode::Planned);
        assert!(shell.dispatch("query2"));
        assert!(shell.last_tree.is_some(), "planned run stashes a tree");
        assert!(shell.dispatch("plan cost+prune"));
        assert!(shell.dispatch("plan explain query3"));
        assert!(shell.dispatch("query3"));
        assert!(shell.dispatch("plan heuristic"));
        assert_eq!(shell.setup.wsmed.planner_policy(), PlannerPolicy::Heuristic);
        assert_eq!(parse_mode("mode planned").unwrap(), Mode::Planned);
    }

    #[test]
    fn shell_mq_command() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("cache on"));
        assert!(shell.dispatch("pool on"));
        assert!(shell.dispatch("mq run 3 query2"));
        assert!(shell.last_tree.is_some(), "mq must stash a tree");
        // Usage errors keep the shell alive.
        assert!(shell.dispatch("mq"));
        assert!(shell.dispatch("mq run"));
        assert!(shell.dispatch("mq run x query2"));
        assert!(shell.dispatch("mq run 0 query2"));
        assert!(shell.dispatch("mq run 2 select nonsense"));
    }

    #[test]
    fn shell_fault_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("fault codebump.com/zip every 1"));
        shell.mode = Mode::Central;
        // Query now fails but the shell keeps running.
        assert!(shell.dispatch("query2"));
        assert!(shell.dispatch("fault codebump.com/zip clear"));
        assert!(shell.dispatch("query2"));
        assert_eq!(shell.last_tree.as_ref().unwrap().total_alive(), 1);
        // Chaos fault forms parse; bad forms print usage without crashing.
        assert!(shell.dispatch("fault codebump.com/zip hang every 3"));
        assert!(shell.dispatch("fault codebump.com/zip down 0 50"));
        assert!(shell.dispatch("fault codebump.com/zip brownout 0 50 4"));
        assert!(shell.dispatch("fault codebump.com/zip clear"));
        assert!(shell.dispatch("fault codebump.com/zip down 50"));
        assert!(shell.dispatch("fault codebump.com/zip hang every zero"));
    }

    #[test]
    fn shell_resilience_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("resilience show"));
        assert!(shell.dispatch("resilience deadline 30"));
        assert!(shell.dispatch("resilience breaker on"));
        assert!(shell.dispatch("resilience hedge 2.5"));
        assert!(shell.dispatch("resilience mode partial"));
        let policy = shell.setup.wsmed.resilience_policy();
        assert_eq!(policy.deadline_model_secs, Some(30.0));
        assert!(policy.breaker.is_some());
        assert!(policy.hedge.is_some());
        assert_eq!(policy.failure_mode, wsmed::core::FailureMode::Partial);
        assert!(shell.dispatch("resilience show"));
        assert!(shell.dispatch("resilience bogus"));
        assert!(shell.dispatch("resilience deadline nope"));
        assert!(shell.dispatch("resilience deadline off"));
        assert!(shell.dispatch("resilience breaker off"));
        assert!(shell.dispatch("resilience hedge off"));
        assert!(shell.dispatch("resilience mode abort"));
        assert!(shell.setup.wsmed.resilience_policy().is_plain());
    }

    #[test]
    fn shell_topology_and_route_commands() {
        let mut shell = Shell::new(0.0, "tiny".into());
        assert!(shell.dispatch("topology show")); // no groups yet
        assert!(shell.dispatch("topology scenario flap")); // needs a group
        assert!(shell.dispatch("route show")); // off by default
        assert!(shell.setup.wsmed.router_policy().is_none());
        assert!(shell.dispatch("topology replicate codebump.com/zip 2"));
        let group = shell
            .setup
            .network
            .group("codebump.com/zip")
            .expect("group created");
        assert_eq!(group.status().len(), 3);
        // Re-replicating is a duplicate-provider error, not a crash.
        assert!(shell.dispatch("topology replicate codebump.com/zip 2"));
        assert_eq!(
            shell
                .setup
                .network
                .group("codebump.com/zip")
                .unwrap()
                .status()
                .len(),
            3
        );
        assert!(shell.dispatch("route weighted"));
        assert_eq!(
            shell.setup.wsmed.router_policy(),
            Some(RouterPolicy::Weighted)
        );
        shell.mode = Mode::Parallel(vec![2, 2]);
        assert!(shell.dispatch("query2")); // routed query completes
        assert!(shell.last_tree.is_some());
        assert!(shell.dispatch("topology show"));
        assert!(shell.dispatch("topology scenario flap"));
        assert!(shell.dispatch("topology scenario drain"));
        assert!(shell.dispatch("topology scenario brownout"));
        assert!(shell.dispatch("topology scenario bogus"));
        assert!(shell.dispatch("route least"));
        assert_eq!(
            shell.setup.wsmed.router_policy(),
            Some(RouterPolicy::LeastInFlight)
        );
        assert!(shell.dispatch("route locality"));
        assert!(shell.dispatch("route random"));
        assert!(shell.dispatch("route off"));
        assert!(shell.setup.wsmed.router_policy().is_none());
        assert!(shell.dispatch("route bogus"));
        assert!(shell.dispatch("topology replicate nosuch.example"));
        assert!(shell.dispatch("topology replicate codebump.com/zip 99"));
        assert!(shell.dispatch("topology bogus"));
    }

    #[test]
    fn shell_partial_mode_survives_faults_and_reports_skips() {
        let mut shell = Shell::new(0.0, "tiny".into());
        shell.mode = Mode::Parallel(vec![2, 2]);
        assert!(shell.dispatch("query2"));
        let full_rows = shell.last_tree.is_some();
        assert!(full_rows);
        assert!(shell.dispatch("resilience mode partial"));
        assert!(shell.dispatch("fault codebump.com/zip every 4"));
        assert!(shell.dispatch("query2"));
        let stats = shell.last_resilience.as_ref().expect("stats recorded");
        assert!(stats.skipped_params > 0, "faults should skip parameters");
        assert!(shell.dispatch("metrics"));
        assert!(shell.dispatch("fault codebump.com/zip clear"));
        assert!(shell.dispatch("resilience mode abort"));
    }
}
