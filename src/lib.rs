#![deny(missing_docs)]

//! # wsmed
//!
//! Umbrella crate for the WSMED reproduction (Sabesan & Risch, ICDE 2009):
//! adaptive parallelization of SQL queries over dependent web service calls.
//!
//! Re-exports the subcrates under stable module names; see the README for a
//! quickstart and `DESIGN.md` for the system inventory.

pub use wsmed_core as core;
pub use wsmed_netsim as netsim;
pub use wsmed_services as services;
pub use wsmed_sql as sql;
pub use wsmed_store as store;
pub use wsmed_trafficgen as trafficgen;
pub use wsmed_wsdl as wsdl;
pub use wsmed_xml as xml;
