//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from an RNG. Combinator methods have
/// `where Self: Sized` so `dyn Strategy<Value = T>` stays object-safe for
/// [`BoxedStrategy`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Rejects generated values failing a predicate (regenerating in
    /// place; gives up after a bounded number of rejects).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// levels below and wraps it one level deeper, up to `depth` levels.
    ///
    /// `desired_size` and `expected_branch_size` exist for signature
    /// compatibility; depth alone bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level chooses between bottoming out and recursing, with
            // recursion twice as likely near the top so structures get some
            // depth without exploding in size.
            let deeper = recurse(strat).boxed();
            strat = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 candidates", self.whence);
    }
}

/// Chooses between several strategies of one value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice between arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice between arms.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return arm.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll exceeded total weight")
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

// ------------------------------------------------------------- ranges --

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // 0 means the full u64 span
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.f64_unit() * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
    }
}

// ------------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ------------------------------------------------------- regex strings --

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xABCD)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let f = (0.25f64..0.5).generate(&mut r);
            assert!((0.25..0.5).contains(&f));
            let i = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&i));
            let inc = (1u8..=3).generate(&mut r);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = rng();
        let s = (0u32..100)
            .prop_map(|n| n * 2)
            .prop_filter("nonzero", |n| *n > 0);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v > 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_is_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut r)) <= 3 + 1);
        }
    }

    #[test]
    fn boxed_strategy_clones_share() {
        let s = (0u8..10).boxed();
        let t = s.clone();
        let mut r = rng();
        let _ = (s.generate(&mut r), t.generate(&mut r));
    }
}
