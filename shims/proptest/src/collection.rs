//! Collection strategies (`collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0u8..10, 2..5);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }
}
