//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest 1.x that WSMED's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, `Just`, ranges, tuple and `&str`-regex
//! strategies, `collection::vec`, `option::of`, `any::<T>()`, and the
//! `proptest!` / `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   run seed instead of a minimized counterexample.
//! * Regex strategies support only the subset the tests use: sequences of
//!   character classes `[...]` with optional `{n}` / `{m,n}` repetition.
//! * Deterministic by default: the seed derives from the test name, and
//!   `PROPTEST_SEED` overrides it for reproduction runs.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the same surface WSMED uses: an optional
/// `#![proptest_config(..)]` inner attribute followed by one or more
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let seed = rng.seed();
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let repr = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}):\n  {}\n  inputs: {}",
                            stringify!($name), case, config.cases, seed, e, repr
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest {} panicked at case {}/{} (seed {:#x})\n  inputs: {}",
                                stringify!($name), case, config.cases, seed, repr
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Skips the current case when the assumption does not hold.
///
/// Without shrinking there is nothing to backtrack; a failed assumption
/// simply passes the case (matching proptest's "discard" semantics closely
/// enough for these tests, which use assumptions rarely if at all).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
