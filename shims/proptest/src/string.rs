//! String generation from the regex subset WSMED's tests use.
//!
//! Supported patterns are sequences of atoms, where an atom is either a
//! character class `[...]` or a literal character, optionally followed by
//! `{n}` or `{m,n}` repetition. Classes support ranges (`a-z`), escapes
//! (`\\`), and a literal `-` at either edge — enough for patterns like
//! `[A-Za-z_][A-Za-z0-9_.-]{0,12}` or `[ -~<>&"']{0,128}`. Anything
//! outside this subset panics with the offending pattern so a new test
//! pattern fails loudly instead of generating garbage.

use crate::test_runner::TestRng;

/// One parsed atom: the characters it can produce plus its repetition.
struct Atom {
    /// Inclusive `(lo, hi)` char ranges; a single char is `(c, c)`.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Generates a random string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = (atom.max - atom.min + 1) as u64;
        let count = atom.min + rng.below(span) as usize;
        let total: u64 = atom
            .ranges
            .iter()
            .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.below(total);
            for (lo, hi) in &atom.ranges {
                let size = *hi as u64 - *lo as u64 + 1;
                if pick < size {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("range char"));
                    break;
                }
                pick -= size;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                ranges
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![(c, c)]
            }
            c @ ('(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^' | '$' | '.') => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max, next) = parse_repeat(pattern, &chars, i);
        i = next;
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

/// Parses a class body starting just after `[`; returns ranges and the
/// index just after the closing `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                return (ranges, i + 1);
            }
            '^' if ranges.is_empty() && pending.is_none() => {
                panic!("negated classes unsupported in pattern {pattern:?}")
            }
            '-' if pending.is_some() && chars.get(i + 1).map(|c| *c != ']').unwrap_or(false) => {
                let lo = pending.take().expect("pending range start");
                i += 1;
                let mut hi = chars[i];
                if hi == '\\' {
                    i += 1;
                    hi = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                }
                assert!(
                    lo <= hi,
                    "inverted range {lo:?}-{hi:?} in pattern {pattern:?}"
                );
                ranges.push((lo, hi));
                i += 1;
            }
            '\\' => {
                if let Some(p) = pending.replace(chars[i + 1]) {
                    ranges.push((p, p));
                }
                i += 2;
            }
            c => {
                if let Some(p) = pending.replace(c) {
                    ranges.push((p, p));
                }
                i += 1;
            }
        }
    }
}

/// Parses an optional `{n}` / `{m,n}` suffix at `i`; returns `(min, max,
/// next_index)` — `(1, 1, i)` when there is no repetition.
fn parse_repeat(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|c| *c == '}')
        .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("repetition lower bound"),
            n.trim().parse().expect("repetition upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> Vec<String> {
        let mut rng = TestRng::from_seed(seed);
        (0..200)
            .map(|_| generate_from_pattern(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn simple_class_with_repetition() {
        for s in gen("[a-z]{1,8}", 1) {
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn identifier_pattern() {
        for s in gen("[A-Za-z_][A-Za-z0-9_.-]{0,12}", 2) {
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_ascii_with_gap() {
        // [ -&(-~] is printable ASCII minus the apostrophe.
        for s in gen("[ -&(-~]{0,12}", 3) {
            assert!(s.len() <= 12);
            assert!(
                s.chars().all(|c| (' '..='~').contains(&c) && c != '\''),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_with_quotes_and_trailing_chars() {
        let all = gen("[ -~<>&\"']{0,128}", 4);
        assert!(all.iter().any(|s| !s.is_empty()));
        for s in &all {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_characters_pass_through() {
        for s in gen("ab[0-9]{2}", 5) {
            assert_eq!(s.len(), 4);
            assert!(s.starts_with("ab"));
            assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn exact_repetition() {
        for s in gen("[a-c]{3}", 6) {
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_construct_panics() {
        generate_from_pattern("(a|b)", &mut TestRng::from_seed(0));
    }
}
