//! Option strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

/// Generates `Some` from the inner strategy three times out of four,
/// `None` otherwise (matching proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(1, 4) {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_produces_both_variants() {
        let mut rng = TestRng::from_seed(12);
        let s = of(0u32..100);
        let vals: Vec<Option<u32>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }
}
