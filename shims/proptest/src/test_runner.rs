//! Test-runner plumbing: configuration, RNG, and case-failure type.

/// Controls how many cases each property test runs.
///
/// Only the fields WSMED's tests touch exist; all are public so
/// `ProptestConfig { cases: 12, ..ProptestConfig::default() }` works.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property-test case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator RNG (SplitMix64).
///
/// Seeded from the test name so runs are reproducible; set `PROPTEST_SEED`
/// to override the base seed when chasing a reported failure.
#[derive(Debug, Clone)]
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    /// Creates an RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                s.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or_else(|| s.parse().ok())
            })
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        // FNV-1a over the name, mixed with the base seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ base;
        TestRng { seed, state: seed }
    }

    /// Creates an RNG from an explicit seed (used by shim self-tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { seed, state: seed }
    }

    /// The seed this run started from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: tiny, full-period, passes BigCrush-level smoke tests.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Modulo bias is ≤ 2⁻⁴⁰ for the ranges tests use; acceptable here.
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)` with 53 random mantissa bits.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t1");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("t1");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::for_test("t2").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::from_seed(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn f64_unit_in_unit_interval() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = r.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
