//! `any::<T>()` — full-range generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Like upstream proptest's default f64 strategy, NaN is excluded:
        // callers compare generated values with `==`, which NaN breaks.
        // Random bit patterns (covering infinities, subnormals and both
        // signs) with a nudge toward named edge cases codecs get wrong.
        if rng.chance(1, 8) {
            const SPECIALS: [f64; 7] = [
                0.0,
                -0.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN,
                f64::MAX,
                f64::MIN_POSITIVE,
            ];
            SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
        } else {
            let f = f64::from_bits(rng.next_u64());
            if f.is_nan() {
                // Clear the exponent: same mantissa bits, now subnormal.
                f64::from_bits(f.to_bits() & !(0x7ff << 52))
            } else {
                f
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_bool_and_extremes() {
        let mut rng = TestRng::from_seed(9);
        let bools: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(bools.iter().any(|b| *b) && bools.iter().any(|b| !*b));
        let mut saw_infinite = false;
        let mut saw_negative = false;
        for _ in 0..2000 {
            let f = f64::arbitrary(&mut rng);
            assert!(!f.is_nan(), "default f64 strategy must not produce NaN");
            saw_infinite |= f.is_infinite();
            saw_negative |= f < 0.0;
            let n = i64::arbitrary(&mut rng);
            saw_negative |= n < 0;
        }
        assert!(saw_infinite && saw_negative);
    }

    #[test]
    fn any_is_a_strategy() {
        let mut rng = TestRng::from_seed(10);
        let s = any::<u64>();
        let _: u64 = s.generate(&mut rng);
    }
}
