//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the subset of the `bytes` 1.x API the workspace
//! uses: [`Bytes`] (a cheaply cloneable, sliceable shared byte buffer),
//! [`BytesMut`] (a growable builder that freezes into [`Bytes`]), and the
//! [`Buf`]/[`BufMut`] cursor traits. Semantics match the real crate for
//! this subset; anything beyond it is intentionally absent.

use std::sync::Arc;

/// A cheaply cloneable shared byte buffer with cursor-style consumption.
///
/// Cloning bumps a reference count; `slice` produces views into the same
/// allocation. [`Buf`] methods consume from the front by advancing an
/// offset, as in the real crate.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Bytes remaining (length of the unread view).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// The range is relative to the current view, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable shared buffer without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Empties the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Methods that read integers consume the
/// corresponding bytes and panic if too few remain (callers bounds-check
/// with [`Buf::remaining`] first, as with the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64;
    /// Consumes `len` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.start += 1;
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.as_slice()[..4]);
        self.start += 4;
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.as_slice()[..8]);
        self.start += 8;
        u64::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.as_slice()[..8]);
        self.start += 8;
        i64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(&*b.copy_to_bytes(3), b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&*s2, &[3, 4]);
        assert_eq!(b.len(), 5); // original untouched
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Arc::strong_count(&b.data), 2);
    }

    #[test]
    fn hash_matches_content() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Bytes::from(vec![1, 2]), 1);
        assert_eq!(m.get(&Bytes::from(vec![1, 2])), Some(&1));
        assert_eq!(m.get(&Bytes::from(vec![1, 3])), None);
    }
}
