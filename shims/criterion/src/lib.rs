//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion 0.5's API that WSMED's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock harness. Each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints min / median / mean per
//! iteration. There is no statistical analysis, HTML report, or baseline
//! comparison; the numbers are indicative, which is all the offline
//! harness needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing summary printed for each benchmark.
fn report(name: &str, samples: &mut [f64]) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples.first().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {name:<48} min {} median {} mean {}",
        fmt_nanos(min),
        fmt_nanos(median),
        fmt_nanos(mean)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.3} µs", ns / 1e3)
    } else {
        format!("{ns:8.1} ns")
    }
}

/// How batched inputs are sized; only a hint in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine` once per sample after a short warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters() {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters() {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn warmup_iters(&self) -> usize {
        (self.sample_size / 5).max(1)
    }
}

fn run_bench(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    f(&mut Bencher {
        samples: &mut samples,
        sample_size,
    });
    if samples.is_empty() {
        println!("bench {name:<48} (no samples)");
    } else {
        report(name, &mut samples);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Suggests how long to spend measuring; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.full),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_and_batched_work() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter_batched(
                || vec![1u64; *n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
