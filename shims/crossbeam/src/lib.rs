//! Offline stand-in for the `crossbeam` crate.
//!
//! WSMED uses only `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}`, and only in MPSC form (many child threads send to
//! one parent receiver). `std::sync::mpsc` has been crossbeam-backed since
//! Rust 1.72 and provides identical semantics for this subset, so the shim
//! re-exports it under crossbeam's module layout.

/// Multi-producer channels, crossbeam-style namespace over `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop((tx, tx2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn senders_work_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
    }
}
