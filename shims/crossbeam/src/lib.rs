//! Offline stand-in for the `crossbeam` crate.
//!
//! WSMED uses `crossbeam::channel::{unbounded, bounded, Sender, Receiver,
//! RecvTimeoutError, TrySendError}`, and only in MPSC form (many child
//! threads send to one parent receiver). `std::sync::mpsc` has been
//! crossbeam-backed since Rust 1.72 and provides identical semantics for
//! this subset, so the shim re-exports it under crossbeam's module layout.
//!
//! crossbeam's `Sender` is a single type covering both unbounded and
//! bounded channels, while std splits them into `mpsc::Sender` and
//! `mpsc::SyncSender`. The shim unifies them behind one [`channel::Sender`]
//! enum so call sites stay channel-flavor agnostic, exactly as with the
//! real crate.

/// Multi-producer channels, crossbeam-style namespace over `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver disconnected.
    pub use std::sync::mpsc::SendError;
    /// Error returned by [`Sender::try_send`]: the channel is full
    /// (bounded flavor only) or the receiver disconnected.
    pub use std::sync::mpsc::TrySendError;

    /// Unified sender over unbounded and bounded channels, mirroring
    /// crossbeam's single `Sender` type.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Sender half of an [`unbounded`] channel.
        Unbounded(mpsc::Sender<T>),
        /// Sender half of a [`bounded`] channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when the receiver disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.send(value),
            }
        }

        /// Attempts to send without blocking. On a full bounded channel
        /// returns [`TrySendError::Full`]; an unbounded channel is never
        /// full, so there only disconnection fails.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                Sender::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), rx)
    }

    /// Creates a bounded channel with capacity `cap` (floored to 1: std's
    /// zero-capacity rendezvous channel has different semantics from a
    /// queue of one and is never what a mailbox wants).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender::Bounded(tx), rx)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop((tx, tx2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn senders_work_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn bounded_blocks_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(sender.join().unwrap().is_err());
    }

    #[test]
    fn unbounded_try_send_never_full() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.try_send(i).unwrap();
        }
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
    }

    #[test]
    fn bounded_capacity_zero_floors_to_one() {
        let (tx, rx) = bounded(0);
        // A true rendezvous channel would block here with no receiver waiting.
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv().unwrap(), 9);
    }
}
