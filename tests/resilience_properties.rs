//! Property tests: `FailureMode::Partial` is *sound degradation*.
//!
//! For arbitrary combinations of cache, pool, batch policy, fanouts and
//! args-keyed chaos on the leaf provider, a partial-mode run must return
//! a sub-multiset of the fault-free result — never an invented or
//! duplicated row — and its `skipped_params` must exactly account for
//! the missing distinct leaf parameters. The same holds when the run is
//! additionally stressed by an abrupt child kill whose in-flight
//! parameters are requeued to a surviving sibling: a dead child's skips
//! are discarded with its uncommitted rows and re-counted exactly once
//! by whichever process re-evaluates them.

use std::collections::BTreeSet;

use proptest::prelude::*;

use wsmed::core::{paper, BatchPolicy, FailureMode, ResiliencePolicy};
use wsmed::netsim::FaultSpec;
use wsmed::services::{DatasetConfig, ZipCodesService};
use wsmed::store::{canonicalize, Tuple};

/// Query2 without its final filter: the zip (the leaf call's parameter)
/// is in the projection, so dropped leaf parameters are visible row-side.
const UNFILTERED_Q2: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip";

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 8,
        min_neighbors: 1,
        max_neighbors: 4,
        zips_per_state: 3,
        ..DatasetConfig::tiny()
    }
}

fn distinct_zips(rows: &[Tuple]) -> BTreeSet<String> {
    rows.iter().map(|r| r.values()[1].render()).collect()
}

/// The rows of `clean` whose zip survived into `kept`.
fn clean_restricted(clean: &[Tuple], kept: &BTreeSet<String>) -> Vec<Tuple> {
    clean
        .iter()
        .filter(|r| kept.contains(&r.values()[1].render()))
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn prop_partial_mode_is_sound_degradation(
        seed in 0u64..1000,
        fo1 in 1usize..4,
        fo2 in 1usize..4,
        batch in 1usize..30,
        fault_pct in 5u32..30,
        cache in proptest::arbitrary::any::<bool>(),
        pool in proptest::arbitrary::any::<bool>(),
        attempts in 1usize..3,
    ) {
        let clean_setup = paper::setup(0.0, dataset(seed));
        let clean = clean_setup
            .wsmed
            .run_parallel(UNFILTERED_Q2, &vec![fo1, fo2])
            .unwrap();
        let clean_zips = distinct_zips(&clean.rows);

        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));
        setup.wsmed.enable_call_cache(cache);
        setup.wsmed.enable_process_pool(pool);
        setup.wsmed.set_resilience_policy(ResiliencePolicy {
            max_attempts: attempts,
            failure_mode: FailureMode::Partial,
            ..ResiliencePolicy::default()
        });
        // Args-keyed: the failing zips are a fixed set, independent of
        // dispatch interleaving, retries and batch boundaries.
        setup
            .network
            .provider(ZipCodesService::PROVIDER)
            .unwrap()
            .set_fault(FaultSpec {
                fail_probability: fault_pct as f64 / 100.0,
                keyed_by_args: true,
                ..FaultSpec::default()
            });

        let report = setup
            .wsmed
            .run_parallel(UNFILTERED_Q2, &vec![fo1, fo2])
            .unwrap();
        let kept = distinct_zips(&report.rows);

        prop_assert!(kept.is_subset(&clean_zips), "partial run invented zips");
        let lost = clean_zips.len() - kept.len();
        prop_assert_eq!(
            report.resilience.skipped_params as usize,
            lost,
            "skips must exactly account the gap (seed {} fo {{{},{}}} batch {} \
             cache {} pool {} attempts {} fault {}%)",
            seed, fo1, fo2, batch, cache, pool, attempts, fault_pct
        );
        // Surviving zips keep their full row multiplicity: no partial or
        // duplicated row sets sneak through batching, caching or pooling.
        prop_assert_eq!(
            canonicalize(report.rows.clone()),
            canonicalize(clean_restricted(&clean.rows, &kept))
        );
    }

    #[test]
    fn prop_partial_mode_survives_child_kill_with_exact_accounting(
        seed in 0u64..1000,
        fault_pct in 5u32..25,
    ) {
        use std::sync::Arc;
        use wsmed::core::{ExecContext, SimTransport, Wsmed, WsTransport};
        use wsmed::netsim::{Network, SimConfig};
        use wsmed::services::{install_paper_services, Dataset};

        let sim = SimConfig::new(0.0, 0x5EED_1CDE);
        let network = Network::new(sim.clone());
        let ds = Arc::new(Dataset::generate(dataset(seed)));
        let registry = install_paper_services(network.clone(), ds);
        let mut wsmed = Wsmed::new(registry.clone());
        wsmed.import_all_wsdl().unwrap();
        let clean = wsmed
            .run_parallel(UNFILTERED_Q2, &vec![3, 2])
            .unwrap();
        let clean_zips = distinct_zips(&clean.rows);

        let plan = wsmed.compile_parallel(UNFILTERED_Q2, &vec![3, 2]).unwrap();
        let ctx = ExecContext::new(
            Arc::new(SimTransport::new(registry)) as Arc<dyn WsTransport>,
            Arc::new(wsmed.owfs().clone()),
            sim,
        );
        ctx.set_resilience_policy(ResiliencePolicy {
            failure_mode: FailureMode::Partial,
            ..ResiliencePolicy::default()
        });
        network
            .provider(ZipCodesService::PROVIDER)
            .unwrap()
            .set_fault(FaultSpec {
                fail_probability: fault_pct as f64 / 100.0,
                keyed_by_args: true,
                ..FaultSpec::default()
            });
        // Abruptly kill a busy child mid-run: its uncommitted skips are
        // discarded with its rows and re-counted by the survivor that
        // re-evaluates the requeued parameters.
        ctx.arm_child_failure_after_eocs(2);
        let report = ctx.run_plan(&plan).unwrap();

        let kept = distinct_zips(&report.rows);
        prop_assert!(kept.is_subset(&clean_zips));
        let lost = clean_zips.len() - kept.len();
        prop_assert_eq!(
            report.resilience.skipped_params as usize,
            lost,
            "requeue must neither lose nor double-count skips \
             (seed {} fault {}%)",
            seed, fault_pct
        );
        prop_assert_eq!(
            canonicalize(report.rows.clone()),
            canonicalize(clean_restricted(&clean.rows, &kept))
        );
    }
}
