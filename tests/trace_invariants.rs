//! Property tests of the structured trace recorder: for random queries
//! and policy combinations (cache × pool × batch × dispatch mode), every
//! event stream a run produces must be *well-formed* — spans strictly
//! nest, model timestamps are monotone per node, every spawn/acquire has
//! exactly one terminal park/kill/join — and the per-node dispatched call
//! counts replayed from the trace must equal the process tree's `calls`
//! counters exactly.

use proptest::prelude::*;

use wsmed::core::{
    obs, paper, AdaptiveConfig, BatchPolicy, ExecutionReport, TraceEventKind, TracePolicy,
};
use wsmed::services::DatasetConfig;

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 6,
        min_neighbors: 1,
        max_neighbors: 3,
        zips_per_state: 2,
        ..DatasetConfig::tiny()
    }
}

/// Validates a traced report and cross-checks trace-replayed per-node
/// call counts against the tree snapshot.
///
/// Park terminals of sub-coordinator levels are emitted by child threads
/// *after* `run_*` returns (parking a warm tree is asynchronous), so the
/// stream is re-read until it is quiescent before the hard assertions.
fn assert_trace_faithful(report: &ExecutionReport, label: &str) -> Result<(), TestCaseError> {
    let trace = report.trace.as_ref().expect("tracing enabled");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut events = trace.events();
    let mut violations = obs::validate(&events);
    while !violations.is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
        events = trace.events();
        violations = obs::validate(&events);
    }
    prop_assert!(!events.is_empty(), "{label}: empty trace");
    prop_assert_eq!(trace.dropped(), 0, "{label}: trace overflowed");
    prop_assert!(
        violations.is_empty(),
        "{label}: invariant violations: {violations:?}"
    );

    // Per-node call counts: the sum of `call_dispatched` params per node
    // must equal `TreeNode::calls` for every node in the final snapshot.
    let mut traced_calls: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for e in &events {
        if let TraceEventKind::CallDispatched { params } = e.kind {
            *traced_calls.entry(e.node).or_insert(0) += params;
        }
    }
    for node in &report.tree.nodes {
        prop_assert_eq!(
            traced_calls.get(&node.id).copied().unwrap_or(0),
            node.calls,
            "{}: node {} call counts diverge (trace vs tree)",
            label,
            node.id
        );
    }
    // And no phantom nodes: every dispatch target exists in the snapshot.
    for id in traced_calls.keys() {
        prop_assert!(
            report.tree.nodes.iter().any(|n| n.id == *id),
            "{label}: trace dispatches to unknown node {id}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn prop_trace_streams_are_well_formed(
        seed in 0u64..500,
        cache in any::<bool>(),
        pool in any::<bool>(),
        batch in 1usize..9,
        adaptive in any::<bool>(),
        query2 in any::<bool>(),
    ) {
        let mut setup = paper::setup(0.0, dataset(seed));
        let sql = if query2 { paper::QUERY2_SQL } else { paper::QUERY1_SQL };
        setup.wsmed.set_trace_policy(TracePolicy::enabled());
        setup.wsmed.enable_call_cache(cache);
        setup.wsmed.enable_process_pool(pool);
        setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));

        let label = format!(
            "seed {seed} cache {cache} pool {pool} batch {batch} adaptive {adaptive} q2 {query2}"
        );
        let run = |s: &paper::PaperSetup| {
            if adaptive {
                s.wsmed.run_adaptive(sql, &AdaptiveConfig::default())
            } else {
                s.wsmed.run_parallel(sql, &vec![2, 2])
            }
        };

        let first = run(&setup).expect("first run");
        assert_trace_faithful(&first, &format!("{label} run1"))?;

        // With a warm pool, a rerun re-acquires parked children; its trace
        // must record warm spawns and still satisfy every invariant.
        if pool {
            let second = run(&setup).expect("second run");
            assert_trace_faithful(&second, &format!("{label} run2"))?;
            let events = second.trace.as_ref().unwrap().events();
            let warm = events
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::ChildSpawn { warm: true }));
            prop_assert!(warm, "{label}: pooled rerun recorded no warm acquire");
        }
    }
}

#[test]
fn disabled_policy_records_nothing() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    // Default policy: tracing off — the report must not carry a trace.
    let report = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("untraced run");
    assert!(report.trace.is_none());
}

#[test]
fn kind_mask_restricts_recorded_groups() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_trace_policy(TracePolicy {
        enabled: true,
        kinds: obs::KindMask::CYCLES.union(obs::KindMask::SPANS),
        ..TracePolicy::default()
    });
    let report = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .expect("adaptive run");
    let events = report.trace.as_ref().expect("trace present").events();
    assert!(!events.is_empty());
    for e in &events {
        let m = e.kind.mask();
        assert!(
            m == obs::KindMask::CYCLES || m == obs::KindMask::SPANS,
            "event outside requested kinds: {e:?}"
        );
    }
    // Spans still validate on their own (lifecycle checks are vacuous).
    assert!(obs::validate(&events).is_empty());
}
