//! Query3: a three-level dependent chain over real simulated services
//! (AviationData), beyond the paper's two-level workloads.

use wsmed::core::{paper, AdaptiveConfig};
use wsmed::services::{AviationService, DatasetConfig};
use wsmed::store::canonicalize;

#[test]
fn query3_compiles_to_three_parallel_levels() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert_eq!(setup.wsmed.parallel_levels(paper::QUERY3_SQL).unwrap(), 3);
    let plan = setup
        .wsmed
        .compile_parallel(paper::QUERY3_SQL, &vec![3, 2, 2])
        .unwrap();
    assert_eq!(plan.root.parallel_depth(), 3);
}

#[test]
fn query3_central_and_parallel_agree() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let central = setup.wsmed.run_central(paper::QUERY3_SQL).unwrap();
    assert!(central.row_count() > 20, "expected many delayed flights");
    // Calls: 1 GetAllStates + 51 GetAirports + airports GetDepartures +
    // flights GetFlightStatus.
    let expected_calls = 1
        + 51
        + setup.dataset.total_airport_count() as u64
        + setup.dataset.total_flight_count() as u64;
    assert_eq!(central.ws_calls, expected_calls);

    let parallel = setup
        .wsmed
        .run_parallel(paper::QUERY3_SQL, &vec![3, 2, 2])
        .unwrap();
    assert_eq!(
        parallel.rows, central.rows,
        "ORDER BY makes output deterministic"
    );
    // Tree: 1 + 3 + 6 + 12 processes.
    assert_eq!(parallel.tree.levels[1].alive, 3);
    assert_eq!(parallel.tree.levels[2].alive, 6);
    assert_eq!(parallel.tree.levels[3].alive, 12);

    let adaptive = setup
        .wsmed
        .run_adaptive(paper::QUERY3_SQL, &AdaptiveConfig::default())
        .unwrap();
    assert_eq!(adaptive.rows, central.rows);
}

#[test]
fn query3_results_are_really_delayed_flights() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup.wsmed.run_central(paper::QUERY3_SQL).unwrap();
    assert_eq!(r.column_names, vec!["flightno", "code", "delayminutes"]);
    for row in &r.rows {
        let delay = row.get(2).as_int().unwrap();
        assert!((10..=120).contains(&delay), "delay {delay}");
        let code = row.get(1).as_str().unwrap();
        assert!(
            setup
                .dataset
                .departures(code)
                .iter()
                .any(|(f, _)| { f == row.get(0).as_str().unwrap() }),
            "flight departs from its airport"
        );
    }
}

#[test]
fn query3_parallel_is_faster_under_latency() {
    let scale = 0.001;
    let setup = paper::setup(scale, DatasetConfig::tiny());
    let t0 = std::time::Instant::now();
    let central = setup.wsmed.run_central(paper::QUERY3_SQL).unwrap();
    let central_wall = t0.elapsed();

    let t0 = std::time::Instant::now();
    let parallel = setup
        .wsmed
        .run_parallel(paper::QUERY3_SQL, &vec![3, 2, 2])
        .unwrap();
    let parallel_wall = t0.elapsed();

    assert_eq!(canonicalize(parallel.rows), canonicalize(central.rows));
    assert!(
        parallel_wall.as_secs_f64() < central_wall.as_secs_f64() / 2.0,
        "three-level tree should be far faster: {parallel_wall:?} vs {central_wall:?}"
    );
    // The aviation provider saw real concurrency.
    let m = setup
        .network
        .provider(AviationService::PROVIDER)
        .unwrap()
        .metrics();
    assert!(m.max_in_flight > 3, "peak in-flight {}", m.max_in_flight);
}

#[test]
fn query3_group_by_airport() {
    // Aggregates compose with the deep chain: delayed flights per airport.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let sql = "select a.Code, count(*) \
               From GetAllStates gs, GetAirports a, GetDepartures d, GetFlightStatus fs \
               Where gs.State = a.stateAbbr and a.Code = d.airportCode \
                 and d.FlightNo = fs.flightNo and fs.Status = 'Delayed' \
               group by a.Code order by a.Code";
    let grouped = setup.wsmed.run_central(sql).unwrap();
    let flat = setup.wsmed.run_central(paper::QUERY3_SQL).unwrap();
    let total: i64 = grouped
        .rows
        .iter()
        .map(|r| r.get(1).as_int().unwrap())
        .sum();
    assert_eq!(total as usize, flat.row_count());
}
