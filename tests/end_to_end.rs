//! End-to-end pipeline tests: SQL → WSDL import → calculus → plans →
//! execution, for both paper queries, across all execution strategies.

use wsmed::core::{paper, AdaptiveConfig};
use wsmed::services::DatasetConfig;
use wsmed::store::{canonicalize, Tuple};

fn sorted(rows: &[Tuple]) -> Vec<Tuple> {
    canonicalize(rows.to_vec())
}

#[test]
fn query1_all_strategies_agree() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let w = &setup.wsmed;

    let central = w.run_central(paper::QUERY1_SQL).unwrap();
    assert!(
        central.row_count() > 100,
        "Query1 returns a few hundred rows"
    );
    assert!(central.ws_calls > 100);

    for fanouts in [vec![1, 1], vec![2, 3], vec![5, 4], vec![4, 0]] {
        let parallel = w.run_parallel(paper::QUERY1_SQL, &fanouts).unwrap();
        assert_eq!(
            sorted(&parallel.rows),
            sorted(&central.rows),
            "fanouts {fanouts:?} changed the result bag"
        );
        assert_eq!(
            parallel.ws_calls, central.ws_calls,
            "fanouts {fanouts:?} changed the number of web service calls"
        );
    }

    let adaptive = w
        .run_adaptive(paper::QUERY1_SQL, &AdaptiveConfig::default())
        .unwrap();
    assert_eq!(sorted(&adaptive.rows), sorted(&central.rows));
}

#[test]
fn query2_finds_usaf_academy_everywhere() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let w = &setup.wsmed;

    let central = w.run_central(paper::QUERY2_SQL).unwrap();
    assert_eq!(central.row_count(), 1);
    let row = &central.rows[0];
    assert_eq!(row.get(0).as_str().unwrap(), "CO");
    assert_eq!(row.get(1).as_str().unwrap(), "80840");

    let parallel = w.run_parallel(paper::QUERY2_SQL, &vec![4, 3]).unwrap();
    assert_eq!(sorted(&parallel.rows), sorted(&central.rows));

    let adaptive = w
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .unwrap();
    assert_eq!(sorted(&adaptive.rows), sorted(&central.rows));
}

#[test]
fn query1_call_counts_match_paper_on_full_dataset() {
    let setup = paper::setup(0.0, DatasetConfig::paper());
    let central = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    // §II.A: "A naïve central sequential execution plan invokes more than
    // 300 web service calls" and "returns a stream of 360 result tuples".
    assert!(central.ws_calls > 300, "got {} calls", central.ws_calls);
    assert!(
        (280..=440).contains(&central.row_count()),
        "got {} rows; paper reports 360",
        central.row_count()
    );
}

#[test]
fn query2_call_counts_match_paper_on_full_dataset() {
    let setup = paper::setup(0.0, DatasetConfig::paper());
    let central = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    // §I: "makes 5000 calls sequentially".
    assert!(central.ws_calls > 5000, "got {} calls", central.ws_calls);
    assert_eq!(central.row_count(), 1);
}

#[test]
fn process_tree_shapes_match_fanout_vectors() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let w = &setup.wsmed;

    let r = w.run_parallel(paper::QUERY1_SQL, &vec![3, 2]).unwrap();
    assert_eq!(r.tree.levels[0].alive, 1);
    assert_eq!(r.tree.levels[1].alive, 3);
    assert_eq!(r.tree.levels[2].alive, 6);
    assert_eq!(r.tree.fanout_at(0), Some(3.0));
    assert_eq!(r.tree.fanout_at(1), Some(2.0));

    // Flat tree: one level only (Fig. 14).
    let r = w.run_parallel(paper::QUERY1_SQL, &vec![5, 0]).unwrap();
    assert_eq!(r.tree.levels.len(), 2);
    assert_eq!(r.tree.levels[1].alive, 5);
}

#[test]
fn explain_covers_all_stages() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let text = setup
        .wsmed
        .explain(paper::QUERY1_SQL, Some(&vec![5, 4]))
        .unwrap();
    assert!(text.contains("== calculus =="));
    assert!(text.contains("GetPlacesWithin(\"Atlanta\""));
    assert!(text.contains("== central plan =="));
    assert!(text.contains("γ GetPlaceList"));
    assert!(text.contains("== parallel plan"));
    assert!(text.contains("FF_γ PF1 fanout=5"));
    assert!(text.contains("FF_γ PF2 fanout=4"));
}

#[test]
fn parallel_levels_reports_two_for_both_queries() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert_eq!(setup.wsmed.parallel_levels(paper::QUERY1_SQL).unwrap(), 2);
    assert_eq!(setup.wsmed.parallel_levels(paper::QUERY2_SQL).unwrap(), 2);
}

#[test]
fn bad_sql_and_bad_fanouts_error_cleanly() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let w = &setup.wsmed;
    assert!(w.run_central("select nothing").is_err());
    assert!(w
        .run_central("select gs.Bogus from GetAllStates gs")
        .is_err());
    assert!(w.run_parallel(paper::QUERY1_SQL, &vec![5]).is_err());
    assert!(w.run_parallel(paper::QUERY1_SQL, &vec![0, 4]).is_err());
}

#[test]
fn repeated_executions_are_stable() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let w = &setup.wsmed;
    let first = w.run_parallel(paper::QUERY1_SQL, &vec![2, 2]).unwrap();
    for _ in 0..3 {
        let again = w.run_parallel(paper::QUERY1_SQL, &vec![2, 2]).unwrap();
        assert_eq!(sorted(&again.rows), sorted(&first.rows));
    }
}
