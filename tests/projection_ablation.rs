//! The parameter-projection optimization: shipped plan functions carry
//! only the columns downstream sections consume (the paper's
//! `PF1(Charstring st1)` signatures), cutting inter-process message volume
//! without changing results.

use wsmed::core::paper;
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

#[test]
fn projected_and_unprojected_agree_on_results() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let w = &setup.wsmed;
    for sql in [paper::QUERY1_SQL, paper::QUERY2_SQL] {
        let projected = w.compile_parallel(sql, &vec![3, 2]).unwrap();
        let unprojected = w.compile_parallel_unprojected(sql, &vec![3, 2]).unwrap();
        let a = w.execute(&projected).unwrap();
        let b = w.execute(&unprojected).unwrap();
        assert_eq!(canonicalize(a.rows), canonicalize(b.rows));
        assert_eq!(a.ws_calls, b.ws_calls);
    }
}

#[test]
fn projection_reduces_shipped_bytes() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let w = &setup.wsmed;
    for (sql, name) in [(paper::QUERY1_SQL, "Query1"), (paper::QUERY2_SQL, "Query2")] {
        let projected = w
            .execute(&w.compile_parallel(sql, &vec![3, 2]).unwrap())
            .unwrap();
        let unprojected = w
            .execute(&w.compile_parallel_unprojected(sql, &vec![3, 2]).unwrap())
            .unwrap();
        assert!(
            (projected.shipped_bytes as f64) < 0.75 * unprojected.shipped_bytes as f64,
            "{name}: projection saved too little: {} vs {} bytes",
            projected.shipped_bytes,
            unprojected.shipped_bytes
        );
    }
}

#[test]
fn projected_plan_functions_have_scalar_params() {
    // The paper's signatures: PF1(st1), PF2(str), PF3(st1), PF4(zc) — all
    // single-column parameters for these two queries.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    for sql in [paper::QUERY1_SQL, paper::QUERY2_SQL] {
        let plan = setup.wsmed.compile_parallel(sql, &vec![2, 2]).unwrap();
        let mut op = &plan.root;
        let mut seen = 0;
        loop {
            if let wsmed::core::PlanOp::FfApply { pf, .. } = op {
                assert_eq!(
                    pf.param_arity, 1,
                    "{}: {} ships more than one column",
                    sql, pf.name
                );
                seen += 1;
                op = &pf.body;
                continue;
            }
            match op.input() {
                Some(input) => op = input,
                None => break,
            }
        }
        assert_eq!(seen, 2, "expected two nested plan functions");
    }
}

#[test]
fn shipped_bytes_zero_for_central_plans() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    assert_eq!(r.shipped_bytes, 0, "central plans ship nothing");
    let p = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![2, 2])
        .unwrap();
    assert!(p.shipped_bytes > 0, "parallel plans ship plans and tuples");
}
