//! First-finished vs round-robin dispatch (§III.A ablation).
//!
//! The paper's `FF_APPLYP` sends the next pending parameter tuple to
//! whichever child finished first. These tests check the round-robin
//! baseline is semantically equivalent but loses wall time under skewed
//! per-call latency — the justification for the FF design.

use std::time::Duration;

use wsmed::core::{paper, DispatchPolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

#[test]
fn round_robin_produces_identical_results() {
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    let ff = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 3])
        .unwrap();
    setup.wsmed.set_dispatch_policy(DispatchPolicy::RoundRobin);
    let rr = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 3])
        .unwrap();
    assert_eq!(canonicalize(rr.rows), canonicalize(ff.rows));
    assert_eq!(rr.ws_calls, ff.ws_calls);
}

#[test]
fn round_robin_also_works_for_query1() {
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    let central = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    setup.wsmed.set_dispatch_policy(DispatchPolicy::RoundRobin);
    for fanouts in [vec![1, 1], vec![2, 3], vec![4, 0]] {
        let rr = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &fanouts)
            .unwrap();
        assert_eq!(
            canonicalize(rr.rows),
            canonicalize(central.rows.clone()),
            "round robin at {fanouts:?} changed results"
        );
    }
}

#[test]
fn first_finished_beats_round_robin_under_skew() {
    // A deterministic skew scenario over a mock service: parameters whose
    // value starts with "slow" cost 100 ms, the rest 3 ms. The parameter
    // order is arranged so round-robin piles all three slow calls onto one
    // child (indexes 1, 3, 5 with fanout 2), serializing ~300 ms, while
    // first-finished overlaps them across both children (~200 ms).
    use std::sync::Arc;
    use wsmed::core::{ExecContext, MockTransport, PlanOp, QueryPlan, WsTransport};
    use wsmed::netsim::SimConfig;
    use wsmed::store::{Record, Value};
    use wsmed::wsdl::{OperationDef, TypeNode, WsdlDocument};

    let catalog = {
        let mut cat = wsmed::core::OwfCatalog::new();
        let doc = WsdlDocument {
            service_name: "Mock".into(),
            target_namespace: "urn:mock".into(),
            operations: vec![OperationDef {
                name: "Echo".into(),
                inputs: vec![("x".into(), wsmed::store::SqlType::Charstring)],
                output: TypeNode::Record {
                    name: "EchoResponse".into(),
                    fields: vec![TypeNode::Repeated {
                        element: Box::new(TypeNode::Scalar {
                            name: "y".into(),
                            ty: wsmed::store::SqlType::Charstring,
                        }),
                    }],
                },
                doc: None,
            }],
        };
        cat.import(&doc, "urn:mock.wsdl").unwrap();
        Arc::new(cat)
    };
    let transport = || {
        MockTransport::new(|_, args| {
            let arg = args[0].as_str().map_err(wsmed::core::CoreError::Store)?;
            if arg.starts_with("slow") {
                std::thread::sleep(Duration::from_millis(100));
            } else if !arg.contains('|') {
                std::thread::sleep(Duration::from_millis(3));
            }
            Ok(Value::Record(
                Record::new().with(
                    "y",
                    Value::Sequence(
                        arg.split('|')
                            .filter(|s| !s.is_empty())
                            .map(Value::str)
                            .collect(),
                    ),
                ),
            ))
        })
    };
    // Params at odd indexes are slow: with fanout 2, round-robin assigns
    // them all to the second child.
    let seed = "f0|slow0|f1|slow1|f2|slow2|f3|f4";
    let plan = QueryPlan {
        root: PlanOp::Project {
            columns: vec![2],
            input: Box::new(PlanOp::FfApply {
                pf: wsmed::core::PlanFunction {
                    name: "PF1".into(),
                    param_arity: 2,
                    body: Box::new(PlanOp::ApplyOwf {
                        owf: "Echo".into(),
                        args: vec![wsmed::core::ArgExpr::Col(1)],
                        output_arity: 1,
                        input: Box::new(PlanOp::Param { arity: 2 }),
                    }),
                    output_arity: 3,
                    prune: None,
                },
                fanout: 2,
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "Echo".into(),
                    args: vec![wsmed::core::ArgExpr::Col(0)],
                    output_arity: 1,
                    input: Box::new(PlanOp::Extend {
                        exprs: vec![wsmed::core::ArgExpr::Const(Value::str(seed))],
                        input: Box::new(PlanOp::Unit),
                    }),
                }),
            }),
        },
        column_names: vec!["y".into()],
    };

    let run = |policy: DispatchPolicy| {
        let ctx = ExecContext::new(
            transport() as Arc<dyn WsTransport>,
            Arc::clone(&catalog),
            SimConfig::default(),
        );
        ctx.set_dispatch_policy(policy);
        let t0 = std::time::Instant::now();
        let r = ctx.run_plan(&plan).unwrap();
        assert_eq!(r.row_count(), 8);
        t0.elapsed()
    };

    let ff_time = run(DispatchPolicy::FirstFinished);
    let rr_time = run(DispatchPolicy::RoundRobin);
    assert!(
        ff_time.as_secs_f64() < rr_time.as_secs_f64() * 0.85,
        "first-finished ({ff_time:?}) should clearly beat round-robin ({rr_time:?})"
    );
}

#[test]
fn adaptive_ignores_round_robin_knob() {
    // AFF_APPLYP always dispatches first-finished; the knob must not break
    // adaptive execution (children added mid-run have no static share).
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_dispatch_policy(DispatchPolicy::RoundRobin);
    let central = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    let adaptive = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &Default::default())
        .unwrap();
    assert_eq!(canonicalize(adaptive.rows), canonicalize(central.rows));
}

#[test]
fn round_robin_with_more_children_than_params() {
    // Slots beyond the parameter count must stay idle without hanging.
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_dispatch_policy(DispatchPolicy::RoundRobin);
    // 51 states at level 1 but only ~3 zips per state at level 2 — level-2
    // children outnumber per-call parameters.
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 8])
        .unwrap();
    assert_eq!(r.row_count(), 1);
    let _ = Duration::ZERO;
}

#[test]
fn call_counts_reveal_dispatch_balance() {
    // Under uniform latency, both policies spread Query2's 51 level-1
    // calls across 3 children; the per-node counters expose it.
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_dispatch_policy(DispatchPolicy::RoundRobin);
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 1])
        .unwrap();
    let level1: Vec<u64> = r
        .tree
        .nodes
        .iter()
        .filter(|n| n.level == 1)
        .map(|n| n.calls)
        .collect();
    assert_eq!(level1.len(), 3);
    assert_eq!(level1.iter().sum::<u64>(), 51, "51 states dispatched");
    // Round-robin: 17/17/17.
    assert!(level1.iter().all(|&c| c == 17), "static split: {level1:?}");
    // The totals also show in the ASCII rendering.
    let ascii = r.tree.render_ascii();
    assert!(ascii.contains("[17 calls]"), "{ascii}");
}
