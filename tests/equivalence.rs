//! Property tests: parallel execution is *semantically invisible*.
//!
//! For arbitrary fanout vectors, adaptive configurations and dataset
//! seeds, the parallel plans must return exactly the central plan's bag of
//! tuples — the paper's operators change performance, never results.

use proptest::prelude::*;

use wsmed::core::{paper, AdaptiveConfig, BatchPolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 8,
        min_neighbors: 1,
        max_neighbors: 4,
        zips_per_state: 3,
        ..DatasetConfig::tiny()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn prop_ff_apply_equivalent_to_central(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        fo2 in 0usize..6,
    ) {
        let setup = paper::setup(0.0, dataset(seed));
        let central = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
        let parallel = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        prop_assert_eq!(
            canonicalize(parallel.rows),
            canonicalize(central.rows),
            "fanouts {{{},{}}} seed {}", fo1, fo2, seed
        );
    }

    #[test]
    fn prop_aff_apply_equivalent_to_central(
        seed in 0u64..1000,
        add_step in 1usize..5,
        drop_enabled in any::<bool>(),
        threshold in 0.05f64..0.9,
    ) {
        let setup = paper::setup(0.0, dataset(seed));
        let config = AdaptiveConfig {
            add_step,
            drop_enabled,
            threshold,
            ..Default::default()
        };
        let central = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
        let adaptive = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &config).unwrap();
        prop_assert_eq!(
            canonicalize(adaptive.rows),
            canonicalize(central.rows),
            "p={} drop={} θ={} seed {}", add_step, drop_enabled, threshold, seed
        );
    }

    #[test]
    fn prop_flat_tree_equivalent(seed in 0u64..1000, fo1 in 1usize..8) {
        let setup = paper::setup(0.0, dataset(seed));
        let central = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
        let flat = setup.wsmed.run_parallel(paper::QUERY1_SQL, &vec![fo1, 0]).unwrap();
        prop_assert_eq!(canonicalize(flat.rows), canonicalize(central.rows));
    }

    #[test]
    fn prop_call_counts_are_plan_invariant(seed in 0u64..1000, fo1 in 1usize..5) {
        // Parallelization reorders calls but never changes how many are
        // needed: the dependency structure fixes the call count.
        let setup = paper::setup(0.0, dataset(seed));
        let central = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
        let parallel = setup
            .wsmed
            .run_parallel(paper::QUERY2_SQL, &vec![fo1, 2])
            .unwrap();
        prop_assert_eq!(central.ws_calls, parallel.ws_calls);
    }

    #[test]
    fn prop_batched_ff_equivalent_to_unbatched(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        fo2 in 0usize..6,
        batch in 2usize..80,
    ) {
        // Vectorized tuple shipping is a transport optimization: any
        // BatchPolicy must yield the unbatched (paper) result multiset.
        let setup = paper::setup(0.0, dataset(seed));
        let baseline = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));
        let batched = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        prop_assert_eq!(
            canonicalize(batched.rows),
            canonicalize(baseline.rows),
            "fanouts {{{},{}}} batch {} seed {}", fo1, fo2, batch, seed
        );
    }

    #[test]
    fn prop_batched_aff_equivalent_to_unbatched(
        seed in 0u64..1000,
        add_step in 1usize..5,
        batch in 2usize..80,
    ) {
        let config = AdaptiveConfig { add_step, ..Default::default() };
        let setup = paper::setup(0.0, dataset(seed));
        let baseline = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &config).unwrap();
        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));
        let batched = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &config).unwrap();
        prop_assert_eq!(
            canonicalize(batched.rows),
            canonicalize(baseline.rows),
            "p={} batch {} seed {}", add_step, batch, seed
        );
    }
}
