//! Queries beyond the paper's two benchmarks: mixed dependent/independent
//! sources (the paper's stated future work, §VII), selections over single
//! services, and streaming (first-row) latency.

use std::time::Duration;

use wsmed::core::paper;
use wsmed::services::DatasetConfig;

#[test]
fn single_service_query_runs_centrally() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select gs.Name, gs.State from GetAllStates gs")
        .unwrap();
    assert_eq!(r.row_count(), 51);
    assert_eq!(r.ws_calls, 1);
    assert_eq!(r.column_names, vec!["name", "state"]);
}

#[test]
fn constant_bound_query_needs_no_join() {
    // GetInfoByState with a constant input: one call, one row.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select gi.GetInfoByStateResult from GetInfoByState gi where gi.USState='CO'")
        .unwrap();
    assert_eq!(r.row_count(), 1);
    assert!(r.rows[0].get(0).as_str().unwrap().contains("80840"));
}

#[test]
fn two_independent_sources_and_one_dependent_join() {
    // GetAllStates (independent) × GetInfoByState('CO') (independent,
    // constant-bound) feeding a filter — the mixed shape of §VII. The
    // calculus orderer must put both independents first.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let sql = "select gs.State, gi.GetInfoByStateResult \
               from GetAllStates gs, GetInfoByState gi \
               where gi.USState='CO' and gs.State='GA'";
    let calc = setup.wsmed.calculus(sql).unwrap();
    assert_eq!(calc.first_ordering_violation(), None);
    let r = setup.wsmed.run_central(sql).unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "GA");
}

#[test]
fn dependent_join_with_filter_on_intermediate_level() {
    // Restrict Query2's middle level to one state: far fewer calls.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select gp.ToState, gp.zip \
               From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
               Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
                 and gc.zipcode=gp.zip and gp.ToPlace='USAF Academy' \
                 and gi.USState='CO'";
    let r = setup.wsmed.run_central(sql).unwrap();
    assert_eq!(r.row_count(), 1);
    // 1 GetAllStates + 51 GetInfoByState? No: USState is bound to 'CO', so
    // the equal filter on gs.State='CO'… the constant propagates to the
    // join, leaving one GetInfoByState call and CO's zips only.
    let zips = setup.dataset.config().zips_per_state as u64;
    assert!(
        r.ws_calls <= 2 + zips,
        "constant propagation failed: {} calls for {} zips",
        r.ws_calls,
        zips
    );
}

#[test]
fn parallel_plan_streams_first_row_before_completion() {
    let setup = paper::setup(0.002, DatasetConfig::small());
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![4, 4])
        .unwrap();
    let first = r
        .first_row_wall
        .expect("parallel plans report first-row latency");
    assert!(first < r.wall, "first row must precede completion");
    assert!(
        first < r.wall / 2,
        "streaming: first row at {first:?} of {:?} total",
        r.wall
    );
    assert!(first > Duration::ZERO);
}

#[test]
fn central_plan_reports_no_first_row_latency() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    assert!(r.first_row_wall.is_none());
}

#[test]
fn projection_of_coordinator_column_through_levels() {
    // Project a column produced in the coordinator (gs.State) next to a
    // leaf-level column — the parameter projection must thread it through
    // both plan functions.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select gp.state, gl.placename \
               From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta' \
                 and gl.placeName=gp.ToPlace+', '+gp.ToState \
                 and gl.MaxItems=100 and gl.imagePresence='true'";
    let central = setup.wsmed.run_central(sql).unwrap();
    let parallel = setup.wsmed.run_parallel(sql, &vec![3, 2]).unwrap();
    assert_eq!(
        wsmed::store::canonicalize(parallel.rows),
        wsmed::store::canonicalize(central.rows.clone())
    );
    // Every row carries a two-letter state abbreviation in column 0.
    assert!(central
        .rows
        .iter()
        .all(|t| t.get(0).as_str().unwrap().len() == 2));
}

#[test]
fn materialized_baseline_matches_streamed_results() {
    // The WSQ/DSQ-style baseline must agree with every other strategy.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let central = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    let materialized = setup.wsmed.run_materialized(paper::QUERY2_SQL).unwrap();
    assert_eq!(
        wsmed::store::canonicalize(materialized),
        wsmed::store::canonicalize(central.rows)
    );
}

#[test]
fn materialized_baseline_drives_unbounded_concurrency() {
    use wsmed::services::UsZipService;
    // 51 GetInfoByState calls in one burst: peak in-flight far above the
    // provider's capacity of 4 — the behaviour bounded trees avoid.
    let setup = paper::setup(0.0005, DatasetConfig::tiny());
    setup.wsmed.run_materialized(paper::QUERY2_SQL).unwrap();
    let m = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics();
    assert!(
        m.max_in_flight > 10,
        "expected an unbounded burst, peak was {}",
        m.max_in_flight
    );
}
