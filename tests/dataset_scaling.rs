//! Referential-integrity properties of scaled synthetic datasets.
//!
//! The open-loop harness grows the geo world 100×–1000× with the
//! `DatasetConfig::scaled`/`with_jitter` knobs. Scaling must never break
//! the cross-service joins the paper's queries depend on:
//!
//! * every departure's flight has exactly one flight-status row, and its
//!   destination is a real airport of some state;
//! * zip codes stay globally unique across states (scaled worlds switch
//!   to the wide nine-digit numbering), and every zip resolves to at
//!   least one place;
//! * per-state counts actually multiply by the scale factor, while the
//!   flight population grows linearly (through airports), never
//!   quadratically;
//! * jitter varies counts but preserves integrity;
//! * `scale == 1` with zero jitter is byte-identical to the unscaled
//!   generation — the knobs are invisible until turned.

use std::collections::HashSet;

use proptest::prelude::*;

use wsmed::services::{Dataset, DatasetConfig};

/// Checks every join edge the paper's queries traverse.
fn assert_referential_integrity(ds: &Dataset) {
    // All airport codes, for destination lookups.
    let mut all_codes: HashSet<String> = HashSet::new();
    for state in ds.states() {
        for (code, city) in ds.airports(&state.abbr) {
            assert!(
                code.starts_with(&state.abbr),
                "airport {code} not coded for its state {}",
                state.abbr
            );
            assert!(city.ends_with(&state.abbr));
            assert!(all_codes.insert(code), "duplicate airport code");
        }
    }
    assert_eq!(all_codes.len(), ds.total_airport_count());

    // Aviation chain: departures → destination airports and flight status.
    let mut flights_seen = 0usize;
    for code in &all_codes {
        for (flight, dest) in ds.departures(code) {
            flights_seen += 1;
            assert!(
                all_codes.contains(&dest),
                "flight {flight} departs {code} for unknown airport {dest}"
            );
            assert_eq!(
                ds.flight_status(&flight).len(),
                1,
                "flight {flight} must have exactly one status row"
            );
        }
    }
    assert_eq!(flights_seen, ds.total_flight_count());

    // Zip chain: globally unique zips, each resolving to places.
    let mut zips_seen = HashSet::new();
    for state in ds.states() {
        let zipstr = ds
            .zips_for_state(&state.abbr)
            .expect("every state has zips");
        for zip in zipstr.split(',') {
            assert!(
                zips_seen.insert(zip.to_owned()),
                "zip {zip} appears in two states"
            );
            let places = ds.places_inside(zip);
            assert!(!places.is_empty(), "zip {zip} resolves to no places");
            for (_, st, _) in places {
                assert_eq!(st, state.abbr, "zip {zip} places claim the wrong state");
            }
        }
    }
    assert_eq!(zips_seen.len(), ds.total_zip_count());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // Integrity holds at 100× across arbitrary seeds and jitters, and the
    // per-state populations really do multiply: with zero jitter scaled
    // counts are exact, with jitter they stay within the jitter band.
    #[test]
    fn hundredfold_scaled_worlds_keep_referential_integrity(
        seed in 0u64..1_000_000,
        jitter in 0.0f64..0.4,
    ) {
        let base_cfg = DatasetConfig { seed, ..DatasetConfig::tiny() };
        let base = Dataset::generate(base_cfg.clone());
        let scaled = Dataset::generate(base_cfg.scaled(100).with_jitter(jitter));
        assert_referential_integrity(&scaled);

        let lo = (1.0 - jitter) * 100.0 * base.total_zip_count() as f64 - 51.0;
        let hi = (1.0 + jitter) * 100.0 * base.total_zip_count() as f64 + 51.0;
        let got = scaled.total_zip_count() as f64;
        prop_assert!(
            got >= lo && got <= hi,
            "zip population {got} outside jitter band [{lo:.0}, {hi:.0}]"
        );
        if jitter == 0.0 {
            prop_assert_eq!(scaled.total_zip_count(), 100 * base.total_zip_count());
            prop_assert_eq!(scaled.total_airport_count(), 100 * base.total_airport_count());
        }
        // Flights scale linearly through airports (3..=5 per airport),
        // never quadratically.
        prop_assert!(scaled.total_flight_count() >= 3 * scaled.total_airport_count());
        prop_assert!(scaled.total_flight_count() <= 5 * scaled.total_airport_count() + 51);
        // Anchor-state population is a selection, not a per-state count —
        // scaling must leave it alone.
        prop_assert_eq!(scaled.atlanta_state_count(), base.atlanta_state_count());
    }
}

/// The full 1000× world stays consistent and is still cheap enough to
/// generate (flights grow linearly, so this is ~hundreds of thousands of
/// rows, not hundreds of millions).
#[test]
fn thousandfold_scaled_world_keeps_referential_integrity() {
    let ds = Dataset::generate(DatasetConfig::tiny().scaled(1000));
    assert_referential_integrity(&ds);
    let base = Dataset::generate(DatasetConfig::tiny());
    assert_eq!(ds.total_zip_count(), 1000 * base.total_zip_count());
    assert_eq!(ds.total_airport_count(), 1000 * base.total_airport_count());
    assert!(ds.total_flight_count() >= 3 * ds.total_airport_count());
    assert!(ds.total_flight_count() <= 5 * ds.total_airport_count());
    // Wide numbering: scaled zips are nine digits, still unique per state.
    let zipstr = ds.zips_for_state("CO").expect("CO has zips");
    assert!(zipstr.split(',').all(|z| z.len() == 9 || z == "80840"));
}

/// Jitter actually varies per-state counts (a flat multiplier would make
/// every state identical), while zero jitter keeps them uniform.
#[test]
fn jitter_varies_per_state_counts() {
    let uniform = Dataset::generate(DatasetConfig::tiny().scaled(100));
    let jittered = Dataset::generate(DatasetConfig::tiny().scaled(100).with_jitter(0.3));

    let counts = |ds: &Dataset| -> Vec<usize> {
        ds.states()
            .iter()
            .map(|s| ds.zips_for_state(&s.abbr).unwrap().split(',').count())
            .collect()
    };
    let uniform_counts = counts(&uniform);
    let jittered_counts = counts(&jittered);
    assert!(
        uniform_counts.iter().all(|&c| c == uniform_counts[0]),
        "zero jitter must give every state the same zip count"
    );
    let distinct: HashSet<usize> = jittered_counts.iter().copied().collect();
    assert!(
        distinct.len() > 5,
        "0.3 jitter across 51 states should spread counts, got {distinct:?}"
    );
    assert_ne!(uniform.total_zip_count(), jittered.total_zip_count());
    // And jitter is itself seeded: regeneration reproduces it exactly.
    let again = Dataset::generate(DatasetConfig::tiny().scaled(100).with_jitter(0.3));
    assert_eq!(jittered_counts, counts(&again));
}

/// `scaled(1)` with zero jitter is invisible: every accessor output is
/// byte-identical to the unscaled generation.
#[test]
fn scale_one_is_byte_identical_to_base() {
    let base = Dataset::generate(DatasetConfig::tiny());
    let scaled = Dataset::generate(DatasetConfig::tiny().scaled(1).with_jitter(0.0));
    assert_eq!(base.states(), scaled.states());
    assert_eq!(base.atlanta_state_count(), scaled.atlanta_state_count());
    for state in base.states() {
        assert_eq!(
            base.zips_for_state(&state.abbr),
            scaled.zips_for_state(&state.abbr)
        );
        assert_eq!(base.airports(&state.abbr), scaled.airports(&state.abbr));
        for zip in base.zips_for_state(&state.abbr).unwrap().split(',') {
            assert_eq!(base.places_inside(zip), scaled.places_inside(zip));
        }
        for (code, _) in base.airports(&state.abbr) {
            assert_eq!(base.departures(&code), scaled.departures(&code));
            for (flight, _) in base.departures(&code) {
                assert_eq!(base.flight_status(&flight), scaled.flight_status(&flight));
            }
        }
        assert_eq!(
            base.places_within("Atlanta", &state.abbr, 15.0, "City"),
            scaled.places_within("Atlanta", &state.abbr, 15.0, "City")
        );
    }
}
