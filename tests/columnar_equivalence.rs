//! Property tests: the columnar wire path is *semantically invisible*.
//!
//! `BatchPolicy::columnar(n)` changes how parameter and result tuples are
//! laid out on the wire — whole typed columns instead of per-row encodings —
//! but must never change what a query returns. These tests force the
//! columnar path on and compare against the row path byte-for-byte
//! (canonicalized result bags plus the invariant `ExecutionReport`
//! counters) across cache × pool × batch-size configurations.

use proptest::prelude::*;

use wsmed::core::{paper, AdaptiveConfig, BatchPolicy, CachePolicy, PoolPolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 8,
        min_neighbors: 1,
        max_neighbors: 4,
        zips_per_state: 3,
        ..DatasetConfig::tiny()
    }
}

/// Builds a setup with the cache/pool toggles applied and the given batch
/// policy installed.
fn configured_setup(seed: u64, cache: bool, pool: bool, policy: BatchPolicy) -> paper::PaperSetup {
    let mut setup = paper::setup(0.0, dataset(seed));
    setup
        .wsmed
        .set_cache_policy(cache.then(CachePolicy::default));
    setup.wsmed.set_pool_policy(pool.then(|| PoolPolicy {
        enabled: true,
        ..PoolPolicy::default()
    }));
    setup.wsmed.set_batch_policy(policy);
    setup
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn prop_columnar_ff_matches_row_path(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        fo2 in 0usize..6,
        batch in 1usize..80,
        cache in any::<bool>(),
        pool in any::<bool>(),
    ) {
        let row = configured_setup(seed, cache, pool, BatchPolicy::uniform(batch))
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        let col = configured_setup(seed, cache, pool, BatchPolicy::columnar(batch))
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        prop_assert_eq!(col.rows.len(), row.rows.len());
        prop_assert_eq!(col.ws_calls, row.ws_calls);
        prop_assert_eq!(col.messages, row.messages);
        prop_assert_eq!(
            canonicalize(col.rows),
            canonicalize(row.rows),
            "fanouts {{{},{}}} batch {} cache {} pool {} seed {}",
            fo1, fo2, batch, cache, pool, seed
        );
    }

    #[test]
    fn prop_columnar_aff_matches_row_path(
        seed in 0u64..1000,
        add_step in 1usize..5,
        batch in 1usize..80,
        cache in any::<bool>(),
        pool in any::<bool>(),
    ) {
        let config = AdaptiveConfig { add_step, ..Default::default() };
        let row = configured_setup(seed, cache, pool, BatchPolicy::uniform(batch))
            .wsmed
            .run_adaptive(paper::QUERY2_SQL, &config)
            .unwrap();
        let col = configured_setup(seed, cache, pool, BatchPolicy::columnar(batch))
            .wsmed
            .run_adaptive(paper::QUERY2_SQL, &config)
            .unwrap();
        prop_assert_eq!(col.rows.len(), row.rows.len());
        prop_assert_eq!(col.ws_calls, row.ws_calls);
        prop_assert_eq!(
            canonicalize(col.rows),
            canonicalize(row.rows),
            "p={} batch {} cache {} pool {} seed {}",
            add_step, batch, cache, pool, seed
        );
    }

    #[test]
    fn prop_columnar_equivalent_to_central(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        batch in 1usize..40,
    ) {
        // End-to-end against the unparallelized baseline: the columnar path
        // composed with every other optimization still reproduces the
        // central plan's bag exactly.
        let setup = paper::setup(0.0, dataset(seed));
        let central = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
        let col = configured_setup(seed, true, true, BatchPolicy::columnar(batch))
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, 2])
            .unwrap();
        prop_assert_eq!(
            canonicalize(col.rows),
            canonicalize(central.rows),
            "fanout {} batch {} seed {}", fo1, batch, seed
        );
    }
}
