//! Golden snapshots of the full compilation pipeline for both paper
//! queries: calculus text, central plan shape and parallel plan shape.
//! Any unintended change to the frontend, planner or parallelizer shows up
//! as a diff here.

use wsmed::core::paper;
use wsmed::services::DatasetConfig;

#[test]
fn query1_calculus_snapshot() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let calc = setup.wsmed.calculus(paper::QUERY1_SQL).unwrap().to_string();
    assert_eq!(
        calc,
        "Query(placename, state) :- \
         GetAllStates( -> _, _, state, _, _, _, _) AND \
         GetPlacesWithin(\"Atlanta\", state, 15, \"City\" -> toplace, tostate, _) AND \
         concat3(toplace, \", \", tostate -> placename) AND \
         GetPlaceList(placename, 100, \"true\" -> placename, state, _, _, _, _, _, _)"
    );
}

#[test]
fn query2_calculus_snapshot() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let calc = setup.wsmed.calculus(paper::QUERY2_SQL).unwrap().to_string();
    assert_eq!(
        calc,
        "Query(tostate, zipcode) :- \
         GetAllStates( -> _, _, state, _, _, _, _) AND \
         GetInfoByState(state -> getinfobystateresult) AND \
         getzipcode(getinfobystateresult -> zipcode) AND \
         GetPlacesInside(zipcode -> toplace, tostate, _) AND \
         equal(\"USAF Academy\", toplace)"
    );
}

#[test]
fn query1_central_plan_snapshot() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let plan = setup.wsmed.compile_central(paper::QUERY1_SQL).unwrap();
    let text = plan.to_string();
    let expect = "\
columns: [placename, state]
π [#11, #12]
  γ GetPlaceList(#10, 100, \"true\")
    γ concat3(#7, \", \", #8)
      γ GetPlacesWithin(\"Atlanta\", #2, 15, \"City\")
        γ GetAllStates()
          unit
";
    assert_eq!(text, expect);
}

#[test]
fn query2_parallel_plan_snapshot() {
    // The nested FF structure of Fig. 13, with projected parameters.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let plan = setup
        .wsmed
        .compile_parallel(paper::QUERY2_SQL, &vec![4, 3])
        .unwrap();
    let text = plan.to_string();
    let expect = "\
columns: [tostate, zipcode]
π [#2, #0]
  FF_γ PF1 fanout=4
    [PF1(param/1) ->]
      FF_γ PF2 fanout=3
        [PF2(param/1) ->]
          γ equal(\"USAF Academy\", #1)
            γ GetPlacesInside(#0)
              param/1
        π [#2]
          γ getzipcode(#1)
            γ GetInfoByState(#0)
              param/1
    π [#2]
      γ GetAllStates()
        unit
";
    assert_eq!(text, expect);
}

#[test]
fn grouped_query_plan_snapshot() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let plan = setup
        .wsmed
        .compile_central(
            "select count(*), gs.Type from GetAllStates gs \
             group by gs.Type having count(*) > 10 order by gs.Type limit 3",
        )
        .unwrap();
    let text = plan.to_string();
    let expect = "\
columns: [count, type]
limit 3
  sort [#1]
    γ gt(#0, 10)
      π [#1, #0]
        group by #0..#1 [count(*)]
          π [#1]
            γ GetAllStates()
              unit
";
    assert_eq!(text, expect);
}
