//! Behavioural tests of `AFF_APPLYP`'s adaptation (paper §V.A): binary
//! init, add stages under load, drop stages, convergence, and caps.

use wsmed::core::{paper, AdaptiveConfig};
use wsmed::services::DatasetConfig;

/// A scale that makes the latency model felt without slowing tests much:
/// Query2-small is ~330 model-seconds ⇒ ~0.20s wall at 0.0006.
const SCALE: f64 = 0.0006;

#[test]
fn starts_with_binary_tree_then_grows_under_load() {
    let setup = paper::setup(SCALE, DatasetConfig::small());
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .unwrap();
    // The init stage creates 2 children per level; under real latency the
    // first monitoring cycle must have triggered at least one add stage.
    assert!(
        r.tree.levels[1].ever >= 4 || r.tree.levels[2].ever >= 6,
        "no add stage ran: {:?}",
        r.tree
    );
    assert!(
        r.tree.adds > 2 * 2,
        "adds counter too small: {}",
        r.tree.adds
    );
}

#[test]
fn zero_latency_means_little_growth() {
    // With no modeled latency, adding processes cannot reduce the per-tuple
    // time much, so adaptation should converge quickly to small trees.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .unwrap();
    let leaves = r.tree.levels.last().unwrap();
    assert!(
        leaves.ever <= 40,
        "tree exploded without latency to hide: {:?}",
        r.tree
    );
}

#[test]
fn max_fanout_caps_growth() {
    let setup = paper::setup(SCALE, DatasetConfig::small());
    let config = AdaptiveConfig {
        add_step: 4,
        max_fanout: 3,
        ..Default::default()
    };
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &config)
        .unwrap();
    assert!(r.tree.fanout_at(0).unwrap() <= 3.0, "{:?}", r.tree);
    assert!(r.tree.fanout_at(1).unwrap() <= 3.0, "{:?}", r.tree);
}

#[test]
fn drop_stage_reduces_processes() {
    // With an aggressive add step and the drop stage enabled, some subtree
    // should be dropped once the per-tuple time worsens.
    let setup = paper::setup(SCALE, DatasetConfig::small());
    let config = AdaptiveConfig {
        add_step: 4,
        drop_enabled: true,
        threshold: 0.05,
        ..Default::default()
    };
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &config)
        .unwrap();
    assert_eq!(r.row_count(), 1);
    // Dropping isn't guaranteed at every scale, but processes that were
    // ever created and are no longer alive indicate drops took effect.
    let ever: usize = r.tree.levels.iter().map(|l| l.ever).sum();
    let alive = r.tree.total_alive();
    assert!(
        r.tree.drops > 0 || ever == alive,
        "inconsistent accounting: ever {ever}, alive {alive}, drops {}",
        r.tree.drops
    );
}

#[test]
fn init_fanout_is_respected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let config = AdaptiveConfig {
        init_fanout: 3,
        add_step: 0, // never add
        ..Default::default()
    };
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY1_SQL, &config)
        .unwrap();
    assert_eq!(r.tree.levels[1].ever, 3, "{:?}", r.tree);
}

#[test]
fn adaptive_beats_binary_tree_under_load() {
    // The whole point of AFF_APPLYP: starting from the same binary tree it
    // must end up meaningfully faster than a *frozen* binary tree.
    let setup = paper::setup(0.002, DatasetConfig::small());
    let w = &setup.wsmed;

    let t0 = std::time::Instant::now();
    w.run_parallel(paper::QUERY1_SQL, &vec![2, 2]).unwrap();
    let frozen = t0.elapsed();

    let t0 = std::time::Instant::now();
    w.run_adaptive(paper::QUERY1_SQL, &AdaptiveConfig::default())
        .unwrap();
    let adaptive = t0.elapsed();

    assert!(
        adaptive.as_secs_f64() < frozen.as_secs_f64() * 0.9,
        "adaptive {adaptive:?} should beat frozen binary {frozen:?}"
    );
}

#[test]
fn adaptation_times_are_included_in_reported_tree() {
    let setup = paper::setup(SCALE, DatasetConfig::small());
    let r = setup
        .wsmed
        .run_adaptive(
            paper::QUERY1_SQL,
            &AdaptiveConfig {
                add_step: 3,
                ..Default::default()
            },
        )
        .unwrap();
    // Average fanouts are fractional once levels adapt unevenly — this is
    // what the paper reports in Fig. 21 ("average fanouts").
    let fo1 = r.tree.fanout_at(0).unwrap();
    assert!(fo1 >= 2.0, "coordinator fanout shrank below init: {fo1}");
}

#[test]
fn adaptation_events_record_the_lifecycle() {
    let setup = paper::setup(SCALE, DatasetConfig::small());
    let r = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .unwrap();
    let events = &r.tree.adapt_events;
    assert!(!events.is_empty(), "adaptive runs must log decisions");
    // The first decision of any adapting node is the paper's rule: after
    // the first monitoring cycle, run an add stage (or hit the cap).
    let mut seen_processes = std::collections::HashSet::new();
    for event in events {
        if seen_processes.insert(event.process) {
            assert!(
                event.decision.starts_with("add:") || event.decision == "stop",
                "first decision of q{} was {:?}",
                event.process,
                event.decision
            );
        }
        assert!(event.per_tuple_secs >= 0.0);
        assert!(event.alive >= 1);
    }
    // Both parallel levels adapted.
    let levels: std::collections::HashSet<usize> = events.iter().map(|e| e.level).collect();
    assert!(levels.contains(&0), "coordinator adapted");
    assert!(levels.contains(&1), "level-1 processes adapted");
    // Once a node converges/stops, it never decides again... meaning a
    // `stop`/`converged` is the last event of that process.
    for process in seen_processes {
        let of_process: Vec<_> = events.iter().filter(|e| e.process == process).collect();
        for (i, e) in of_process.iter().enumerate() {
            if e.decision == "stop" || e.decision == "converged" {
                assert!(
                    of_process[i..]
                        .iter()
                        .all(|later| later.decision == "stop" || later.decision == "converged"),
                    "q{process} acted again after stopping"
                );
            }
        }
    }
}

#[test]
fn fixed_fanout_runs_log_no_adaptation() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap();
    assert!(r.tree.adapt_events.is_empty());
}
