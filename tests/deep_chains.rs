//! Dependent-join chains deeper than the paper's experiments.
//!
//! §VII claims "our algebra operators FF_APPLYP and AFF_APPLYP can handle
//! parallel query plans for a query with any number of dependent joins" —
//! but the evaluation only exercised two parallel levels. These tests
//! build three- and four-level chains over mock services and check that
//! the whole pipeline (SQL → calculus → central → rewrite → process tree)
//! handles them, with correct results, correct tree depth, and scalar
//! shipped parameters at every level.

use std::sync::Arc;

use wsmed::core::{
    create_central_plan, parallelize, parallelize_adaptive, AdaptiveConfig, CoreError, ExecContext,
    MockTransport, OwfCatalog, PlanOp, QueryPlan, WsTransport,
};
use wsmed::netsim::SimConfig;
use wsmed::sql::{generate_calculus, parse_select};
use wsmed::store::{canonicalize, FunctionRegistry, Record, SqlType, Value};
use wsmed::wsdl::{OperationDef, TypeNode, WsdlDocument};

/// Builds a catalog of chained split operations:
/// `Root() -> s0`, then `SplitN(sN-1) -> sN` for each level.
fn chain_catalog(levels: usize) -> Arc<OwfCatalog> {
    let mut operations = vec![OperationDef {
        name: "Root".into(),
        inputs: vec![],
        output: TypeNode::Record {
            name: "RootResponse".into(),
            fields: vec![TypeNode::Repeated {
                element: Box::new(TypeNode::Scalar {
                    name: "s0".into(),
                    ty: SqlType::Charstring,
                }),
            }],
        },
        doc: None,
    }];
    for level in 1..=levels {
        operations.push(OperationDef {
            name: format!("Split{level}"),
            inputs: vec![(format!("in{level}"), SqlType::Charstring)],
            output: TypeNode::Record {
                name: format!("Split{level}Response"),
                fields: vec![TypeNode::Repeated {
                    element: Box::new(TypeNode::Scalar {
                        name: format!("s{level}"),
                        ty: SqlType::Charstring,
                    }),
                }],
            },
            doc: None,
        });
    }
    let doc = WsdlDocument {
        service_name: "Chain".into(),
        target_namespace: "urn:chain".into(),
        operations,
    };
    let mut cat = OwfCatalog::new();
    cat.import(&doc, "urn:chain.wsdl").unwrap();
    Arc::new(cat)
}

/// Mock service: `Root` emits two seeds; every `SplitN` fans each input
/// into two values tagged with the level, so an L-level chain returns
/// `2^(L+1)` rows.
fn chain_transport() -> Arc<MockTransport> {
    MockTransport::new(|owf, args| {
        let field = owf.columns[0].0.clone();
        let parts: Vec<Value> = if owf.operation == "Root" {
            vec![Value::str("seedA"), Value::str("seedB")]
        } else {
            let input = args[0].as_str().map_err(CoreError::Store)?;
            let level = owf.operation.trim_start_matches("Split");
            vec![
                Value::from(format!("{input}/L{level}a")),
                Value::from(format!("{input}/L{level}b")),
            ]
        };
        Ok(Value::Record(
            Record::new().with(field, Value::Sequence(parts)),
        ))
    })
}

/// Compiles the L-level chain query through the full SQL pipeline.
fn compile_chain(levels: usize, owfs: &OwfCatalog) -> QueryPlan {
    let mut from = vec!["Root r".to_owned()];
    let mut preds = Vec::new();
    for level in 1..=levels {
        from.push(format!("Split{level} p{level}"));
        let producer = if level == 1 {
            "r.s0".to_owned()
        } else {
            format!("p{}.s{}", level - 1, level - 1)
        };
        preds.push(format!("{producer} = p{level}.in{level}"));
    }
    let sql = format!(
        "select p{levels}.s{levels} from {} where {}",
        from.join(", "),
        preds.join(" and ")
    );
    let stmt = parse_select(&sql).unwrap();
    let calc = generate_calculus(&stmt, &owfs.sql_catalog()).unwrap();
    create_central_plan(&calc, owfs, &FunctionRegistry::with_builtins()).unwrap()
}

fn run(plan: &QueryPlan, owfs: &Arc<OwfCatalog>) -> wsmed::core::ExecutionReport {
    let ctx = ExecContext::new(
        chain_transport() as Arc<dyn WsTransport>,
        Arc::clone(owfs),
        SimConfig::default(),
    );
    ctx.run_plan(plan).unwrap()
}

#[test]
fn three_level_chain_parallelizes_to_depth_three() {
    let owfs = chain_catalog(3);
    let central = compile_chain(3, &owfs);
    assert_eq!(
        central.root.owf_calls(),
        vec!["Root", "Split1", "Split2", "Split3"]
    );

    let parallel = parallelize(&central, &vec![2, 2, 2]).unwrap();
    assert_eq!(parallel.root.parallel_depth(), 3);

    let c = run(&central, &owfs);
    let p = run(&parallel, &owfs);
    assert_eq!(c.row_count(), 16); // 2 seeds × 2 × 2 × 2
    assert_eq!(canonicalize(p.rows.clone()), canonicalize(c.rows.clone()));
    // Full tree: 1 + 2 + 4 + 8 processes.
    assert_eq!(p.tree.levels[1].alive, 2);
    assert_eq!(p.tree.levels[2].alive, 4);
    assert_eq!(p.tree.levels[3].alive, 8);
}

#[test]
fn four_level_chain_with_mixed_fanouts() {
    let owfs = chain_catalog(4);
    let central = compile_chain(4, &owfs);
    let parallel = parallelize(&central, &vec![3, 1, 2, 1]).unwrap();
    assert_eq!(parallel.root.parallel_depth(), 4);
    let c = run(&central, &owfs);
    let p = run(&parallel, &owfs);
    assert_eq!(c.row_count(), 32);
    assert_eq!(canonicalize(p.rows), canonicalize(c.rows));
    assert_eq!(p.tree.levels[1].alive, 3);
    assert_eq!(p.tree.levels[2].alive, 3);
    assert_eq!(p.tree.levels[3].alive, 6);
    assert_eq!(p.tree.levels[4].alive, 6);
}

#[test]
fn middle_level_can_be_merged_flat() {
    let owfs = chain_catalog(3);
    let central = compile_chain(3, &owfs);
    // {2, 0, 2}: Split2 merges into Split1's plan function — three OWFs on
    // two parallel levels.
    let parallel = parallelize(&central, &vec![2, 0, 2]).unwrap();
    assert_eq!(parallel.root.parallel_depth(), 2);
    let c = run(&central, &owfs);
    let p = run(&parallel, &owfs);
    assert_eq!(canonicalize(p.rows), canonicalize(c.rows));
}

#[test]
fn deep_chain_parameters_stay_scalar() {
    // Parameter projection must hold at every depth: each level ships only
    // the column the next split consumes.
    let owfs = chain_catalog(4);
    let central = compile_chain(4, &owfs);
    let parallel = parallelize(&central, &vec![2, 2, 2, 2]).unwrap();
    let mut op = &parallel.root;
    let mut depth = 0;
    loop {
        if let PlanOp::FfApply { pf, .. } = op {
            assert_eq!(pf.param_arity, 1, "{} ships more than one column", pf.name);
            depth += 1;
            op = &pf.body;
            continue;
        }
        match op.input() {
            Some(input) => op = input,
            None => break,
        }
    }
    assert_eq!(depth, 4);
}

#[test]
fn adaptive_works_on_deep_chains() {
    let owfs = chain_catalog(3);
    let central = compile_chain(3, &owfs);
    let adaptive = parallelize_adaptive(&central, &AdaptiveConfig::default()).unwrap();
    assert_eq!(adaptive.root.parallel_depth(), 3);
    let c = run(&central, &owfs);
    let a = run(&adaptive, &owfs);
    assert_eq!(canonicalize(a.rows), canonicalize(c.rows));
    // The init stage builds a binary tree at every level.
    assert!(a.tree.levels[1].ever >= 2);
    assert!(a.tree.levels[2].ever >= 4);
    assert!(a.tree.levels[3].ever >= 8);
}
