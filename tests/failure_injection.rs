//! Failure injection: provider faults must surface as clean errors, tear
//! the process tree down without leaks, and leave the mediator usable.

use wsmed::core::{paper, AdaptiveConfig, CoreError};
use wsmed::netsim::FaultSpec;
use wsmed::services::{DatasetConfig, GeoPlacesService, UsZipService, ZipCodesService};

#[test]
fn fault_in_coordinator_section_fails_fast() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    // GetAllStates runs in the coordinator; failing its first call kills
    // the query before any children do work.
    let geo = setup.network.provider(GeoPlacesService::PROVIDER).unwrap();
    geo.set_fault(FaultSpec {
        fail_first: 1,
        ..Default::default()
    });
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![2, 2])
        .unwrap_err();
    assert!(matches!(err, CoreError::Net(_)), "unexpected error {err:?}");
    assert_eq!(setup.network.total_metrics().faults, 1);
}

#[test]
fn fault_in_level_one_provider_propagates() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let uszip = setup.network.provider(UsZipService::PROVIDER).unwrap();
    uszip.set_fault(FaultSpec::every(5));
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 2])
        .unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => {
            assert!(
                msg.contains("GetInfoByState"),
                "error should name the operation: {msg}"
            )
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn fault_in_leaf_provider_propagates_through_two_levels() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(10));
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => {
            assert!(
                msg.contains("GetPlacesInside"),
                "error should name the operation: {msg}"
            )
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn mediator_recovers_after_fault_cleared() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();

    zip.set_fault(FaultSpec::every(3));
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());

    zip.set_fault(FaultSpec::none());
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap();
    assert_eq!(ok.row_count(), 1);
}

#[test]
fn adaptive_plan_also_fails_cleanly() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec {
        fail_probability: 0.2,
        ..Default::default()
    });
    let result = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default());
    assert!(result.is_err(), "20% faults must kill the query");
}

#[test]
fn no_thread_leak_after_repeated_failures() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(2));
    for _ in 0..5 {
        let _ = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![3, 3]);
    }
    zip.set_fault(FaultSpec::none());
    // If child threads leaked, the runtime would accumulate processes; a
    // fresh run must still report exactly the requested tree and succeed.
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 3])
        .unwrap();
    assert_eq!(ok.tree.levels[1].alive, 3);
    assert_eq!(ok.tree.levels[2].alive, 9);
    assert_eq!(ok.row_count(), 1);
}

#[test]
fn partial_results_are_not_returned_on_failure() {
    // A query that fails midway must error, not silently return a subset.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Fail late: plenty of tuples already produced when the fault hits.
    zip.set_fault(FaultSpec::every(200));
    let result = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![3, 2]);
    assert!(result.is_err());
}

#[test]
fn retry_policy_recovers_from_transient_faults() {
    use wsmed::core::RetryPolicy;
    // Every 3rd call faults; with 3 attempts per call every parameter
    // eventually succeeds (retries draw fresh call sequence numbers).
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(3));

    // Without retries the query dies on the first faulting call.
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());

    setup.wsmed.set_retry_policy(RetryPolicy::attempts(3));
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("retries should absorb every-3rd faults");
    assert_eq!(ok.row_count(), 1);
    // Faults really happened and were retried through.
    assert!(zip.metrics().faults > 0);
}

#[test]
fn retry_policy_does_not_mask_permanent_faults() {
    use wsmed::core::RetryPolicy;
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Everything fails, forever.
    zip.set_fault(FaultSpec {
        fail_probability: 1.0,
        ..Default::default()
    });
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(3));
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());
}

#[test]
fn retry_policy_ignores_non_transient_errors() {
    use wsmed::core::RetryPolicy;
    // A bad query fails identically with or without retries.
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(5));
    assert!(setup
        .wsmed
        .run_central("select gs.Bogus from GetAllStates gs")
        .is_err());
}
