//! Failure injection: provider faults must surface as clean errors, tear
//! the process tree down without leaks, and leave the mediator usable.
//! With structured tracing enabled, the event stream must stay
//! well-formed through every failure path — including faults landing
//! inside an adaptation window, faults during warm-pool reattach, and
//! abrupt child kills whose in-flight parameters are requeued.

use wsmed::core::{obs, paper, AdaptiveConfig, CoreError, TraceEventKind, TracePolicy};
use wsmed::netsim::FaultSpec;
use wsmed::services::{DatasetConfig, GeoPlacesService, UsZipService, ZipCodesService};

/// Reads a trace until its lifecycle story is quiescent (pool parking is
/// asynchronous), then asserts it is well-formed and returns the events.
fn settled_events(trace: &wsmed::core::TraceLog) -> Vec<wsmed::core::TraceEvent> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let events = trace.events();
        let violations = obs::validate(&events);
        if violations.is_empty() {
            return events;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "trace never settled: {violations:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn fault_in_coordinator_section_fails_fast() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    // GetAllStates runs in the coordinator; failing its first call kills
    // the query before any children do work.
    let geo = setup.network.provider(GeoPlacesService::PROVIDER).unwrap();
    geo.set_fault(FaultSpec {
        fail_first: 1,
        ..Default::default()
    });
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![2, 2])
        .unwrap_err();
    assert!(matches!(err, CoreError::Net(_)), "unexpected error {err:?}");
    assert_eq!(setup.network.total_metrics().faults, 1);
}

#[test]
fn fault_in_level_one_provider_propagates() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let uszip = setup.network.provider(UsZipService::PROVIDER).unwrap();
    uszip.set_fault(FaultSpec::every(5));
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 2])
        .unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => {
            assert!(
                msg.contains("GetInfoByState"),
                "error should name the operation: {msg}"
            )
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn fault_in_leaf_provider_propagates_through_two_levels() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(10));
    let err = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => {
            assert!(
                msg.contains("GetPlacesInside"),
                "error should name the operation: {msg}"
            )
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn mediator_recovers_after_fault_cleared() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();

    zip.set_fault(FaultSpec::every(3));
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());

    zip.set_fault(FaultSpec::none());
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap();
    assert_eq!(ok.row_count(), 1);
}

#[test]
fn adaptive_plan_also_fails_cleanly() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec {
        fail_probability: 0.2,
        ..Default::default()
    });
    let result = setup
        .wsmed
        .run_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default());
    assert!(result.is_err(), "20% faults must kill the query");
}

#[test]
fn no_thread_leak_after_repeated_failures() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(2));
    for _ in 0..5 {
        let _ = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![3, 3]);
    }
    zip.set_fault(FaultSpec::none());
    // If child threads leaked, the runtime would accumulate processes; a
    // fresh run must still report exactly the requested tree and succeed.
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 3])
        .unwrap();
    assert_eq!(ok.tree.levels[1].alive, 3);
    assert_eq!(ok.tree.levels[2].alive, 9);
    assert_eq!(ok.row_count(), 1);
}

#[test]
fn partial_results_are_not_returned_on_failure() {
    // A query that fails midway must error, not silently return a subset.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Fail late: plenty of tuples already produced when the fault hits.
    zip.set_fault(FaultSpec::every(200));
    let result = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![3, 2]);
    assert!(result.is_err());
}

#[test]
fn retry_policy_recovers_from_transient_faults() {
    use wsmed::core::RetryPolicy;
    // Every 3rd call faults; with 3 attempts per call every parameter
    // eventually succeeds (retries draw fresh call sequence numbers).
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(3));

    // Without retries the query dies on the first faulting call.
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());

    setup.wsmed.set_retry_policy(RetryPolicy::attempts(3));
    let ok = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("retries should absorb every-3rd faults");
    assert_eq!(ok.row_count(), 1);
    // Faults really happened and were retried through.
    assert!(zip.metrics().faults > 0);
}

#[test]
fn retry_policy_does_not_mask_permanent_faults() {
    use wsmed::core::RetryPolicy;
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Everything fails, forever.
    zip.set_fault(FaultSpec {
        fail_probability: 1.0,
        ..Default::default()
    });
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(3));
    assert!(setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .is_err());
}

#[test]
fn fault_inside_adaptation_window_surfaces_with_trace() {
    // The every-40th fault lands well after the first monitoring cycles
    // have run add stages, i.e. *inside* the adaptation window — the run
    // must die cleanly (never hang) and its trace must stay well-formed,
    // with cycle decisions recorded before the failure.
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::every(40));

    let plan = setup
        .wsmed
        .compile_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .expect("query compiles");
    let (result, trace) = setup.wsmed.execute_traced(&plan);
    let err = result.unwrap_err();
    assert!(matches!(err, CoreError::ProcessFailure(_)), "{err:?}");

    let trace = trace.expect("failed run still traced");
    let events = settled_events(&trace);
    let cycles = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Cycle { .. }))
        .count();
    assert!(cycles > 0, "fault must land after adaptation began");
    let run_end_ok = events.iter().find_map(|e| match e.kind {
        TraceEventKind::RunEnd { ok, .. } => Some(ok),
        _ => None,
    });
    assert_eq!(run_end_ok, Some(false), "trace must record the failed run");
}

#[test]
fn retry_exhaustion_during_adaptation_errors_not_hangs() {
    use wsmed::core::RetryPolicy;
    // 30% per-call fault probability: two attempts per call exhaust on
    // the first call whose retry also rolls a fault. The adaptive run
    // must surface the exhaustion as a query error — completion of this
    // test at all proves no hang — and the trace must carry the retry
    // attempts it burned.
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(2));
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec {
        fail_probability: 0.3,
        ..Default::default()
    });

    let plan = setup
        .wsmed
        .compile_adaptive(paper::QUERY2_SQL, &AdaptiveConfig::default())
        .expect("query compiles");
    let (result, trace) = setup.wsmed.execute_traced(&plan);
    assert!(result.is_err(), "30% faults must exhaust 2 attempts");

    let trace = trace.expect("failed run still traced");
    let events = settled_events(&trace);
    let max_attempt = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::RetryAttempt { attempt, .. } => Some(attempt),
            _ => None,
        })
        .max();
    assert_eq!(
        max_attempt,
        Some(2),
        "exhaustion means a second attempt ran"
    );
}

#[test]
fn fault_during_warm_pool_reattach_errors_cleanly() {
    // Run 1 parks a warm tree; a total outage then makes the reattached
    // run 2 fail; clearing the fault lets run 3 succeed again — and every
    // traced stream stays well-formed across park / reattach / teardown.
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    setup.wsmed.enable_process_pool(true);
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();

    let ok1 = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("clean first run");
    settled_events(ok1.trace.as_ref().unwrap());
    let pool = setup.wsmed.process_pool().unwrap().clone();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while pool.idle_total() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(pool.idle_total() > 0, "first run parked nothing");

    zip.set_fault(FaultSpec {
        fail_probability: 1.0,
        ..Default::default()
    });
    let plan2 = setup
        .wsmed
        .compile_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("query compiles");
    let (result2, trace2) = setup.wsmed.execute_traced(&plan2);
    let err = result2.unwrap_err();
    assert!(matches!(err, CoreError::ProcessFailure(_)), "{err:?}");
    let trace2 = trace2.expect("failed run still traced");
    let events2 = settled_events(&trace2);
    assert!(
        events2
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::ChildSpawn { warm: true })),
        "second run must have reattached warm processes"
    );

    zip.set_fault(FaultSpec::none());
    let ok3 = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("recovery after clearing the fault");
    assert_eq!(ok3.row_count(), 1);
    settled_events(ok3.trace.as_ref().unwrap());
}

#[test]
fn requeued_params_appear_exactly_once_in_trace() {
    use std::sync::Arc;
    use wsmed::core::{ExecContext, SimTransport, Wsmed};
    use wsmed::netsim::{Network, SimConfig};
    use wsmed::services::{install_paper_services, Dataset};
    use wsmed::store::canonicalize;

    // Build the paper world by hand so the cloned registry can feed a
    // standalone ExecContext (the abrupt-kill knob lives there).
    let sim = SimConfig::new(0.0, 0x5EED_1CDE);
    let network = Network::new(sim.clone());
    let dataset = Arc::new(Dataset::generate(DatasetConfig::tiny()));
    let registry = install_paper_services(network, dataset);
    let mut wsmed = Wsmed::new(registry.clone());
    wsmed.import_all_wsdl().expect("paper services import");
    let plan = wsmed
        .compile_parallel(paper::QUERY2_SQL, &vec![3, 2])
        .expect("compile Query2");
    let clean = wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 2])
        .expect("reference run");

    let ctx = ExecContext::new(
        Arc::new(SimTransport::new(registry)) as Arc<dyn wsmed::core::WsTransport>,
        Arc::new(wsmed.owfs().clone()),
        sim,
    );
    ctx.set_trace_policy(TracePolicy::enabled());
    // After 2 end-of-call messages the coordinator abruptly kills one
    // busy child and requeues its in-flight parameters.
    ctx.arm_child_failure_after_eocs(2);
    let report = ctx.run_plan(&plan).expect("run survives the child kill");

    // The kill did not lose or duplicate rows…
    assert_eq!(
        canonicalize(report.rows.clone()),
        canonicalize(clean.rows.clone())
    );

    // …and the trace tells the story exactly once: one abrupt kill, one
    // requeue event, and every level-1 parameter dispatched exactly
    // `initial + requeued` times.
    let events = settled_events(report.trace.as_ref().unwrap());
    let requeues: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::Requeue { params, .. } => Some(params),
            _ => None,
        })
        .collect();
    assert_eq!(
        requeues.len(),
        1,
        "exactly one requeue recorded: {events:?}"
    );

    let op_params: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::OpRunStart { params } if e.node == 0 => Some(params),
            _ => None,
        })
        .sum();
    let dispatched: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::CallDispatched { params } if e.level == 1 => Some(params),
            _ => None,
        })
        .sum();
    assert_eq!(
        dispatched,
        op_params + requeues[0],
        "requeued params must be re-dispatched exactly once"
    );
}

#[test]
fn retry_policy_ignores_non_transient_errors() {
    use wsmed::core::RetryPolicy;
    // A bad query fails identically with or without retries.
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_retry_policy(RetryPolicy::attempts(5));
    assert!(setup
        .wsmed
        .run_central("select gs.Bogus from GetAllStates gs")
        .is_err());
}

// ---------------------------------------------------------------------------
// Resilient transport: deadlines, breakers, hedging, partial degradation.
// ---------------------------------------------------------------------------

use wsmed::core::{BreakerPolicy, FailureMode, HedgePolicy, ResiliencePolicy};

/// Query2's chain without the final `ToPlace` filter: the zip is in the
/// projection, so a dropped `GetPlacesInside` parameter is visible as a
/// missing distinct zip — exact skip accounting is checkable row-side.
const UNFILTERED_Q2: &str = "\
    select gp.ToState, gp.zip \
    From GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp \
    Where gs.State=gi.USState and gi.GetInfoByStateResult=gc.zipstr \
      and gc.zipcode=gp.zip";

fn distinct_zips(rows: &[wsmed::store::Tuple]) -> std::collections::BTreeSet<String> {
    rows.iter().map(|r| r.values()[1].render()).collect()
}

#[test]
fn deadline_converts_hangs_into_timeouts_and_retries_recover() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let clean = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("clean run");

    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Hangs are seq-keyed: a retry draws a fresh sequence number, so a
    // bounded retry budget recovers every hang the deadline exposes.
    zip.set_fault(FaultSpec::hang_every(7));
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        max_attempts: 3,
        deadline_model_secs: Some(5.0),
        ..ResiliencePolicy::default()
    });
    let report = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("deadline + retries absorb hangs");
    assert_eq!(
        wsmed::store::canonicalize(report.rows.clone()),
        wsmed::store::canonicalize(clean.rows.clone())
    );
    assert!(
        report.resilience.deadline_exceeded > 0,
        "hangs must surface as deadline hits: {:?}",
        report.resilience
    );
    assert!(report.resilience.retries > 0);
    // The network counted the cut-off calls as timeouts.
    let (_, zip_metrics) = setup
        .network
        .metrics_by_provider()
        .into_iter()
        .find(|(name, _)| name == ZipCodesService::PROVIDER)
        .unwrap();
    assert!(zip_metrics.timeouts > 0);
}

#[test]
fn without_deadline_hangs_charge_their_full_stall() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::hang_every(10));
    let before = setup.network.model_time();
    setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .expect("hangs without a deadline still terminate (finite stall)");
    let charged = setup.network.model_time() - before;
    // Every hang stalls `hang_model_secs` (600) model seconds: even one
    // dwarfs the whole clean query.
    assert!(
        charged > 600.0,
        "hung calls must be charged their stall ({charged:.1} model-s)"
    );
}

#[test]
fn partial_mode_drops_failing_params_with_exact_accounting() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let clean = setup
        .wsmed
        .run_parallel(UNFILTERED_Q2, &vec![2, 2])
        .expect("clean run");
    let clean_zips = distinct_zips(&clean.rows);

    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    // Args-keyed faults: the same zips fail on every attempt, so retries
    // cannot mask the drop and the skip count is schedule-independent.
    zip.set_fault(FaultSpec {
        fail_probability: 0.1,
        keyed_by_args: true,
        ..FaultSpec::default()
    });
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        max_attempts: 2,
        failure_mode: FailureMode::Partial,
        ..ResiliencePolicy::default()
    });
    let report = setup
        .wsmed
        .run_parallel(UNFILTERED_Q2, &vec![2, 2])
        .expect("partial mode survives the faults");
    let kept_zips = distinct_zips(&report.rows);
    assert!(kept_zips.is_subset(&clean_zips));
    let lost = clean_zips.len() - kept_zips.len();
    assert!(lost > 0, "a 10% keyed fault rate must drop something");
    assert_eq!(
        report.resilience.skipped_params as usize, lost,
        "every missing zip is exactly one recorded skip: {:?}",
        report.resilience
    );
    assert_eq!(
        report.resilience.skipped_by_owf,
        vec![("GetPlacesInside".to_owned(), lost as u64)]
    );
    // No rows duplicated: per-zip multiplicities match the clean run.
    let clean_subset: Vec<_> = clean
        .rows
        .iter()
        .filter(|r| kept_zips.contains(&r.values()[1].render()))
        .cloned()
        .collect();
    assert_eq!(
        wsmed::store::canonicalize(report.rows.clone()),
        wsmed::store::canonicalize(clean_subset)
    );
}

#[test]
fn abort_mode_still_fails_fast_under_the_same_faults() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec {
        fail_probability: 0.1,
        keyed_by_args: true,
        ..FaultSpec::default()
    });
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        max_attempts: 2,
        failure_mode: FailureMode::Abort,
        ..ResiliencePolicy::default()
    });
    assert!(setup
        .wsmed
        .run_parallel(UNFILTERED_Q2, &vec![2, 2])
        .is_err());
}

#[test]
fn breaker_opens_and_recovers_during_central_execution() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let uszip = setup.network.provider(UsZipService::PROVIDER).unwrap();
    // The first six GetInfoByState calls fail outright; the breaker
    // trips after two, probes (cooldown 0 admits immediately), re-opens
    // on failed probes, and closes on the first good call.
    uszip.set_fault(FaultSpec {
        fail_first: 6,
        ..FaultSpec::default()
    });
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        breaker: Some(BreakerPolicy {
            failure_threshold: 2,
            cooldown_model_secs: 0.0,
            half_open_probes: 1,
            probe_after_rejections: 0,
        }),
        failure_mode: FailureMode::Partial,
        ..ResiliencePolicy::default()
    });
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    let report = setup
        .wsmed
        .run_central(paper::QUERY2_SQL)
        .expect("partial mode rides out the cold start");
    let r = &report.resilience;
    assert!(r.breaker_opens >= 2, "open + re-opens from probes: {r:?}");
    assert_eq!(r.breaker_closes, 1, "one recovery: {r:?}");
    assert_eq!(
        r.skipped_params, 6,
        "each failed call drops one param: {r:?}"
    );
    // The trace tells the same story.
    let events = settled_events(report.trace.as_ref().unwrap());
    let opens = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::BreakerOpen { .. }))
        .count();
    let closes = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::BreakerClose { .. }))
        .count();
    let skips = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::ParamSkipped { .. }))
        .count();
    assert_eq!(opens as u64, r.breaker_opens);
    assert_eq!(closes as u64, r.breaker_closes);
    assert_eq!(skips as u64, r.skipped_params);
}

#[test]
fn open_breaker_rejections_drop_params_in_partial_mode() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let uszip = setup.network.provider(UsZipService::PROVIDER).unwrap();
    uszip.set_fault(FaultSpec {
        fail_probability: 1.0,
        ..FaultSpec::default()
    });
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        breaker: Some(BreakerPolicy {
            failure_threshold: 2,
            cooldown_model_secs: 1e9,
            half_open_probes: 1,
            probe_after_rejections: 0,
        }),
        failure_mode: FailureMode::Partial,
        ..ResiliencePolicy::default()
    });
    let report = setup
        .wsmed
        .run_central(paper::QUERY2_SQL)
        .expect("everything downstream of the dead provider is dropped");
    let r = &report.resilience;
    assert!(report.rows.is_empty());
    assert_eq!(r.breaker_opens, 1);
    assert!(
        r.breaker_rejections > 0,
        "calls after the trip are rejected without hitting the network: {r:?}"
    );
    // Only the pre-trip calls reached the provider.
    let (_, m) = setup
        .network
        .metrics_by_provider()
        .into_iter()
        .find(|(name, _)| name == UsZipService::PROVIDER)
        .unwrap();
    assert_eq!(m.faults, 2, "the breaker stopped the rest");
}

#[test]
fn hedged_requests_win_against_hangs_without_corrupting_results() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let clean = setup
        .wsmed
        .run_parallel(UNFILTERED_Q2, &vec![2, 2])
        .expect("clean run");

    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    let zip = setup.network.provider(ZipCodesService::PROVIDER).unwrap();
    zip.set_fault(FaultSpec::hang_every(6));
    setup.wsmed.set_resilience_policy(ResiliencePolicy {
        max_attempts: 2,
        deadline_model_secs: Some(5.0),
        hedge: Some(HedgePolicy {
            delay_model_secs: 0.5,
        }),
        failure_mode: FailureMode::Partial,
        ..ResiliencePolicy::default()
    });
    let report = setup
        .wsmed
        .run_parallel(UNFILTERED_Q2, &vec![2, 2])
        .expect("hedges + deadline ride out the hangs");
    let r = &report.resilience;
    assert!(r.hedges_launched > 0, "hedges must launch: {r:?}");
    assert!(
        r.hedge_wins > 0,
        "a hedge must beat at least one hung primary: {r:?}"
    );
    // Hedge losers are dropped below the caching layer: the result is a
    // subset of the clean multiset, never an embellished one.
    let mut clean_rows = clean.rows.clone();
    for row in &report.rows {
        let i = clean_rows
            .iter()
            .position(|c| c == row)
            .expect("no duplicated or invented row");
        clean_rows.swap_remove(i);
    }
}
