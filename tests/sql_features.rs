//! The extended SQL surface: comparison predicates, DISTINCT, ORDER BY and
//! LIMIT — end to end over the simulated services, in central and parallel
//! execution.

use wsmed::core::paper;
use wsmed::services::DatasetConfig;
use wsmed::store::{canonicalize, Value};

#[test]
fn comparison_predicates_filter_rows() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let all = setup
        .wsmed
        .run_central("select gs.State, gs.LatDegrees from GetAllStates gs")
        .unwrap();
    let north = setup
        .wsmed
        .run_central(
            "select gs.State, gs.LatDegrees from GetAllStates gs where gs.LatDegrees > 45.0",
        )
        .unwrap();
    assert!(north.row_count() > 0);
    assert!(north.row_count() < all.row_count());
    for row in &north.rows {
        assert!(row.get(1).as_real().unwrap() > 45.0);
    }

    let not_co = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs where gs.State <> 'CO'")
        .unwrap();
    assert_eq!(not_co.row_count(), 50);
    assert!(!not_co.rows.iter().any(|r| r.get(0) == &Value::str("CO")));
}

#[test]
fn range_predicates_combine() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let band = setup
        .wsmed
        .run_central(
            "select gs.State, gs.LatDegrees from GetAllStates gs \
             where gs.LatDegrees >= 40.0 and gs.LatDegrees <= 45.0",
        )
        .unwrap();
    assert!(band.row_count() > 0);
    for row in &band.rows {
        let lat = row.get(1).as_real().unwrap();
        assert!((40.0..=45.0).contains(&lat), "{lat}");
    }
}

#[test]
fn order_by_sorts_ascending_and_descending() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let asc = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs order by gs.State")
        .unwrap();
    let names: Vec<&str> = asc
        .rows
        .iter()
        .map(|r| r.get(0).as_str().unwrap())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    let desc = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs order by gs.State desc")
        .unwrap();
    let rev: Vec<&str> = desc
        .rows
        .iter()
        .map(|r| r.get(0).as_str().unwrap())
        .collect();
    sorted.reverse();
    assert_eq!(rev, sorted);
}

#[test]
fn order_by_multiple_keys() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central(
            "select gs.Type, gs.State from GetAllStates gs \
             order by gs.Type, gs.State desc",
        )
        .unwrap();
    // Type is constant ("State"), so the second key governs: descending.
    let names: Vec<&str> = r.rows.iter().map(|t| t.get(1).as_str().unwrap()).collect();
    let mut expect = names.clone();
    expect.sort_unstable();
    expect.reverse();
    assert_eq!(names, expect);
}

#[test]
fn limit_truncates() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs order by gs.State limit 5")
        .unwrap();
    assert_eq!(r.row_count(), 5);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "AK");
    // LIMIT 0 and LIMIT beyond the result size behave sanely.
    let zero = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs limit 0")
        .unwrap();
    assert_eq!(zero.row_count(), 0);
    let big = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs limit 1000")
        .unwrap();
    assert_eq!(big.row_count(), 51);
}

#[test]
fn distinct_deduplicates() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let dup = setup
        .wsmed
        .run_central("select gs.Type from GetAllStates gs")
        .unwrap();
    assert_eq!(dup.row_count(), 51);
    let distinct = setup
        .wsmed
        .run_central("select distinct gs.Type from GetAllStates gs")
        .unwrap();
    assert_eq!(distinct.row_count(), 1);
    assert_eq!(distinct.rows[0].get(0).as_str().unwrap(), "State");
}

#[test]
fn postprocessing_works_with_parallel_plans() {
    // ORDER BY + LIMIT over the full Query1 pipeline, in parallel: the
    // coordinator tail applies after the FF results are merged.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "\
        Select gl.placename, gl.state \
        From GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl \
        Where gs.State=gp.state and gp.distance=15.0 \
          and gp.placeTypeToFind='City' and gp.place='Atlanta' \
          and gl.placeName=gp.ToPlace+', '+gp.ToState \
          and gl.MaxItems=100 and gl.imagePresence='true' \
        order by gl.state, gl.placename limit 10";
    let central = setup.wsmed.run_central(sql).unwrap();
    let parallel = setup.wsmed.run_parallel(sql, &vec![3, 2]).unwrap();
    assert_eq!(central.row_count(), 10);
    // Sorted output is deterministic, so compare ordered (not canonical).
    assert_eq!(central.rows, parallel.rows);
    // Rows really are sorted by state, then placename.
    for pair in central.rows.windows(2) {
        let a = (
            pair[0].get(1).as_str().unwrap(),
            pair[0].get(0).as_str().unwrap(),
        );
        let b = (
            pair[1].get(1).as_str().unwrap(),
            pair[1].get(0).as_str().unwrap(),
        );
        assert!(a <= b, "{a:?} > {b:?}");
    }
}

#[test]
fn comparison_filter_in_dependent_join() {
    // Filter Query1's distance column (an OWF output) with an inequality —
    // the filter runs inside the shipped plan function.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let near_sql = "\
        Select gp.ToPlace, gp.Distance \
        From GetAllStates gs, GetPlacesWithin gp \
        Where gs.State=gp.state and gp.distance=15.0 \
          and gp.placeTypeToFind='City' and gp.place='Atlanta' \
          and gp.Distance < 5.0";
    let central = setup.wsmed.run_central(near_sql).unwrap();
    for row in &central.rows {
        assert!(row.get(1).as_real().unwrap() < 5.0);
    }
    let parallel = setup.wsmed.run_parallel(near_sql, &vec![3]).unwrap();
    assert_eq!(
        canonicalize(parallel.rows),
        canonicalize(central.rows.clone())
    );
    assert!(!central.rows.is_empty());
}

#[test]
fn distinct_order_limit_adaptive() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select distinct gp.ToState \
               From GetAllStates gs, GetPlacesWithin gp \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta' \
               order by gp.ToState limit 7";
    let r = setup.wsmed.run_adaptive(sql, &Default::default()).unwrap();
    assert!(r.row_count() <= 7);
    let states: Vec<&str> = r.rows.iter().map(|t| t.get(0).as_str().unwrap()).collect();
    let mut expect = states.clone();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(states, expect, "distinct + sorted");
}

#[test]
fn order_by_unselected_column_is_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let err = setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs order by gs.Name")
        .unwrap_err();
    assert!(err.to_string().contains("ORDER BY"), "{err}");
}

#[test]
fn select_star_expands_all_view_columns() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select * from GetAllStates gs")
        .unwrap();
    assert_eq!(r.row_count(), 51);
    // GetAllStates has 7 output columns (and no inputs).
    assert_eq!(r.rows[0].arity(), 7);
    assert_eq!(r.column_names.len(), 7);
}

#[test]
fn select_star_across_joined_views() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select * from GetAllStates gs, GetInfoByState gi where gs.State=gi.USState")
        .unwrap();
    assert_eq!(r.row_count(), 51);
    // 7 GetAllStates columns + USState input + result output.
    assert_eq!(r.rows[0].arity(), 9);
}

#[test]
fn count_star_counts_rows() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select count(*) from GetAllStates gs")
        .unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.rows[0].get(0), &Value::Int(51));
    assert_eq!(r.column_names, vec!["count"]);
}

#[test]
fn count_star_with_filters_and_parallel_plans() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select count(*) \
               From GetAllStates gs, GetPlacesWithin gp \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta'";
    let central = setup.wsmed.run_central(sql).unwrap();
    let n = central.rows[0].get(0).as_int().unwrap();
    assert!(n > 50, "expected a few hundred matches, got {n}");
    let parallel = setup.wsmed.run_parallel(sql, &vec![3]).unwrap();
    assert_eq!(parallel.rows, central.rows);
}

#[test]
fn count_distinct_composition() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    // DISTINCT applies before COUNT: one distinct Type value.
    let r = setup
        .wsmed
        .run_central("select distinct count(*) from GetAllStates gs")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int(51));
}

#[test]
fn count_star_with_order_by_is_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert!(setup
        .wsmed
        .run_central("select count(*) from GetAllStates gs order by gs.State")
        .is_err());
}

#[test]
fn group_by_with_count() {
    // How many Atlanta neighbors per state — the natural aggregate over
    // the paper's Query1 middle level.
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select gp.ToState, count(*) \
               From GetAllStates gs, GetPlacesWithin gp \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta' \
               group by gp.ToState order by gp.ToState";
    let r = setup.wsmed.run_central(sql).unwrap();
    assert_eq!(r.column_names, vec!["tostate", "count"]);
    assert_eq!(r.row_count(), setup.dataset.atlanta_state_count());
    let total: i64 = r.rows.iter().map(|t| t.get(1).as_int().unwrap()).sum();
    assert_eq!(total as usize, setup.dataset.query1_place_list_calls());
    // Keys sorted ascending, counts all positive.
    for pair in r.rows.windows(2) {
        assert!(pair[0].get(0).as_str().unwrap() < pair[1].get(0).as_str().unwrap());
    }
    assert!(r.rows.iter().all(|t| t.get(1).as_int().unwrap() > 0));
}

#[test]
fn group_by_min_max_avg_sum() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let sql = "select gs.Type, min(gs.LatDegrees), max(gs.LatDegrees), \
                      avg(gs.LatDegrees), sum(gs.LonDegrees), count(*) \
               from GetAllStates gs group by gs.Type";
    let r = setup.wsmed.run_central(sql).unwrap();
    assert_eq!(r.row_count(), 1); // all rows share Type = "State"
    let row = &r.rows[0];
    assert_eq!(row.get(0).as_str().unwrap(), "State");
    let min = row.get(1).as_real().unwrap();
    let max = row.get(2).as_real().unwrap();
    let avg = row.get(3).as_real().unwrap();
    assert!(min < avg && avg < max, "{min} < {avg} < {max}");
    assert!(min < 25.0, "Hawaii pulls the minimum down: {min}");
    assert!(max > 60.0, "Alaska pushes the maximum up: {max}");
    assert!(
        row.get(4).as_real().unwrap() < 0.0,
        "US longitudes are negative"
    );
    assert_eq!(row.get(5).as_int().unwrap(), 51);
    assert_eq!(
        r.column_names,
        vec!["type", "min", "max", "avg", "sum", "count"]
    );
}

#[test]
fn global_aggregate_without_group_by() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select max(gs.LatDegrees), min(gs.LatDegrees) from GetAllStates gs")
        .unwrap();
    assert_eq!(r.row_count(), 1);
    assert!(r.rows[0].get(0).as_real().unwrap() > r.rows[0].get(1).as_real().unwrap());
}

#[test]
fn aggregate_interleaved_with_keys_keeps_select_order() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central("select count(*), gs.Type from GetAllStates gs group by gs.Type")
        .unwrap();
    assert_eq!(r.column_names, vec!["count", "type"]);
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 51);
    assert_eq!(r.rows[0].get(1).as_str().unwrap(), "State");
}

#[test]
fn group_by_works_with_parallel_plans() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select gp.ToState, count(*) \
               From GetAllStates gs, GetPlacesWithin gp \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta' \
               group by gp.ToState order by gp.ToState";
    let central = setup.wsmed.run_central(sql).unwrap();
    let parallel = setup.wsmed.run_parallel(sql, &vec![3]).unwrap();
    assert_eq!(parallel.rows, central.rows);
    let adaptive = setup.wsmed.run_adaptive(sql, &Default::default()).unwrap();
    assert_eq!(adaptive.rows, central.rows);
}

#[test]
fn ungrouped_column_outside_aggregate_is_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let err = setup
        .wsmed
        .run_central("select gs.State, count(*) from GetAllStates gs group by gs.Type")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn aggregates_in_where_are_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert!(setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs where count(*) = 1")
        .is_err());
}

#[test]
fn having_filters_groups() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    let all = setup
        .wsmed
        .run_central(
            "select gp.ToState, count(*) \
             From GetAllStates gs, GetPlacesWithin gp \
             Where gs.State=gp.state and gp.distance=15.0 \
               and gp.placeTypeToFind='City' and gp.place='Atlanta' \
             group by gp.ToState",
        )
        .unwrap();
    let busy = setup
        .wsmed
        .run_central(
            "select gp.ToState, count(*) \
             From GetAllStates gs, GetPlacesWithin gp \
             Where gs.State=gp.state and gp.distance=15.0 \
               and gp.placeTypeToFind='City' and gp.place='Atlanta' \
             group by gp.ToState having count(*) >= 7",
        )
        .unwrap();
    assert!(busy.row_count() > 0);
    assert!(busy.row_count() < all.row_count());
    for row in &busy.rows {
        assert!(row.get(1).as_int().unwrap() >= 7);
    }
    // Literal-first form flips the operator.
    let flipped = setup
        .wsmed
        .run_central(
            "select gp.ToState, count(*) \
             From GetAllStates gs, GetPlacesWithin gp \
             Where gs.State=gp.state and gp.distance=15.0 \
               and gp.placeTypeToFind='City' and gp.place='Atlanta' \
             group by gp.ToState having 7 <= count(*)",
        )
        .unwrap();
    assert_eq!(
        wsmed::store::canonicalize(flipped.rows),
        wsmed::store::canonicalize(busy.rows)
    );
}

#[test]
fn having_on_group_key() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let r = setup
        .wsmed
        .run_central(
            "select gs.Type, count(*) from GetAllStates gs \
             group by gs.Type having gs.Type = 'State'",
        )
        .unwrap();
    assert_eq!(r.row_count(), 1);
    let none = setup
        .wsmed
        .run_central(
            "select gs.Type, count(*) from GetAllStates gs \
             group by gs.Type having gs.Type = 'Province'",
        )
        .unwrap();
    assert_eq!(none.row_count(), 0);
}

#[test]
fn having_without_group_by_is_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert!(setup
        .wsmed
        .run_central("select gs.State from GetAllStates gs having gs.State = 'CO'")
        .is_err());
}

#[test]
fn having_on_unselected_item_is_rejected() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    assert!(setup
        .wsmed
        .run_central(
            "select gs.Type, count(*) from GetAllStates gs \
             group by gs.Type having max(gs.LatDegrees) > 50.0",
        )
        .is_err());
}

#[test]
fn having_and_group_by_stay_in_the_coordinator_when_parallel() {
    // Regression: HAVING filters sit above GROUP BY in the plan; the
    // parallelizer must keep that whole suffix in the coordinator instead
    // of shipping it into the last plan function (which would aggregate
    // per-call instead of globally).
    let setup = paper::setup(0.0, DatasetConfig::small());
    let sql = "select gp.ToState, count(*) \
               From GetAllStates gs, GetPlacesWithin gp \
               Where gs.State=gp.state and gp.distance=15.0 \
                 and gp.placeTypeToFind='City' and gp.place='Atlanta' \
               group by gp.ToState having count(*) >= 7 order by gp.ToState";
    let central = setup.wsmed.run_central(sql).unwrap();
    assert!(central.row_count() > 0);
    let parallel = setup.wsmed.run_parallel(sql, &vec![3]).unwrap();
    assert_eq!(parallel.rows, central.rows);
    let adaptive = setup.wsmed.run_adaptive(sql, &Default::default()).unwrap();
    assert_eq!(adaptive.rows, central.rows);
}

#[test]
fn full_sql_surface_on_the_deep_chain() {
    // Everything at once, across three parallel levels.
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let sql = "select distinct a.Code, count(*), avg(fs.DelayMinutes) \
               From GetAllStates gs, GetAirports a, GetDepartures d, GetFlightStatus fs \
               Where gs.State = a.stateAbbr and a.Code = d.airportCode \
                 and d.FlightNo = fs.flightNo and fs.Status = 'Delayed' \
                 and fs.DelayMinutes > 20 \
               group by a.Code having count(*) >= 2 \
               order by a.Code desc limit 5";
    let central = setup.wsmed.run_central(sql).unwrap();
    let parallel = setup.wsmed.run_parallel(sql, &vec![2, 2, 2]).unwrap();
    assert_eq!(parallel.rows, central.rows);
    assert!(central.row_count() <= 5);
    for row in &central.rows {
        assert!(row.get(1).as_int().unwrap() >= 2);
        assert!(row.get(2).as_real().unwrap() > 20.0);
    }
    // Descending airport codes.
    for pair in central.rows.windows(2) {
        assert!(pair[0].get(0).as_str().unwrap() > pair[1].get(0).as_str().unwrap());
    }
}
