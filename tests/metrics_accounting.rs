//! Metrics accounting across the whole stack: call counts, bytes,
//! congestion observations, and per-provider attribution.

use wsmed::core::paper;
use wsmed::services::{
    DatasetConfig, GeoPlacesService, TerraService, UsZipService, ZipCodesService,
};

#[test]
fn per_provider_attribution_query1() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();

    let geo = setup
        .network
        .provider(GeoPlacesService::PROVIDER)
        .unwrap()
        .metrics();
    let terra = setup
        .network
        .provider(TerraService::PROVIDER)
        .unwrap()
        .metrics();
    let uszip = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics();
    let zips = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .unwrap()
        .metrics();

    // Query1 never touches USZip or ZipCodes.
    assert_eq!(uszip.calls, 0);
    assert_eq!(zips.calls, 0);
    // GetAllStates (1) + GetPlacesWithin (51).
    assert_eq!(geo.calls, 52);
    // One GetPlaceList call per matching neighbor.
    assert_eq!(terra.calls, setup.dataset.query1_place_list_calls() as u64);
    assert!(geo.response_bytes > geo.request_bytes, "responses dominate");
}

#[test]
fn per_provider_attribution_query2() {
    let setup = paper::setup(0.0, DatasetConfig::small());
    setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();

    let geo = setup
        .network
        .provider(GeoPlacesService::PROVIDER)
        .unwrap()
        .metrics();
    let uszip = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics();
    let zips = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .unwrap()
        .metrics();

    assert_eq!(geo.calls, 1); // GetAllStates only
    assert_eq!(uszip.calls, 51); // one per state
    assert_eq!(zips.calls, setup.dataset.total_zip_count() as u64);
}

#[test]
fn parallel_execution_reaches_higher_concurrency() {
    // The whole mechanism: with a process tree, the leaf provider sees
    // many calls in flight at once; centrally it never exceeds 1.
    let setup = paper::setup(0.0005, DatasetConfig::small());
    setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    let central_peak = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .unwrap()
        .metrics()
        .max_in_flight;
    assert_eq!(central_peak, 1, "central plan must be strictly sequential");

    setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![3, 4])
        .unwrap();
    let parallel_peak = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .unwrap()
        .metrics()
        .max_in_flight;
    assert!(
        parallel_peak >= 6,
        "12 leaves should overlap heavily, peak was {parallel_peak}"
    );
    assert!(parallel_peak <= 12, "cannot exceed the leaf count");
}

#[test]
fn report_bytes_and_calls_are_deltas_per_run() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let first = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    let second = setup.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    // Each report covers its own run, not cumulative totals.
    assert_eq!(first.ws_calls, second.ws_calls);
    assert!(second.ws_bytes > 0);
    // Network totals do accumulate.
    assert_eq!(setup.network.total_metrics().calls, first.ws_calls * 2);
}

#[test]
fn model_seconds_reported_only_when_scaled() {
    let unscaled = paper::setup(0.0, DatasetConfig::tiny());
    let r = unscaled.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    assert!(r.model_seconds.is_none());

    let scaled = paper::setup(0.001, DatasetConfig::tiny());
    let r = scaled.wsmed.run_central(paper::QUERY1_SQL).unwrap();
    let model = r.model_seconds.expect("scaled run estimates model time");
    assert!(model > 0.0);
}

#[test]
fn mean_latency_reflects_congestion() {
    // Under heavy parallelism the leaf provider's mean latency per call
    // must exceed its uncongested latency (processor sharing).
    let setup = paper::setup(0.0005, DatasetConfig::small());
    setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![4, 4])
        .unwrap();
    let m = setup
        .network
        .provider(ZipCodesService::PROVIDER)
        .unwrap()
        .metrics();
    let uncongested = 0.15 + 0.30; // setup + server_mean at congestion 1
    assert!(
        m.mean_latency() > uncongested,
        "mean {:.3} should show congestion above {uncongested}",
        m.mean_latency()
    );
}
