//! Deterministic replay of the §V.A adaptation story from structured
//! traces: two identically-seeded adaptive runs of Query2 must produce
//! byte-identical replay transcripts (per-cycle alive/EoC counts and
//! verdicts, plus the final level-1 fanout), while a differently-seeded
//! world is merely required to produce a *valid* trace.
//!
//! The transcript ([`wsmed::core::obs::replay_transcript`]) is the
//! timing-independent projection of the trace: the coordinator's verdict
//! sequence is forced by the config below (first cycle adds to the
//! fanout cap, second stops, the rest report convergence), so it cannot
//! depend on wall-clock noise; per-tuple times and sub-coordinator
//! schedules are deliberately excluded because first-finished dispatch
//! makes them scheduling-dependent even under a fixed seed.

use proptest::prelude::*;
use wsmed::core::{
    obs, paper, AdaptiveConfig, ExecutionReport, RouterPolicy, TraceEventKind, TracePolicy, Wsmed,
};
use wsmed::netsim::{Network, ReplicaGroup, SimConfig, TopologyAction, TopologyScenario};
use wsmed::services::{
    calibration, install_paper_services, Dataset, DatasetConfig, ZipCodesService,
};

/// A config whose coordinator verdicts are timing-independent: cycle 1
/// has no previous measurement (always `add:2`, reaching `max_fanout`),
/// cycle 2 has no room to add and no license to drop (always `stop`),
/// and every later cycle reports `converged`.
fn forced_config() -> AdaptiveConfig {
    AdaptiveConfig {
        add_step: 2,
        max_fanout: 4,
        drop_enabled: false,
        ..AdaptiveConfig::default()
    }
}

fn traced_adaptive_query2(wsmed: &mut Wsmed) -> ExecutionReport {
    wsmed.set_trace_policy(TracePolicy::enabled());
    wsmed
        .run_adaptive(paper::QUERY2_SQL, &forced_config())
        .expect("adaptive Query2")
}

fn transcript_of(report: &ExecutionReport) -> String {
    let trace = report.trace.as_ref().expect("tracing enabled");
    let events = trace.events();
    let violations = obs::validate(&events);
    assert!(violations.is_empty(), "invalid trace: {violations:?}");
    assert_eq!(trace.dropped(), 0, "trace overflowed");
    obs::replay_transcript(&events)
}

#[test]
fn identically_seeded_runs_replay_byte_identical() {
    // Two *fresh* worlds from the same seed (paper::setup pins it).
    let mut first = paper::setup(0.0, DatasetConfig::small());
    let mut second = paper::setup(0.0, DatasetConfig::small());
    let r1 = traced_adaptive_query2(&mut first.wsmed);
    let r2 = traced_adaptive_query2(&mut second.wsmed);

    let t1 = transcript_of(&r1);
    let t2 = transcript_of(&r2);
    assert_eq!(t1, t2, "same-seed adaptation transcripts diverged");

    // The transcript tells the forced story: grow to the cap, stop,
    // converge — and the replayed fanout equals the report's snapshot.
    assert!(
        t1.starts_with("cycle 1: alive=2 eocs="),
        "unexpected first cycle: {t1}"
    );
    let verdicts: Vec<&str> = t1
        .lines()
        .filter_map(|l| l.split("verdict=").nth(1))
        .collect();
    assert_eq!(verdicts[0], "add:2", "first verdict must add to the cap");
    assert_eq!(verdicts[1], "stop", "second verdict must stop (no room)");
    assert!(
        verdicts[2..].iter().all(|v| *v == "converged"),
        "later cycles must report convergence: {verdicts:?}"
    );
    assert!(t1.contains("level1_final_alive=4"), "transcript: {t1}");
    assert_eq!(r1.tree.levels[1].alive, 4);
    assert_eq!(r2.tree.levels[1].alive, 4);

    // Rows agree too (the runs are the same computation).
    assert_eq!(r1.rows, r2.rows);
}

#[test]
fn differently_seeded_run_is_valid_but_unconstrained() {
    // Same world shape, different RNG seed: latency draws and fault rolls
    // differ, so the trace is only required to be *well-formed* — the
    // transcript may or may not match the pinned-seed ones.
    let network = Network::new(SimConfig::new(0.0, 0xD1F7_5EED));
    let dataset = std::sync::Arc::new(Dataset::generate(DatasetConfig::small()));
    let registry = install_paper_services(network, dataset);
    let mut wsmed = Wsmed::new(registry);
    wsmed.import_all_wsdl().expect("paper services import");

    let report = traced_adaptive_query2(&mut wsmed);
    let transcript = transcript_of(&report);
    assert!(
        transcript.contains("coordinator_cycles="),
        "transcript missing summary: {transcript}"
    );
    // The forced-config story still holds per run (it is seed-independent),
    // and the replayed fanout still matches this run's own snapshot.
    assert!(transcript.contains(&format!(
        "level1_final_alive={}",
        report.tree.levels[1].alive
    )));
}

#[test]
fn identically_seeded_chaos_runs_replay_byte_identical() {
    use wsmed::core::{FailureMode, ResiliencePolicy};
    use wsmed::netsim::FaultSpec;
    use wsmed::services::ZipCodesService;
    use wsmed::store::canonicalize;

    // Chaos whose decisions are all drawn from seeded streams keyed by
    // request content or call sequence — never wall time: args-keyed
    // faults fix the failing zips, seq-keyed hangs are cut by the
    // deadline, retries back off with seeded jitter. Hedging stays off
    // (its launch/win counts race the primary at scale 0) and the
    // breaker threshold is unreachable, so the replayed story depends
    // only on the seed.
    let run = || {
        let mut setup = paper::setup(0.0, DatasetConfig::small());
        let zip = setup
            .network
            .provider(ZipCodesService::PROVIDER)
            .expect("zip provider");
        zip.set_fault(FaultSpec {
            fail_probability: 0.05,
            hang_probability: 0.02,
            keyed_by_args: true,
            ..FaultSpec::default()
        });
        setup.wsmed.set_resilience_policy(ResiliencePolicy {
            max_attempts: 3,
            backoff_model_secs: 0.5,
            backoff_multiplier: 2.0,
            backoff_jitter_frac: 0.25,
            deadline_model_secs: Some(5.0),
            failure_mode: FailureMode::Partial,
            ..ResiliencePolicy::default()
        });
        traced_adaptive_query2(&mut setup.wsmed)
    };
    let r1 = run();
    let r2 = run();

    assert_eq!(
        transcript_of(&r1),
        transcript_of(&r2),
        "same-seed chaos transcripts diverged"
    );
    assert_eq!(canonicalize(r1.rows.clone()), canonicalize(r2.rows.clone()));
    assert_eq!(r1.resilience.skipped_params, r2.resilience.skipped_params);
    assert_eq!(r1.resilience.skipped_by_owf, r2.resilience.skipped_by_owf);
    assert_eq!(
        r1.resilience.deadline_exceeded,
        r2.resilience.deadline_exceeded
    );
    // The chaos was real: something was skipped, and the result shrank.
    assert!(r1.resilience.skipped_params > 0);
    assert!(r1.resilience.deadline_exceeded > 0);
}

/// The replicated leaf provider for the topology tests below.
const LEAF: &str = ZipCodesService::PROVIDER;

/// A fresh pinned-seed world with the leaf replicated ×3 (primary plus
/// two calibrated clones) and weighted client-side routing installed.
fn routed_leaf_setup() -> (paper::PaperSetup, std::sync::Arc<ReplicaGroup>) {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let base = calibration::zipcodes_spec();
    let extras = (1..=2)
        .map(|i| {
            let mut spec = base.clone();
            spec.name = format!("{LEAF}#{i}");
            spec
        })
        .collect();
    let group = setup
        .network
        .replicate(LEAF, extras)
        .expect("leaf replicates");
    setup.wsmed.set_router_policy(Some(RouterPolicy::Weighted));
    setup.wsmed.reseed_profiles();
    (setup, group)
}

/// Total model time one central Query2 charges in a fresh routed world —
/// the yardstick for placing scenario events mid-run. (The network clock
/// is the sum of per-provider charged time, so it advances identically at
/// any wall scale.)
fn charged_total() -> f64 {
    let (setup, _group) = routed_leaf_setup();
    let before = setup.network.model_time();
    setup
        .wsmed
        .run_central(paper::QUERY2_SQL)
        .expect("calibration run completes");
    setup.network.model_time() - before
}

/// Runs a traced central Query2 under `scenario` and projects the
/// timing-independent routing story: every routing/membership/skip trace
/// event in order, the row count, and the per-replica decision tallies.
fn routed_projection(scenario: &TopologyScenario) -> String {
    let (mut setup, group) = routed_leaf_setup();
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    group.install_scenario(scenario.clone());
    let plan = setup
        .wsmed
        .compile_central(paper::QUERY2_SQL)
        .expect("central plan compiles");
    let (result, trace) = setup.wsmed.execute_traced(&plan);
    let report = result.expect("routed central run completes");
    let trace = trace.expect("traced run yields a log");
    let mut lines = Vec::new();
    for e in trace.events() {
        match &e.kind {
            TraceEventKind::RouteDecision {
                group,
                replica,
                alternatives,
            } => lines.push(format!("route {group} {replica} {alternatives}")),
            TraceEventKind::Membership {
                group,
                replica,
                joined,
            } => lines.push(format!("membership {group} {replica} {joined}")),
            TraceEventKind::ReplicaSkipped {
                group,
                replica,
                reason,
            } => lines.push(format!("skipped {group} {replica} {reason}")),
            _ => {}
        }
    }
    lines.push(format!("rows {}", report.rows.len()));
    for ((group, replica), n) in &report.router.per_replica {
        lines.push(format!("decisions {group} {replica} {n}"));
    }
    lines.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // Any scenario built from generated leave/rejoin points replays
    // byte-identically under the same seed: the routed projection
    // (decision order, membership transitions, skips, rows, tallies)
    // is a pure function of (seed, scenario).
    #[test]
    fn same_seed_topology_scenarios_replay_identically(
        leave_frac in 0.05f64..0.55,
        gap_frac in 0.05f64..0.35,
        flap_both in any::<bool>(),
    ) {
        let total = charged_total();
        let leave_at = leave_frac * total;
        let rejoin_at = (leave_frac + gap_frac) * total;
        let mut scenario = TopologyScenario::flap(&format!("{LEAF}#1"), leave_at, rejoin_at);
        if flap_both {
            scenario = scenario
                .at(leave_at, TopologyAction::Leave { replica: format!("{LEAF}#2") })
                .at(rejoin_at, TopologyAction::Rejoin { replica: format!("{LEAF}#2") });
        }
        let first = routed_projection(&scenario);
        let second = routed_projection(&scenario);
        prop_assert!(!first.is_empty());
        prop_assert_eq!(first, second);
    }
}

#[test]
fn fixed_scenario_drives_exact_membership_and_capacity_deltas() {
    let total = charged_total();
    let r1 = format!("{LEAF}#1");
    let r2 = format!("{LEAF}#2");
    // #1 flaps (leaves, later rejoins); #2 leaves for good.
    let scenario = TopologyScenario::new("fixed-deltas")
        .at(
            0.30 * total,
            TopologyAction::Leave {
                replica: r1.clone(),
            },
        )
        .at(
            0.50 * total,
            TopologyAction::Leave {
                replica: r2.clone(),
            },
        )
        .at(
            0.70 * total,
            TopologyAction::Rejoin {
                replica: r1.clone(),
            },
        );

    let (mut setup, group) = routed_leaf_setup();
    let replica_cap = calibration::zipcodes_spec().capacity;
    assert_eq!(group.effective_capacity(), 3 * replica_cap);
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    group.install_scenario(scenario);
    let plan = setup
        .wsmed
        .compile_central(paper::QUERY2_SQL)
        .expect("central plan compiles");
    let (result, trace) = setup.wsmed.execute_traced(&plan);
    let report = result.expect("routed run completes");
    let events = trace.expect("traced run yields a log").events();

    // Exactly the scripted membership transitions, in schedule order.
    let memberships: Vec<(String, bool)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::Membership {
                replica, joined, ..
            } => Some((replica.clone(), *joined)),
            _ => None,
        })
        .collect();
    assert_eq!(
        memberships,
        vec![(r1.clone(), false), (r2.clone(), false), (r1.clone(), true)],
        "scripted transitions must surface as trace events in order"
    );
    assert_eq!(report.router.membership_events, 3);

    // No routing decision ever targets a replica while it is out: replay
    // the membership transitions alongside the decisions.
    let mut out = std::collections::BTreeSet::new();
    for e in &events {
        match &e.kind {
            TraceEventKind::Membership {
                replica, joined, ..
            } => {
                if *joined {
                    out.remove(replica.as_str());
                } else {
                    out.insert(replica.clone());
                }
            }
            TraceEventKind::RouteDecision { replica, .. } => {
                assert!(
                    !out.contains(replica.as_str()),
                    "routed to {replica} while it was out of the group"
                );
            }
            _ => {}
        }
    }

    // Exact capacity deltas: #2 stayed out (−1 replica), #1 came back.
    assert_eq!(group.effective_capacity(), 2 * replica_cap);
    let active: Vec<(String, bool)> = group
        .status()
        .into_iter()
        .map(|s| (s.replica, s.active))
        .collect();
    assert_eq!(
        active,
        vec![
            (LEAF.to_owned(), true),
            (r1.clone(), true),
            (r2.clone(), false),
        ]
    );

    // Elasticity never costs answers: same rows as an unscripted world.
    let (reference, _group) = routed_leaf_setup();
    let expected = reference
        .wsmed
        .run_central(paper::QUERY2_SQL)
        .expect("reference run completes");
    assert_eq!(report.rows, expected.rows);
}
