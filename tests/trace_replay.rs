//! Deterministic replay of the §V.A adaptation story from structured
//! traces: two identically-seeded adaptive runs of Query2 must produce
//! byte-identical replay transcripts (per-cycle alive/EoC counts and
//! verdicts, plus the final level-1 fanout), while a differently-seeded
//! world is merely required to produce a *valid* trace.
//!
//! The transcript ([`wsmed::core::obs::replay_transcript`]) is the
//! timing-independent projection of the trace: the coordinator's verdict
//! sequence is forced by the config below (first cycle adds to the
//! fanout cap, second stops, the rest report convergence), so it cannot
//! depend on wall-clock noise; per-tuple times and sub-coordinator
//! schedules are deliberately excluded because first-finished dispatch
//! makes them scheduling-dependent even under a fixed seed.

use wsmed::core::{obs, paper, AdaptiveConfig, ExecutionReport, TracePolicy, Wsmed};
use wsmed::netsim::{Network, SimConfig};
use wsmed::services::{install_paper_services, Dataset, DatasetConfig};

/// A config whose coordinator verdicts are timing-independent: cycle 1
/// has no previous measurement (always `add:2`, reaching `max_fanout`),
/// cycle 2 has no room to add and no license to drop (always `stop`),
/// and every later cycle reports `converged`.
fn forced_config() -> AdaptiveConfig {
    AdaptiveConfig {
        add_step: 2,
        max_fanout: 4,
        drop_enabled: false,
        ..AdaptiveConfig::default()
    }
}

fn traced_adaptive_query2(wsmed: &mut Wsmed) -> ExecutionReport {
    wsmed.set_trace_policy(TracePolicy::enabled());
    wsmed
        .run_adaptive(paper::QUERY2_SQL, &forced_config())
        .expect("adaptive Query2")
}

fn transcript_of(report: &ExecutionReport) -> String {
    let trace = report.trace.as_ref().expect("tracing enabled");
    let events = trace.events();
    let violations = obs::validate(&events);
    assert!(violations.is_empty(), "invalid trace: {violations:?}");
    assert_eq!(trace.dropped(), 0, "trace overflowed");
    obs::replay_transcript(&events)
}

#[test]
fn identically_seeded_runs_replay_byte_identical() {
    // Two *fresh* worlds from the same seed (paper::setup pins it).
    let mut first = paper::setup(0.0, DatasetConfig::small());
    let mut second = paper::setup(0.0, DatasetConfig::small());
    let r1 = traced_adaptive_query2(&mut first.wsmed);
    let r2 = traced_adaptive_query2(&mut second.wsmed);

    let t1 = transcript_of(&r1);
    let t2 = transcript_of(&r2);
    assert_eq!(t1, t2, "same-seed adaptation transcripts diverged");

    // The transcript tells the forced story: grow to the cap, stop,
    // converge — and the replayed fanout equals the report's snapshot.
    assert!(
        t1.starts_with("cycle 1: alive=2 eocs="),
        "unexpected first cycle: {t1}"
    );
    let verdicts: Vec<&str> = t1
        .lines()
        .filter_map(|l| l.split("verdict=").nth(1))
        .collect();
    assert_eq!(verdicts[0], "add:2", "first verdict must add to the cap");
    assert_eq!(verdicts[1], "stop", "second verdict must stop (no room)");
    assert!(
        verdicts[2..].iter().all(|v| *v == "converged"),
        "later cycles must report convergence: {verdicts:?}"
    );
    assert!(t1.contains("level1_final_alive=4"), "transcript: {t1}");
    assert_eq!(r1.tree.levels[1].alive, 4);
    assert_eq!(r2.tree.levels[1].alive, 4);

    // Rows agree too (the runs are the same computation).
    assert_eq!(r1.rows, r2.rows);
}

#[test]
fn differently_seeded_run_is_valid_but_unconstrained() {
    // Same world shape, different RNG seed: latency draws and fault rolls
    // differ, so the trace is only required to be *well-formed* — the
    // transcript may or may not match the pinned-seed ones.
    let network = Network::new(SimConfig::new(0.0, 0xD1F7_5EED));
    let dataset = std::sync::Arc::new(Dataset::generate(DatasetConfig::small()));
    let registry = install_paper_services(network, dataset);
    let mut wsmed = Wsmed::new(registry);
    wsmed.import_all_wsdl().expect("paper services import");

    let report = traced_adaptive_query2(&mut wsmed);
    let transcript = transcript_of(&report);
    assert!(
        transcript.contains("coordinator_cycles="),
        "transcript missing summary: {transcript}"
    );
    // The forced-config story still holds per run (it is seed-independent),
    // and the replayed fanout still matches this run's own snapshot.
    assert!(transcript.contains(&format!(
        "level1_final_alive={}",
        report.tree.levels[1].alive
    )));
}

#[test]
fn identically_seeded_chaos_runs_replay_byte_identical() {
    use wsmed::core::{FailureMode, ResiliencePolicy};
    use wsmed::netsim::FaultSpec;
    use wsmed::services::ZipCodesService;
    use wsmed::store::canonicalize;

    // Chaos whose decisions are all drawn from seeded streams keyed by
    // request content or call sequence — never wall time: args-keyed
    // faults fix the failing zips, seq-keyed hangs are cut by the
    // deadline, retries back off with seeded jitter. Hedging stays off
    // (its launch/win counts race the primary at scale 0) and the
    // breaker threshold is unreachable, so the replayed story depends
    // only on the seed.
    let run = || {
        let mut setup = paper::setup(0.0, DatasetConfig::small());
        let zip = setup
            .network
            .provider(ZipCodesService::PROVIDER)
            .expect("zip provider");
        zip.set_fault(FaultSpec {
            fail_probability: 0.05,
            hang_probability: 0.02,
            keyed_by_args: true,
            ..FaultSpec::default()
        });
        setup.wsmed.set_resilience_policy(ResiliencePolicy {
            max_attempts: 3,
            backoff_model_secs: 0.5,
            backoff_multiplier: 2.0,
            backoff_jitter_frac: 0.25,
            deadline_model_secs: Some(5.0),
            failure_mode: FailureMode::Partial,
            ..ResiliencePolicy::default()
        });
        traced_adaptive_query2(&mut setup.wsmed)
    };
    let r1 = run();
    let r2 = run();

    assert_eq!(
        transcript_of(&r1),
        transcript_of(&r2),
        "same-seed chaos transcripts diverged"
    );
    assert_eq!(canonicalize(r1.rows.clone()), canonicalize(r2.rows.clone()));
    assert_eq!(r1.resilience.skipped_params, r2.resilience.skipped_params);
    assert_eq!(r1.resilience.skipped_by_owf, r2.resilience.skipped_by_owf);
    assert_eq!(
        r1.resilience.deadline_exceeded,
        r2.resilience.deadline_exceeded
    );
    // The chaos was real: something was skipped, and the result shrank.
    assert!(r1.resilience.skipped_params > 0);
    assert!(r1.resilience.deadline_exceeded > 0);
}
