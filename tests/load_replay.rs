//! Properties of the open-loop traffic harness.
//!
//! * Same-seed workload generation is byte-identical — arrival times,
//!   parameter draws and tenant assignment all come out of keyed
//!   deterministic streams, and the transcript pins every one of them.
//! * The Zipf sampler's empirical frequency ranking matches its analytic
//!   weight ranking at scale, for arbitrary sizes and exponents.
//! * Open-loop replay at many tenants yields, per query, exactly the
//!   result bag a solo run of that query produces — concurrency must
//!   never change answers (the PR-7 stress property, restated through
//!   the harness).
//! * Latency attribution under admission rejection: a shed query records
//!   an (arrival → reject) latency sample and lands in the shed counts,
//!   never in goodput.

use proptest::prelude::*;

use wsmed::core::{paper, ArrivalOutcome, CachePolicy, QuotaPolicy};
use wsmed::netsim::DetRng;
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;
use wsmed::trafficgen::{
    replay, ArrivalProfile, LoadReport, OutcomeKind, SubsystemCounters, Workload, WorkloadSpec,
    ZipfSampler,
};

fn state_names() -> Vec<String> {
    ["CO", "GA", "TX", "CA", "NY", "WA", "FL", "OH", "MA", "IL"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn profile_by_index(which: u8, rate: f64) -> ArrivalProfile {
    match which % 3 {
        0 => ArrivalProfile::Poisson { rate },
        1 => ArrivalProfile::Diurnal {
            trough_rate: rate * 0.25,
            peak_rate: rate * 2.0,
            period_model_secs: 17.0,
        },
        _ => ArrivalProfile::SquareWave {
            quiet_rate: rate * 0.25,
            burst_rate: rate * 3.0,
            period_model_secs: 11.0,
            burst_fraction: 0.3,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // Same seed ⇒ byte-identical workloads: arrival schedule, phase
    // labels, tenant assignment, template choice and parameter draws.
    // Different seeds ⇒ different workloads (on any non-trivial run).
    #[test]
    fn same_seed_workloads_are_byte_identical(
        seed in 0u64..1_000_000,
        which in 0u8..3,
        rate in 0.5f64..4.0,
        duration in 10.0f64..60.0,
        tenants in 1usize..6,
        exponent in 0.0f64..2.0,
    ) {
        let spec = || WorkloadSpec {
            seed,
            duration_model_secs: duration,
            profile: profile_by_index(which, rate),
            tenants,
            zipf_exponent: exponent,
            ..WorkloadSpec::standard(seed, profile_by_index(which, rate), duration)
        };
        let a = Workload::generate(spec(), &state_names());
        let b = Workload::generate(spec(), &state_names());
        prop_assert_eq!(a.transcript(), b.transcript());
        prop_assert_eq!(&a.injections, &b.injections);
        prop_assert_eq!(a.popularity, b.popularity);

        let mut other = spec();
        other.seed = seed.wrapping_add(1);
        let c = Workload::generate(other, &state_names());
        if a.injections.len() + c.injections.len() > 4 {
            prop_assert_ne!(a.transcript(), c.transcript());
        }
    }

    // The Zipf sampler's empirical frequencies agree with its analytic
    // weights (well within 6σ binomial noise), which implies the
    // observed popularity ranking matches the weight ranking.
    #[test]
    fn zipf_empirical_ranking_matches_weights(
        n in 2usize..40,
        exponent in 0.2f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let z = ZipfSampler::new(n, exponent);
        let mut rng = DetRng::new(seed);
        let draws = 60_000usize;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            let expect = z.weight(rank) * draws as f64;
            let sigma = (expect * (1.0 - z.weight(rank))).sqrt();
            prop_assert!(
                (c as f64 - expect).abs() <= 6.0 * sigma + 12.0,
                "rank {}: {} observed vs {:.1} expected (σ {:.1})",
                rank, c, expect, sigma
            );
        }
        // Ranking property on well-separated neighbors: if the analytic
        // gap between adjacent ranks exceeds the combined noise, the
        // observed ordering must agree.
        for rank in 1..n {
            let gap = (z.weight(rank - 1) - z.weight(rank)) * draws as f64;
            if gap > 8.0 * (z.weight(rank - 1) * draws as f64).sqrt() + 16.0 {
                prop_assert!(
                    counts[rank - 1] > counts[rank],
                    "rank {} ({}) should out-draw rank {} ({})",
                    rank - 1, counts[rank - 1], rank, counts[rank]
                );
            }
        }
    }
}

/// Open-loop replay against a shared, fully configured mediator produces,
/// for every completed injection, exactly the rows a solo run of the same
/// SQL produces on a fresh bare mediator. Runs at time scale 0 so all
/// injections pile in at once — maximal interleaving.
#[test]
fn replayed_result_bags_match_solo_runs() {
    let dataset = DatasetConfig::tiny();
    let spec = WorkloadSpec {
        tenants: 6,
        ..WorkloadSpec::standard(0xBA6, ArrivalProfile::Poisson { rate: 2.0 }, 12.0)
    };
    let setup = paper::setup(0.0, dataset.clone());
    let states: Vec<String> = setup
        .dataset
        .states()
        .iter()
        .map(|s| s.abbr.clone())
        .collect();
    let workload = Workload::generate(spec, &states);
    assert!(
        workload.injections.len() >= 10,
        "want a non-trivial workload, got {}",
        workload.injections.len()
    );

    let mut shared = paper::setup(0.0, dataset.clone());
    shared.wsmed.set_cache_policy(Some(CachePolicy {
        cross_run: true,
        single_flight: true,
        ..Default::default()
    }));
    shared.wsmed.enable_process_pool(true);
    let outcomes = replay(&shared.wsmed, &workload, 0.0).expect("replay runs");
    assert_eq!(outcomes.len(), workload.injections.len());

    let solo = paper::setup(0.0, dataset);
    let mut solo_rows: std::collections::HashMap<&str, Vec<wsmed::store::Tuple>> =
        std::collections::HashMap::new();
    for sql in workload.unique_sqls() {
        let inj = workload
            .injections
            .iter()
            .find(|i| i.sql == sql)
            .expect("sql from injection");
        let report = solo.wsmed.run_central(&sql).expect("solo run succeeds");
        solo_rows.insert(inj.sql.as_str(), canonicalize(report.rows));
    }

    for (outcome, inj) in outcomes.iter().zip(workload.injections.iter()) {
        assert_eq!(outcome.index, inj.index);
        let report = outcome.report.as_ref().unwrap_or_else(|| {
            panic!(
                "injection {} did not complete: {:?}",
                inj.index, outcome.kind
            )
        });
        assert_eq!(
            canonicalize(report.rows.clone()),
            solo_rows[inj.sql.as_str()],
            "injection {} ({}) diverged from its solo run",
            inj.index,
            inj.params
        );
    }
}

/// Satellite 3 regression: under a zero-query quota every arrival is
/// rejected at admission. Each shed query must still record an
/// (arrival → reject) latency sample, must increment the admission
/// controller's shed counts, and must never be counted as goodput.
#[test]
fn shed_queries_record_latency_and_never_count_as_goodput() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_quota_policy(QuotaPolicy {
        max_concurrent_queries: Some(0),
        ..Default::default()
    });
    let states: Vec<String> = setup
        .dataset
        .states()
        .iter()
        .map(|s| s.abbr.clone())
        .collect();
    let workload = Workload::generate(
        WorkloadSpec::standard(0x5EDD, ArrivalProfile::Poisson { rate: 2.0 }, 8.0),
        &states,
    );
    assert!(!workload.injections.is_empty());

    // Direct single-call check of the attribution seam: the outcome is
    // Shed, and the latency sample covers arrival → reject (the arrival
    // instant below predates the call by a known margin, which must show
    // up in the sample).
    let plan = setup
        .wsmed
        .plan_query(&workload.injections[0].sql)
        .expect("plan compiles");
    let arrival = std::time::Instant::now() - std::time::Duration::from_millis(50);
    let outcome = setup.wsmed.execute_arrival_for("t0", &plan, arrival);
    match &outcome {
        ArrivalOutcome::Shed {
            latency_wall,
            reason,
        } => {
            assert!(
                *latency_wall >= std::time::Duration::from_millis(50),
                "shed latency must cover arrival → reject, got {latency_wall:?}"
            );
            assert!(!reason.is_empty());
        }
        other => panic!("expected Shed under a zero quota, got {other:?}"),
    }
    assert!(outcome.report().is_none(), "a shed query has no report");
    assert_eq!(setup.wsmed.admission().stats().shed_queries, 1);

    // Whole-replay check: everything sheds, nothing reaches goodput, and
    // the accounting still sums exactly.
    let before = SubsystemCounters::collect(&setup.wsmed, &setup.network);
    let outcomes = replay(&setup.wsmed, &workload, 0.0).expect("replay runs");
    let after = SubsystemCounters::collect(&setup.wsmed, &setup.network);
    let report = LoadReport::build("shed", &workload, &outcomes, 0.0, after.since(&before));

    assert_eq!(report.overall.injected, workload.injections.len());
    assert_eq!(report.overall.shed, report.overall.injected);
    assert_eq!(report.overall.completed, 0);
    assert_eq!(report.overall.failed, 0);
    assert_eq!(report.overall.goodput_qps, 0.0);
    assert_eq!(report.overall.rows, 0);
    assert!((report.overall.shed_rate - 1.0).abs() < 1e-12);
    assert_eq!(
        report.counters.shed_queries,
        workload.injections.len() as u64
    );
    assert_eq!(
        report.counters.provider_calls, 0,
        "shed work reaches no provider"
    );
    for outcome in &outcomes {
        assert_eq!(outcome.kind, OutcomeKind::Shed);
        assert!(outcome.report.is_none());
    }
}
