//! Property tests: the warm process pool is *semantically invisible*.
//!
//! Reusing parked query processes (plan function already installed, no
//! modeled startup or plan-ship cost) must never change results: for
//! arbitrary fanouts, batch policies and dataset seeds, a pooled rerun
//! returns exactly the cold run's bag of tuples — and for fixed-fanout
//! plans the rerun is entirely warm (zero cold spawns).

use proptest::prelude::*;

use wsmed::core::{paper, AdaptiveConfig, BatchPolicy, PoolPolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 8,
        min_neighbors: 1,
        max_neighbors: 4,
        zips_per_state: 3,
        ..DatasetConfig::tiny()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn prop_pooled_ff_equivalent_to_cold(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        fo2 in 0usize..6,
        batch in 1usize..40,
    ) {
        let cold_setup = paper::setup(0.0, dataset(seed));
        let cold = cold_setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();

        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.set_batch_policy(BatchPolicy::uniform(batch));
        setup.wsmed.enable_process_pool(true);
        let first = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();
        let second = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, fo2])
            .unwrap();

        prop_assert_eq!(
            canonicalize(first.rows),
            canonicalize(cold.rows.clone()),
            "first pooled run diverged: fanouts {{{},{}}} batch {} seed {}",
            fo1, fo2, batch, seed
        );
        prop_assert_eq!(
            canonicalize(second.rows),
            canonicalize(cold.rows),
            "warm rerun diverged: fanouts {{{},{}}} batch {} seed {}",
            fo1, fo2, batch, seed
        );
        // The fixed-fanout rerun re-builds the identical tree, so every
        // level-1 child comes from the pool and brings its subtree along.
        prop_assert_eq!(first.pool.cold_spawns > 0, true);
        prop_assert_eq!(
            second.pool.cold_spawns, 0,
            "warm rerun cold-spawned: fanouts {{{},{}}} seed {}", fo1, fo2, seed
        );
        prop_assert_eq!(second.pool.warm_acquires as usize, fo1);
    }

    #[test]
    fn prop_pooled_aff_equivalent_to_cold(
        seed in 0u64..1000,
        add_step in 1usize..5,
        drop_enabled in any::<bool>(),
    ) {
        let config = AdaptiveConfig { add_step, drop_enabled, ..Default::default() };
        let cold_setup = paper::setup(0.0, dataset(seed));
        let cold = cold_setup
            .wsmed
            .run_adaptive(paper::QUERY2_SQL, &config)
            .unwrap();

        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.enable_process_pool(true);
        let first = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &config).unwrap();
        let second = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &config).unwrap();
        prop_assert_eq!(
            canonicalize(first.rows),
            canonicalize(cold.rows.clone()),
            "p={} drop={} seed {}", add_step, drop_enabled, seed
        );
        prop_assert_eq!(
            canonicalize(second.rows),
            canonicalize(cold.rows),
            "warm adaptive rerun diverged: p={} drop={} seed {}",
            add_step, drop_enabled, seed
        );
        // An adaptive rerun starts from the same initial fanout, so it
        // must reuse at least that many parked processes.
        prop_assert_eq!(second.pool.warm_acquires > 0, true);
    }

    #[test]
    fn prop_pool_respects_idle_bounds(
        seed in 0u64..1000,
        fo1 in 1usize..6,
        per_pf in 0usize..4,
        total in 0usize..6,
    ) {
        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.set_pool_policy(Some(PoolPolicy {
            max_idle_per_pf: per_pf,
            max_idle_total: total,
            ..Default::default()
        }));
        setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, 2])
            .unwrap();
        let pool = setup.wsmed.process_pool().unwrap();
        prop_assert!(
            pool.idle_total() <= total.min(per_pf * 2),
            "{} parked > bounds (per_pf {}, total {})",
            pool.idle_total(), per_pf, total
        );
    }

    #[test]
    fn prop_ttl_expires_everything_under_tiny_ttl(
        seed in 0u64..1000,
        fo1 in 1usize..5,
        ttl in 0.0f64..0.0001,
    ) {
        // At a non-zero time scale any parked process is older (in model
        // time) than these sub-millisecond TTLs by the time the next run
        // acquires — so the rerun is fully cold and the expired processes
        // are counted as evictions.
        let mut setup = paper::setup(0.001, dataset(seed));
        setup.wsmed.set_pool_policy(Some(PoolPolicy {
            idle_ttl_model_secs: Some(ttl),
            ..Default::default()
        }));
        let first = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, 1])
            .unwrap();
        let second = setup
            .wsmed
            .run_parallel(paper::QUERY1_SQL, &vec![fo1, 1])
            .unwrap();
        prop_assert_eq!(
            canonicalize(second.rows),
            canonicalize(first.rows),
            "ttl {} seed {}", ttl, seed
        );
        prop_assert_eq!(second.pool.warm_acquires, 0);
        prop_assert_eq!(second.pool.cold_spawns > 0, true);
        prop_assert_eq!(second.pool.evictions >= fo1 as u64, true);
    }
}
