//! Concurrent multi-query stress: many threads execute over one shared
//! mediator and must see exactly the rows a sequential run produces,
//! while the shared cache/pool attribution counters stay consistent and
//! admission control sheds deterministically.

use std::sync::Arc;

use wsmed::core::{paper, CachePolicy, CoreError, FailureMode, QuotaPolicy, TracePolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::{canonicalize, Tuple};

/// A cartesian query: every GetAllStates row triggers the *same*
/// GetInfoByState('CO') call, so concurrent queries sharing a cache
/// collapse to one real provider call.
const CARTESIAN_SQL: &str = "select gs.State, gi.GetInfoByStateResult \
     from GetAllStates gs, GetInfoByState gi where gi.USState='CO'";

fn sorted(rows: Vec<Tuple>) -> Vec<Tuple> {
    canonicalize(rows)
}

/// Sequential reference rows from an unshared, unconfigured mediator.
fn reference() -> (Vec<Tuple>, Vec<Tuple>) {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let central = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    let parallel = setup
        .wsmed
        .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
        .unwrap();
    (sorted(central.rows), sorted(parallel.rows))
}

#[test]
fn concurrent_queries_match_sequential_across_cache_pool_matrix() {
    let (central_ref, parallel_ref) = reference();
    let cache_configs: [Option<CachePolicy>; 3] = [
        None,
        Some(CachePolicy::default()),
        Some(CachePolicy {
            cross_run: true,
            ..Default::default()
        }),
    ];
    for cache in cache_configs {
        for pool_on in [false, true] {
            let mut setup = paper::setup(0.0, DatasetConfig::tiny());
            setup.wsmed.set_cache_policy(cache);
            setup.wsmed.enable_process_pool(pool_on);
            let med = &setup.wsmed;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..3 {
                    let central_ref = &central_ref;
                    let parallel_ref = &parallel_ref;
                    handles.push(scope.spawn(move || {
                        let tenant = format!("tenant-{t}");
                        for _ in 0..2 {
                            let plan = med.compile_central(CARTESIAN_SQL).unwrap();
                            let report = med.execute_for(&tenant, &plan).unwrap();
                            assert_eq!(&sorted(report.rows), central_ref);
                            let plan = med
                                .compile_parallel(paper::QUERY2_SQL, &vec![2, 2])
                                .unwrap();
                            let report = med.execute_for(&tenant, &plan).unwrap();
                            assert_eq!(&sorted(report.rows), parallel_ref);
                        }
                    }));
                }
                for handle in handles {
                    handle.join().expect("worker thread panicked");
                }
            });
        }
    }
}

#[test]
fn per_query_attribution_sums_to_shared_totals() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    setup.wsmed.enable_process_pool(true);
    let cache = Arc::clone(setup.wsmed.call_cache().unwrap());
    let pool = Arc::clone(setup.wsmed.process_pool().unwrap());

    // Hold the busy period open across all K queries so the shared
    // counters accumulate the whole experiment instead of resetting on
    // each idle→busy edge.
    cache.begin_run();
    pool.begin_run();

    let med = &setup.wsmed;
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                scope.spawn(move || {
                    let tenant = format!("tenant-{t}");
                    let plan = med.compile_central(CARTESIAN_SQL).unwrap();
                    let central = med.execute_for(&tenant, &plan).unwrap();
                    let plan = med
                        .compile_parallel(paper::QUERY2_SQL, &vec![2, 2])
                        .unwrap();
                    let parallel = med.execute_for(&tenant, &plan).unwrap();
                    (central, parallel)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect::<Vec<_>>()
    });

    let global_cache = cache.stats();
    let global_pool = pool.stats();
    cache.end_run();
    pool.end_run();

    let mut lookups = 0;
    let mut cross = 0;
    let mut short_circuits = 0;
    let mut warm = 0;
    let mut cold = 0;
    for (central, parallel) in &reports {
        for report in [central, parallel] {
            lookups += report.cache.hits + report.cache.misses + report.cache.dedup_waits;
            cross += report.cache.cross_query_hits;
            short_circuits += report.cache.short_circuits;
            warm += report.pool.warm_acquires;
            cold += report.pool.cold_spawns;
        }
    }
    assert_eq!(
        lookups,
        global_cache.hits + global_cache.misses + global_cache.dedup_waits,
        "per-query cache lookups must sum to the shared total"
    );
    assert_eq!(cross, global_cache.cross_query_hits);
    assert_eq!(short_circuits, global_cache.short_circuits);
    assert_eq!(warm, global_pool.warm_acquires);
    assert_eq!(cold, global_pool.cold_spawns);
    assert!(
        cross > 0,
        "four concurrent cartesian queries over one cache must share entries"
    );
}

#[test]
fn query_quota_sheds_then_recovers() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_quota_policy(QuotaPolicy {
        max_concurrent_queries: Some(1),
        ..Default::default()
    });
    // A held admission slot makes the outcome deterministic: the quota is
    // exhausted for the entire execution attempt.
    let guard = setup.wsmed.admission().admit_query("hog").unwrap();
    let err = setup.wsmed.run_central(CARTESIAN_SQL).unwrap_err();
    assert!(
        matches!(err, CoreError::Admission { ref tenant, .. } if tenant == "default"),
        "{err:?}"
    );
    assert_eq!(setup.wsmed.admission().stats().shed_queries, 1);
    drop(guard);
    setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
}

#[test]
fn call_budget_sheds_deterministically_under_partial_mode() {
    let run = || {
        let mut setup = paper::setup(0.0, DatasetConfig::tiny());
        setup.wsmed.set_failure_mode(FailureMode::Partial);
        setup.wsmed.set_quota_policy(QuotaPolicy {
            per_tenant_inflight_calls: Some(0),
            ..Default::default()
        });
        setup.wsmed.run_central(CARTESIAN_SQL).unwrap()
    };
    let first = run();
    assert!(
        first.rows.is_empty(),
        "a zero call budget strands the root call, so no rows flow"
    );
    assert_eq!(first.resilience.skipped_params, 1);
    assert!(first.resilience.admission_rejections >= 1);
    let second = run();
    assert_eq!(first.rows, second.rows);
    assert_eq!(
        first.resilience.admission_rejections,
        second.resilience.admission_rejections
    );
    assert_eq!(
        first.resilience.skipped_params,
        second.resilience.skipped_params
    );
}

#[test]
fn sessions_trace_per_query_without_racing() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_trace_policy(TracePolicy::enabled());
    setup.wsmed.enable_call_cache(true);
    let med = Arc::new(setup.wsmed);
    let handles: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|tenant| {
            let session = med.session(tenant);
            std::thread::spawn(move || {
                assert_eq!(session.tenant(), tenant);
                session
                    .run_parallel(paper::QUERY2_SQL, &vec![2, 2])
                    .unwrap()
            })
        })
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("session thread panicked"))
        .collect();
    let traces: Vec<_> = reports
        .iter()
        .map(|r| r.trace.as_ref().expect("traced run carries its own log"))
        .collect();
    assert!(
        !Arc::ptr_eq(traces[0], traces[1]),
        "each query owns a distinct trace"
    );
    for trace in traces {
        let events = trace.events();
        assert!(!events.is_empty());
        assert!(wsmed::core::obs::validate(&events).is_empty());
    }
}
