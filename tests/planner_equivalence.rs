//! Property tests: the cost-based planner and semi-join pruning are
//! *semantically invisible*.
//!
//! Reordering binding-valid join orders, merging process-tree levels,
//! re-choosing fanouts, and dropping learned empty parameters parent-side
//! are all pure execution-shape decisions: for arbitrary dataset seeds and
//! any combination of call cache, warm process pool, and columnar wire
//! frames, a cost-planned (and pruned) run must return exactly the
//! heuristic default's bag of tuples. The second planned run replans with
//! the first run's learned statistics — observed cardinalities may change
//! the chosen plan *shape*, and learned empties prune shipped parameters,
//! but never the result.

use proptest::prelude::*;

use wsmed::core::{paper, planner, AdaptiveConfig, BatchPolicy, PlannerPolicy};
use wsmed::services::DatasetConfig;
use wsmed::store::canonicalize;

fn dataset(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        atlanta_state_count: 8,
        min_neighbors: 1,
        max_neighbors: 4,
        zips_per_state: 3,
        ..DatasetConfig::tiny()
    }
}

const QUERIES: [&str; 3] = [paper::QUERY1_SQL, paper::QUERY2_SQL, paper::QUERY3_SQL];

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // FF path: `run_planned` under `CostBased { prune: true }` — first
    // run cold, second run replanned from learned statistics with pruning
    // live — against the heuristic default on a fresh world.
    #[test]
    fn prop_cost_planned_ff_matches_heuristic_bag(
        seed in 0u64..1000,
        query in 0usize..3,
        cache in any::<bool>(),
        pool in any::<bool>(),
        columnar in any::<bool>(),
    ) {
        let sql = QUERIES[query];
        let baseline_setup = paper::setup(0.0, dataset(seed));
        prop_assert_eq!(
            baseline_setup.wsmed.planner_policy(),
            PlannerPolicy::Heuristic,
            "heuristic must be the default policy"
        );
        let baseline = baseline_setup.wsmed.run_planned(sql).unwrap();

        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.enable_call_cache(cache);
        setup.wsmed.enable_process_pool(pool);
        if columnar {
            setup.wsmed.set_batch_policy(BatchPolicy::columnar(16));
        }
        setup
            .wsmed
            .set_planner_policy(PlannerPolicy::CostBased { prune: true });
        let first = setup.wsmed.run_planned(sql).unwrap();
        let second = setup.wsmed.run_planned(sql).unwrap();

        prop_assert_eq!(
            canonicalize(first.rows),
            canonicalize(baseline.rows.clone()),
            "cold cost-planned run diverged: query{} seed {} cache {} pool {} columnar {}",
            query + 1, seed, cache, pool, columnar
        );
        prop_assert_eq!(
            canonicalize(second.rows),
            canonicalize(baseline.rows),
            "replanned+pruned run diverged: query{} seed {} cache {} pool {} columnar {}",
            query + 1, seed, cache, pool, columnar
        );
    }

    // AFF path: pruning annotations on an adaptive (`AFF_APPLYP`) plan.
    // The plan is built once (stable section keys), executed to observe
    // empty parameter chains, re-annotated with the learned drop lists,
    // and executed again — both runs must match the unannotated baseline.
    #[test]
    fn prop_pruned_aff_matches_baseline_bag(
        seed in 0u64..1000,
        add_step in 1usize..4,
        cache in any::<bool>(),
        columnar in any::<bool>(),
    ) {
        let config = AdaptiveConfig { add_step, ..Default::default() };
        let baseline_setup = paper::setup(0.0, dataset(seed));
        let baseline = baseline_setup
            .wsmed
            .run_adaptive(paper::QUERY3_SQL, &config)
            .unwrap();

        let mut setup = paper::setup(0.0, dataset(seed));
        setup.wsmed.enable_call_cache(cache);
        if columnar {
            setup.wsmed.set_batch_policy(BatchPolicy::columnar(8));
        }
        // CostBased installs the statistics harvester on executions; the
        // plan itself is the paper's adaptive one.
        setup
            .wsmed
            .set_planner_policy(PlannerPolicy::CostBased { prune: true });
        let mut plan = setup
            .wsmed
            .compile_adaptive(paper::QUERY3_SQL, &config)
            .unwrap();
        // Cold annotation: empty drop lists, but section keys ship with the
        // plan functions so children report empties under matching keys.
        planner::annotate_prune(&mut plan, setup.wsmed.planner_stats());
        let first = setup.wsmed.execute(&plan).unwrap();
        let mut pruned = plan.clone();
        planner::annotate_prune(&mut pruned, setup.wsmed.planner_stats());
        let second = setup.wsmed.execute(&pruned).unwrap();

        prop_assert_eq!(
            canonicalize(first.rows),
            canonicalize(baseline.rows.clone()),
            "observing adaptive run diverged: p={} seed {} cache {} columnar {}",
            add_step, seed, cache, columnar
        );
        prop_assert_eq!(
            canonicalize(second.rows),
            canonicalize(baseline.rows),
            "pruned adaptive run diverged: p={} seed {} cache {} columnar {}",
            add_step, seed, cache, columnar
        );
        // Stripping the annotations restores the original plan bytes.
        let mut stripped = pruned.clone();
        planner::strip_prune(&mut stripped);
        let mut original = plan.clone();
        planner::strip_prune(&mut original);
        prop_assert_eq!(stripped, original);
    }
}
