//! Per-run call memoization: redundant web service calls in cartesian
//! dependent joins collapse to one real call, without changing results.

use proptest::prelude::*;

use wsmed::core::{paper, CachePolicy};
use wsmed::services::{DatasetConfig, UsZipService};
use wsmed::store::canonicalize;

/// A cartesian query: every GetAllStates row triggers the *same*
/// GetInfoByState('CO') call — 51 identical calls without the cache.
const CARTESIAN_SQL: &str = "select gs.State, gi.GetInfoByStateResult \
     from GetAllStates gs, GetInfoByState gi where gi.USState='CO'";

#[test]
fn cache_collapses_identical_calls() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let uncached = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(uncached.row_count(), 51);
    let uszip_calls = |setup: &paper::PaperSetup| {
        setup
            .network
            .provider(UsZipService::PROVIDER)
            .unwrap()
            .metrics()
            .calls
    };
    assert_eq!(uszip_calls(&setup), 51, "uncached: one call per state row");

    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    let cached = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(canonicalize(cached.rows), canonicalize(uncached.rows));
    assert_eq!(uszip_calls(&setup), 1, "cached: one real call total");
}

#[test]
fn cache_does_not_change_paper_queries() {
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    let plain = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    setup.wsmed.enable_call_cache(true);
    let cached = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    assert_eq!(canonicalize(cached.rows), canonicalize(plain.rows));
    // Query2's arguments are all distinct (each zip called once), so the
    // cache saves nothing — and must not add calls either.
    assert_eq!(cached.ws_calls, plain.ws_calls);
}

#[test]
fn cache_is_per_run() {
    // The same query twice with the cache on still calls the services in
    // the second run (the cache does not leak across executions).
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    let calls = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics()
        .calls;
    assert_eq!(calls, 2, "one real call per run");
}

#[test]
fn cache_works_in_parallel_plans() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![2, 2])
        .unwrap();
    let plain = paper::setup(0.0, DatasetConfig::tiny())
        .wsmed
        .run_central(paper::QUERY1_SQL)
        .unwrap();
    assert_eq!(canonicalize(r.rows), canonicalize(plain.rows));
}

#[test]
fn cross_run_policy_reuses_entries_across_runs() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.set_cache_policy(Some(CachePolicy::cross_run()));
    let first = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    let second = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(canonicalize(second.rows), canonicalize(first.rows));
    let calls = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics()
        .calls;
    assert_eq!(calls, 1, "second run answered entirely from memory");
    assert!(second.cache.hits > 0, "second run must report cache hits");
    assert_eq!(second.cache.misses, 0, "no real call in the second run");
}

#[test]
fn report_surfaces_cache_stats() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    let report = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    // 51 cartesian rows share one GetInfoByState('CO') call: 1 miss (plus
    // the GetAllStates call), 50 hits.
    assert_eq!(report.cache.hits, 50);
    assert!(report.cache.misses >= 1);
    assert!(report.cache.hit_rate().unwrap() > 0.9);
    // Cache off: the report carries all-zero stats, not stale ones.
    setup.wsmed.enable_call_cache(false);
    let plain = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(plain.cache.hits, 0);
    assert_eq!(plain.cache.misses, 0);
}

fn small_policy(capacity: usize, shards: usize, cross_run: bool) -> CachePolicy {
    CachePolicy {
        capacity,
        shards,
        cross_run,
        ..CachePolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Caching (any capacity/sharding/lifetime) is semantically invisible
    // to FF_APPLYP plans: same multiset of rows as the uncached run.
    #[test]
    fn prop_cached_ff_equivalent_to_uncached(
        seed in 0u64..1000,
        fo1 in 1usize..5,
        capacity in 1usize..64,
        shards in 1usize..9,
        cross_run in any::<bool>(),
    ) {
        let config = DatasetConfig { seed, ..DatasetConfig::tiny() };
        let baseline = paper::setup(0.0, config.clone())
            .wsmed
            .run_parallel(paper::QUERY2_SQL, &vec![fo1, 2])
            .unwrap();
        let mut setup = paper::setup(0.0, config);
        setup.wsmed.set_cache_policy(Some(small_policy(capacity, shards, cross_run)));
        // Two runs: the second exercises cross-run reuse (or the per-run
        // clear) plus dedup-aware short-circuiting.
        let cached1 = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![fo1, 2]).unwrap();
        let cached2 = setup.wsmed.run_parallel(paper::QUERY2_SQL, &vec![fo1, 2]).unwrap();
        prop_assert_eq!(
            canonicalize(cached1.rows),
            canonicalize(baseline.rows.clone()),
            "first cached run diverged (cap {} shards {} cross {})",
            capacity, shards, cross_run
        );
        prop_assert_eq!(
            canonicalize(cached2.rows),
            canonicalize(baseline.rows),
            "second cached run diverged (cap {} shards {} cross {})",
            capacity, shards, cross_run
        );
    }

    // Same invariant for adaptive plans.
    #[test]
    fn prop_cached_aff_equivalent_to_uncached(
        seed in 0u64..1000,
        capacity in 1usize..64,
        cross_run in any::<bool>(),
    ) {
        let config = DatasetConfig { seed, ..DatasetConfig::tiny() };
        let adaptive = wsmed::core::AdaptiveConfig::default();
        let baseline = paper::setup(0.0, config.clone())
            .wsmed
            .run_adaptive(paper::QUERY2_SQL, &adaptive)
            .unwrap();
        let mut setup = paper::setup(0.0, config);
        setup.wsmed.set_cache_policy(Some(small_policy(capacity, 4, cross_run)));
        let cached = setup.wsmed.run_adaptive(paper::QUERY2_SQL, &adaptive).unwrap();
        prop_assert_eq!(
            canonicalize(cached.rows),
            canonicalize(baseline.rows),
            "cap {} cross {}", capacity, cross_run
        );
    }
}
