//! Per-run call memoization: redundant web service calls in cartesian
//! dependent joins collapse to one real call, without changing results.

use wsmed::core::paper;
use wsmed::services::{DatasetConfig, UsZipService};
use wsmed::store::canonicalize;

/// A cartesian query: every GetAllStates row triggers the *same*
/// GetInfoByState('CO') call — 51 identical calls without the cache.
const CARTESIAN_SQL: &str = "select gs.State, gi.GetInfoByStateResult \
     from GetAllStates gs, GetInfoByState gi where gi.USState='CO'";

#[test]
fn cache_collapses_identical_calls() {
    let setup = paper::setup(0.0, DatasetConfig::tiny());
    let uncached = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(uncached.row_count(), 51);
    let uszip_calls = |setup: &paper::PaperSetup| {
        setup
            .network
            .provider(UsZipService::PROVIDER)
            .unwrap()
            .metrics()
            .calls
    };
    assert_eq!(uszip_calls(&setup), 51, "uncached: one call per state row");

    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    let cached = setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    assert_eq!(canonicalize(cached.rows), canonicalize(uncached.rows));
    assert_eq!(uszip_calls(&setup), 1, "cached: one real call total");
}

#[test]
fn cache_does_not_change_paper_queries() {
    let mut setup = paper::setup(0.0, DatasetConfig::small());
    let plain = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    setup.wsmed.enable_call_cache(true);
    let cached = setup.wsmed.run_central(paper::QUERY2_SQL).unwrap();
    assert_eq!(canonicalize(cached.rows), canonicalize(plain.rows));
    // Query2's arguments are all distinct (each zip called once), so the
    // cache saves nothing — and must not add calls either.
    assert_eq!(cached.ws_calls, plain.ws_calls);
}

#[test]
fn cache_is_per_run() {
    // The same query twice with the cache on still calls the services in
    // the second run (the cache does not leak across executions).
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    setup.wsmed.run_central(CARTESIAN_SQL).unwrap();
    let calls = setup
        .network
        .provider(UsZipService::PROVIDER)
        .unwrap()
        .metrics()
        .calls;
    assert_eq!(calls, 2, "one real call per run");
}

#[test]
fn cache_works_in_parallel_plans() {
    let mut setup = paper::setup(0.0, DatasetConfig::tiny());
    setup.wsmed.enable_call_cache(true);
    let r = setup
        .wsmed
        .run_parallel(paper::QUERY1_SQL, &vec![2, 2])
        .unwrap();
    let plain = paper::setup(0.0, DatasetConfig::tiny())
        .wsmed
        .run_central(paper::QUERY1_SQL)
        .unwrap();
    assert_eq!(canonicalize(r.rows), canonicalize(plain.rows));
}
