//! Property tests of the call-cache subsystem: structural key equality
//! and single-flight value delivery under concurrent hammering.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use proptest::prelude::*;

use wsmed_core::{CacheKey, CachePolicy, CallCache, CallLookup};
use wsmed_store::{Record, Tuple, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        "[ -~]{0,16}".prop_map(Value::from),
        any::<f64>().prop_map(Value::Real),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::Sequence),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::Bag),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..3).prop_map(|fields| {
                let mut r = Record::new();
                for (k, v) in fields {
                    r.set(k, v);
                }
                Value::Record(r)
            }),
        ]
    })
}

/// Resolves one key against the cache, acting as leader (completing with
/// `value`) on a miss and retrying after an aborted flight.
fn resolve(cache: &CallCache, key: &CacheKey, value: &Value, leaders: &AtomicUsize) -> Value {
    loop {
        match cache.lookup_call(key) {
            CallLookup::Hit { value: v, .. } => return v,
            CallLookup::Miss(flight) => {
                leaders.fetch_add(1, AtomicOrdering::Relaxed);
                // Hold the flight open briefly so other threads really do
                // queue up on the latch instead of racing past it.
                std::thread::sleep(Duration::from_millis(2));
                flight.complete(value);
                return value.clone();
            }
            CallLookup::Retry => continue,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // `CacheKey` equality is exactly the structural equality of the
    // argument tuples under `total_cmp` — bit-exact reals, NaN equal to
    // itself — regardless of how the values were produced.
    #[test]
    fn prop_cache_key_equality_is_structural(
        a in proptest::collection::vec(value_strategy(), 0..5),
        b in proptest::collection::vec(value_strategy(), 0..5),
    ) {
        let ka = CacheKey::for_call("Op", &a);
        let kb = CacheKey::for_call("Op", &b);
        let structurally_equal =
            Tuple::new(a.clone()).total_cmp(&Tuple::new(b.clone())) == Ordering::Equal;
        prop_assert_eq!(ka == kb, structurally_equal);
        // Reflexivity holds even for NaN-bearing args (derived `==` on
        // `Value` would deny it).
        prop_assert_eq!(&CacheKey::for_call("Op", &a), &ka);
        // The OWF name is part of the key: same args, different operation,
        // different key.
        prop_assert_ne!(&CacheKey::for_call("OtherOp", &a), &ka);
    }

    // K threads race one cold key: exactly one leads (issues the "call"),
    // every thread receives a value structurally identical to the
    // leader's.
    #[test]
    fn prop_single_flight_delivers_leader_value_to_all(
        value in value_strategy(),
        k in 2usize..6,
    ) {
        let cache = Arc::new(CallCache::new(CachePolicy::default(), 0.0));
        let key = CacheKey::for_call("Op", &[Value::Int(7)]);
        let leaders = AtomicUsize::new(0);
        let barrier = Barrier::new(k);
        let results: Vec<Value> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let key = key.clone();
                    let value = value.clone();
                    let (barrier, leaders) = (&barrier, &leaders);
                    s.spawn(move || {
                        barrier.wait();
                        resolve(&cache, &key, &value, leaders)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        prop_assert_eq!(leaders.load(AtomicOrdering::Relaxed), 1, "exactly one leader");
        for r in &results {
            prop_assert_eq!(
                Tuple::new(vec![r.clone()]).total_cmp(&Tuple::new(vec![value.clone()])),
                Ordering::Equal,
                "waiter saw a different value"
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.dedup_waits as usize, k - 1);
    }

    // LRU eviction keeps the resident set within the configured capacity
    // (up to per-shard rounding) no matter how many inserts happen.
    #[test]
    fn prop_capacity_bounds_resident_entries(
        capacity in 1usize..32,
        shards in 1usize..8,
        n in 0usize..128,
    ) {
        let policy = CachePolicy { capacity, shards, ..CachePolicy::default() };
        let cache = CallCache::new(policy, 0.0);
        for i in 0..n {
            let key = CacheKey::for_call("Op", &[Value::Int(i as i64)]);
            if let CallLookup::Miss(flight) = cache.lookup_call(&key) {
                flight.complete(&Value::Int(i as i64));
            }
        }
        // Capacity splits across shards rounding up, so the worst case is
        // ceil(capacity/shards) entries in every shard.
        prop_assert!(cache.ready_entries() <= capacity.div_ceil(shards) * shards);
    }
}
