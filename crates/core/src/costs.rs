//! Calibrated planner statistics and the parallel-plan cost model.
//!
//! The paper's plan creator is purely heuristic: every query shape gets
//! the same section splits and whatever fanout vector the caller supplies.
//! This module provides the data the cost-based planner
//! ([`crate::planner`]) optimizes against:
//!
//! * [`ProviderProfile`] — per-OWF latency and provider capacity, warm-
//!   started from the transport's calibration specs
//!   ([`crate::transport::WsTransport::provider_profile`]);
//! * [`PlannerStats`] — a mediator-lifetime accumulator that refines the
//!   profiles with observed per-operator cardinalities (rows-out per
//!   row-in, i.e. join fanout and filter selectivity) and records which
//!   wire-encoded parameter tuples evaluated to the *empty* stream, the
//!   raw material for semi-join parameter pruning;
//! * [`CostModel`] / [`PlanCost`] — the makespan estimate
//!   `coordinator + Σ level_times + startup` a candidate plan is scored
//!   by, monotone in every latency and selectivity input.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

/// Calibrated latency/capacity figures for one OWF's provider.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderProfile {
    /// Provider name (for display and per-provider aggregation).
    pub provider: String,
    /// Full-speed concurrency capacity: more workers than this saturate
    /// the provider and stop helping.
    pub capacity: usize,
    /// Expected model-seconds per call at nominal congestion.
    pub latency_secs: f64,
}

/// Observed cardinalities of one plan operator (an OWF call or a helping
/// function), accumulated across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpObs {
    /// Input tuples the operator was applied to.
    pub rows_in: u64,
    /// Result tuples it emitted in total.
    pub rows_out: u64,
}

impl OpObs {
    /// Average rows emitted per input row — join fanout for OWFs,
    /// selectivity for filters. `None` before any observation.
    pub fn rows_per_call(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

/// Cap on remembered empty parameters per section, bounding memory on
/// adversarial workloads. 4096 wire-encoded tuples is a few hundred KiB.
const MAX_EMPTY_PARAMS_PER_SECTION: usize = 4096;

/// Mediator-lifetime planner statistics: provider profiles, per-operator
/// cardinalities, observed call latencies, and per-section empty-parameter
/// sets. All methods take `&self`; the struct is shared across concurrent
/// executions via `Arc`.
#[derive(Debug, Default)]
pub struct PlannerStats {
    profiles: RwLock<HashMap<String, ProviderProfile>>,
    obs: RwLock<HashMap<String, OpObs>>,
    /// Observed mean model latency per OWF, refined from execution traces
    /// (overrides the profile's calibrated `latency_secs` once present).
    latency: RwLock<HashMap<String, (u64, f64)>>,
    empties: RwLock<HashMap<String, HashSet<Bytes>>>,
}

impl PlannerStats {
    /// Creates an empty, shareable statistics accumulator.
    pub fn new() -> Arc<Self> {
        Arc::new(PlannerStats::default())
    }

    /// Installs (or refreshes) the calibrated profile for an OWF. Used to
    /// warm-start the cost model before anything has executed.
    pub fn seed_profile(&self, owf: &str, profile: ProviderProfile) {
        self.profiles.write().insert(owf.to_owned(), profile);
    }

    /// The profile for an OWF, with any observed latency refinement
    /// applied on top of the calibrated seed.
    pub fn profile(&self, owf: &str) -> Option<ProviderProfile> {
        let mut profile = self.profiles.read().get(owf).cloned()?;
        if let Some(&(n, total)) = self.latency.read().get(owf) {
            if n > 0 {
                profile.latency_secs = total / n as f64;
            }
        }
        Some(profile)
    }

    /// Whether any profile has been seeded.
    pub fn has_profiles(&self) -> bool {
        !self.profiles.read().is_empty()
    }

    /// Records that applying `op` to `rows_in` input tuples emitted
    /// `rows_out` result tuples.
    pub fn observe_op(&self, op: &str, rows_in: u64, rows_out: u64) {
        if rows_in == 0 {
            return;
        }
        let mut obs = self.obs.write();
        let entry = obs.entry(op.to_owned()).or_default();
        entry.rows_in += rows_in;
        entry.rows_out += rows_out;
    }

    /// Records one observed call latency (model seconds) for an OWF.
    pub fn observe_latency(&self, owf: &str, model_secs: f64) {
        if !model_secs.is_finite() || model_secs < 0.0 {
            return;
        }
        let mut latency = self.latency.write();
        let entry = latency.entry(owf.to_owned()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += model_secs;
    }

    /// Average rows emitted per input row for `op`, or `default` before
    /// any observation.
    pub fn rows_per_call(&self, op: &str, default: f64) -> f64 {
        self.obs
            .read()
            .get(op)
            .and_then(OpObs::rows_per_call)
            .unwrap_or(default)
    }

    /// The raw observation for `op`, if any.
    pub fn op_obs(&self, op: &str) -> Option<OpObs> {
        self.obs.read().get(op).copied()
    }

    /// Records that the wire-encoded parameter `param` evaluated to the
    /// empty stream in section `section_key`. Bounded per section.
    pub fn observe_empty(&self, section_key: &str, param: Bytes) {
        let mut empties = self.empties.write();
        let set = empties.entry(section_key.to_owned()).or_default();
        if set.len() < MAX_EMPTY_PARAMS_PER_SECTION {
            set.insert(param);
        }
    }

    /// The wire-encoded parameters known to produce no rows in section
    /// `section_key`, in a deterministic (sorted) order.
    pub fn empty_params(&self, section_key: &str) -> Vec<Bytes> {
        let empties = self.empties.read();
        let Some(set) = empties.get(section_key) else {
            return Vec::new();
        };
        let mut params: Vec<Bytes> = set.iter().cloned().collect();
        params.sort_by(|a, b| a.as_ref().cmp(b.as_ref()));
        params
    }

    /// Number of sections with at least one recorded empty parameter.
    pub fn sections_with_empties(&self) -> usize {
        self.empties
            .read()
            .values()
            .filter(|s| !s.is_empty())
            .count()
    }

    /// Drops all accumulated statistics (profiles stay seeded).
    pub fn clear_observations(&self) {
        self.obs.write().clear();
        self.latency.write().clear();
        self.empties.write().clear();
    }
}

/// The client-side cost constants the makespan estimate charges, mirroring
/// [`wsmed_netsim::ClientCostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Model-seconds charged per child query process started.
    pub process_startup: f64,
    /// Rows an unobserved OWF is assumed to emit per call — pessimistic
    /// enough that dependent fan-out dominates the estimate until real
    /// observations arrive.
    pub default_rows_per_call: f64,
    /// Latency assumed for an OWF with no profile, model seconds.
    pub default_latency_secs: f64,
    /// Capacity assumed for an OWF with no profile.
    pub default_capacity: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            process_startup: 0.25,
            default_rows_per_call: 8.0,
            default_latency_secs: 0.75,
            default_capacity: 4,
        }
    }
}

/// One γ-operator of a costed section, as the estimator sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum CostStage {
    /// A web service call: name, expected latency, provider capacity.
    Owf {
        /// OWF name.
        name: String,
        /// Expected model-seconds per call.
        latency_secs: f64,
        /// Provider concurrency capacity.
        capacity: usize,
        /// Expected rows emitted per call.
        rows_per_call: f64,
    },
    /// A local helping function — free on the wire, but it scales the
    /// downstream cardinality (filters have `rows_per_call < 1`).
    Function {
        /// Function name.
        name: String,
        /// Expected rows emitted per input row.
        rows_per_call: f64,
    },
}

impl CostStage {
    /// Expected rows emitted per input row.
    pub fn rows_per_call(&self) -> f64 {
        match self {
            CostStage::Owf { rows_per_call, .. } | CostStage::Function { rows_per_call, .. } => {
                *rows_per_call
            }
        }
    }
}

/// Estimated cost of one process-tree level of a candidate plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCost {
    /// Worker processes at this level (product of fanouts above).
    pub workers: usize,
    /// Estimated OWF calls issued by this level in total.
    pub calls: f64,
    /// Estimated busy model-seconds of the level:
    /// `Σ calls × latency / min(workers, capacity)` over its OWF stages.
    pub secs: f64,
}

/// Estimated cost of a full candidate plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanCost {
    /// Model-seconds of the coordinator's own (sequential) OWF calls.
    pub coordinator_secs: f64,
    /// Per-level busy-time estimates, level 1 first.
    pub levels: Vec<LevelCost>,
    /// Total modeled process-startup charge (workers × startup).
    pub startup_secs: f64,
}

impl PlanCost {
    /// The scalar the planner minimizes:
    /// `coordinator + Σ level busy times + startup`.
    ///
    /// Summing level times (rather than taking the bottleneck maximum)
    /// keeps the estimate monotone and rewards plans that shrink *every*
    /// level's work; the levels of a dependent-join pipeline drain mostly
    /// sequentially at the start and end of a run, so the sum tracks the
    /// observed makespan shape better than the max on the paper workloads.
    pub fn makespan_est(&self) -> f64 {
        self.coordinator_secs + self.levels.iter().map(|l| l.secs).sum::<f64>() + self.startup_secs
    }

    /// Total worker processes across all levels.
    pub fn total_workers(&self) -> usize {
        self.levels.iter().map(|l| l.workers).sum()
    }
}

impl CostModel {
    /// Estimates the cost of a candidate plan.
    ///
    /// `coordinator` is the chain of stages the coordinator runs itself;
    /// `levels[i]` is the stage chain of process-tree level `i+1`, and
    /// `fanouts[i]` its per-parent fanout (so level `i` has
    /// `fanouts[0] × … × fanouts[i]` workers). The cardinality walk
    /// starts from one (empty) tuple at the coordinator.
    pub fn estimate(
        &self,
        coordinator: &[CostStage],
        levels: &[Vec<CostStage>],
        fanouts: &[usize],
    ) -> PlanCost {
        debug_assert_eq!(levels.len(), fanouts.len());
        let mut rows = 1.0f64;
        let mut coordinator_secs = 0.0;
        for stage in coordinator {
            if let CostStage::Owf {
                latency_secs: latency,
                ..
            } = stage
            {
                coordinator_secs += rows * latency;
            }
            rows *= stage.rows_per_call();
        }

        let mut level_costs = Vec::with_capacity(levels.len());
        let mut workers = 1usize;
        let mut startup_secs = 0.0;
        for (stages, &fanout) in levels.iter().zip(fanouts) {
            workers = workers.saturating_mul(fanout.max(1));
            startup_secs += workers as f64 * self.process_startup;
            let mut calls = 0.0;
            let mut secs = 0.0;
            for stage in stages {
                if let CostStage::Owf {
                    latency_secs: latency,
                    capacity,
                    ..
                } = stage
                {
                    let parallelism = workers.min((*capacity).max(1)).max(1) as f64;
                    calls += rows;
                    secs += rows * latency / parallelism;
                }
                rows *= stage.rows_per_call();
            }
            level_costs.push(LevelCost {
                workers,
                calls,
                secs,
            });
        }
        PlanCost {
            coordinator_secs,
            levels: level_costs,
            startup_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owf(name: &str, latency: f64, capacity: usize, fanout: f64) -> CostStage {
        CostStage::Owf {
            name: name.into(),
            latency_secs: latency,
            capacity,
            rows_per_call: fanout,
        }
    }

    fn filter(sel: f64) -> CostStage {
        CostStage::Function {
            name: "equal".into(),
            rows_per_call: sel,
        }
    }

    #[test]
    fn stats_accumulate_and_average() {
        let stats = PlannerStats::new();
        assert_eq!(stats.rows_per_call("GetAirports", 8.0), 8.0);
        stats.observe_op("GetAirports", 10, 30);
        stats.observe_op("GetAirports", 10, 10);
        assert!((stats.rows_per_call("GetAirports", 8.0) - 2.0).abs() < 1e-12);
        // Zero-input observations are ignored (no division by zero).
        stats.observe_op("GetAirports", 0, 5);
        assert_eq!(stats.op_obs("GetAirports").unwrap().rows_in, 20);
    }

    #[test]
    fn latency_refinement_overrides_seed() {
        let stats = PlannerStats::new();
        stats.seed_profile(
            "GetAirports",
            ProviderProfile {
                provider: "aviation".into(),
                capacity: 4,
                latency_secs: 0.5,
            },
        );
        assert_eq!(stats.profile("GetAirports").unwrap().latency_secs, 0.5);
        stats.observe_latency("GetAirports", 1.0);
        stats.observe_latency("GetAirports", 3.0);
        assert!((stats.profile("GetAirports").unwrap().latency_secs - 2.0).abs() < 1e-12);
        // Non-finite and negative samples are rejected.
        stats.observe_latency("GetAirports", f64::NAN);
        stats.observe_latency("GetAirports", -1.0);
        assert!((stats.profile("GetAirports").unwrap().latency_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_params_are_bounded_and_sorted() {
        let stats = PlannerStats::new();
        stats.observe_empty("s1", Bytes::copy_from_slice(b"bb"));
        stats.observe_empty("s1", Bytes::copy_from_slice(b"aa"));
        stats.observe_empty("s1", Bytes::copy_from_slice(b"aa")); // dedup
        assert_eq!(
            stats.empty_params("s1"),
            vec![Bytes::copy_from_slice(b"aa"), Bytes::copy_from_slice(b"bb")]
        );
        assert_eq!(stats.empty_params("other"), Vec::<Bytes>::new());
        assert_eq!(stats.sections_with_empties(), 1);
    }

    #[test]
    fn estimate_charges_coordinator_levels_and_startup() {
        let model = CostModel {
            process_startup: 0.25,
            ..Default::default()
        };
        // Coordinator: 1 call × 1.0s emitting 10 rows. Level 1: 10 calls
        // × 0.5s at min(4 workers, cap 2) = 2-way parallelism.
        let cost = model.estimate(
            &[owf("A", 1.0, 8, 10.0)],
            &[vec![owf("B", 0.5, 2, 1.0)]],
            &[4],
        );
        assert!((cost.coordinator_secs - 1.0).abs() < 1e-9);
        assert_eq!(cost.levels.len(), 1);
        assert!((cost.levels[0].calls - 10.0).abs() < 1e-9);
        assert!((cost.levels[0].secs - 10.0 * 0.5 / 2.0).abs() < 1e-9);
        assert!((cost.startup_secs - 4.0 * 0.25).abs() < 1e-9);
        assert!(
            (cost.makespan_est() - (1.0 + 2.5 + 1.0)).abs() < 1e-9,
            "{}",
            cost.makespan_est()
        );
        assert_eq!(cost.total_workers(), 4);
    }

    #[test]
    fn estimate_is_monotone_in_latency() {
        let model = CostModel::default();
        let base = model
            .estimate(
                &[owf("A", 1.0, 8, 10.0)],
                &[vec![owf("B", 0.5, 4, 2.0)]],
                &[3],
            )
            .makespan_est();
        let slower = model
            .estimate(
                &[owf("A", 1.0, 8, 10.0)],
                &[vec![owf("B", 0.9, 4, 2.0)]],
                &[3],
            )
            .makespan_est();
        assert!(slower > base, "{slower} vs {base}");
    }

    #[test]
    fn estimate_is_monotone_in_selectivity() {
        let model = CostModel::default();
        // A more selective filter upstream of an OWF strictly lowers cost.
        let tight = model
            .estimate(
                &[owf("A", 1.0, 8, 10.0)],
                &[vec![filter(0.1), owf("B", 0.5, 4, 2.0)]],
                &[3],
            )
            .makespan_est();
        let loose = model
            .estimate(
                &[owf("A", 1.0, 8, 10.0)],
                &[vec![filter(0.9), owf("B", 0.5, 4, 2.0)]],
                &[3],
            )
            .makespan_est();
        assert!(tight < loose, "{tight} vs {loose}");
    }

    #[test]
    fn workers_beyond_capacity_stop_helping() {
        let model = CostModel::default();
        let at_cap = model.estimate(&[], &[vec![owf("B", 0.5, 3, 1.0)]], &[3]);
        let over_cap = model.estimate(&[], &[vec![owf("B", 0.5, 3, 1.0)]], &[9]);
        assert!((at_cap.levels[0].secs - over_cap.levels[0].secs).abs() < 1e-12);
        // …but they still cost startup.
        assert!(over_cap.startup_secs > at_cap.startup_secs);
    }
}
