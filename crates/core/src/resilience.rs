//! Resilient call policies: deadlines, retries with backoff, per-provider
//! circuit breakers, hedged requests, and partial-result degradation.
//!
//! The paper's mediator assumes cooperative services: a call either
//! returns or the whole query aborts. This module adds the client-side
//! machinery to keep a query useful when providers hang, brown out, or go
//! down (the expanded [`wsmed_netsim::FaultSpec`] chaos model):
//!
//! * **Deadline** — every call is bounded by a per-call model-time
//!   deadline; a hung call charges exactly the deadline and fails with
//!   [`crate::CoreError::DeadlineExceeded`] instead of stalling the run.
//! * **Retry with backoff** — transient failures (service faults,
//!   deadline timeouts) are retried with exponential backoff and
//!   deterministic seeded jitter (never wall-clock randomness).
//! * **Circuit breaker** — consecutive failures against one provider trip
//!   a breaker from closed to open; calls are then rejected without
//!   reaching the wire until a model-time cooldown elapses, after which a
//!   bounded number of half-open probes decide between closing and
//!   re-opening. All transitions are traced and counted.
//! * **Hedged requests** — optionally, a backup call launches after a
//!   model-time delay and the first success wins. The losing call's value
//!   is dropped before the caching layer, so hedges never poison the
//!   single-flight call cache.
//! * **Partial failure mode** — at the query level,
//!   [`FailureMode::Partial`] drops parameter tuples whose calls fail
//!   terminally instead of aborting the run, with exact per-OWF skip
//!   accounting on [`ResilienceStats`].
//!
//! Everything here is strictly opt-in: the default policy (one attempt,
//! no deadline, no breaker, no hedge, [`FailureMode::Abort`]) leaves the
//! paper-reproduction call path byte-identical to the non-resilient code.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{CoreError, CoreResult};
use crate::transport::RetryPolicy;

/// What the mediator does when one parameter tuple's web-service call
/// fails terminally (retries exhausted, deadline exceeded, breaker open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureMode {
    /// Abort the whole query with the error (the paper's behaviour).
    #[default]
    Abort,
    /// Drop the failing parameter tuple from the result and keep going;
    /// every drop is counted in [`ResilienceStats::skipped_params`].
    Partial,
}

/// Circuit-breaker configuration for one provider (all providers share
/// the same policy; state is tracked per provider).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker closed → open.
    pub failure_threshold: u32,
    /// Model seconds an open breaker rejects calls before going
    /// half-open. Measured on the transport's model clock
    /// ([`crate::transport::WsTransport::model_now`]), never wall time.
    pub cooldown_model_secs: f64,
    /// Concurrent probe calls admitted while half-open; the first
    /// success closes the breaker, the first failure re-opens it.
    pub half_open_probes: u32,
    /// Admit a half-open probe after this many consecutive rejections
    /// even when the cooldown has not elapsed (`0` disables). The
    /// cooldown is measured on the transport's model clock, which only
    /// advances while providers serve calls — when the open breaker is
    /// the sole reason no calls are served, the clock freezes and the
    /// cooldown would never elapse. This count-based escape keeps the
    /// breaker live under a frozen clock, deterministically.
    pub probe_after_rejections: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown_model_secs: 30.0,
            half_open_probes: 1,
            probe_after_rejections: 64,
        }
    }
}

/// Hedged-request configuration: launch a backup call after a model-time
/// delay and take the first success.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Model seconds the primary call may run before the hedge launches.
    pub delay_model_secs: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            delay_model_secs: 2.0,
        }
    }
}

/// The full resilient-call policy applied by the execution context. The
/// default is the non-resilient paper behaviour: one attempt, no
/// deadline, no breaker, no hedge, abort on failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: usize,
    /// Base model-time backoff before the second attempt.
    pub backoff_model_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt
    /// (1.0 = fixed backoff, the legacy [`RetryPolicy`] semantics).
    pub backoff_multiplier: f64,
    /// Jitter fraction `j`: each backoff is scaled by a deterministic
    /// seeded factor drawn uniformly from `[1 - j, 1 + j]`.
    pub backoff_jitter_frac: f64,
    /// Per-call model-time deadline (`None` = unbounded, the default).
    pub deadline_model_secs: Option<f64>,
    /// Per-provider circuit breaker (`None` = disabled).
    pub breaker: Option<BreakerPolicy>,
    /// Hedged requests (`None` = disabled).
    pub hedge: Option<HedgePolicy>,
    /// Query-level degradation semantics.
    pub failure_mode: FailureMode,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_attempts: 1,
            backoff_model_secs: 0.5,
            backoff_multiplier: 1.0,
            backoff_jitter_frac: 0.0,
            deadline_model_secs: None,
            breaker: None,
            hedge: None,
            failure_mode: FailureMode::Abort,
        }
    }
}

impl ResiliencePolicy {
    /// Lifts a legacy [`RetryPolicy`] into a resilience policy: same
    /// attempts and fixed backoff, everything else off.
    pub fn from_retry(retry: RetryPolicy) -> Self {
        ResiliencePolicy {
            max_attempts: retry.max_attempts.max(1),
            backoff_model_secs: retry.backoff_model_secs,
            ..Default::default()
        }
    }

    /// The retry-loop projection of this policy (legacy accessor).
    pub fn as_retry(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.max_attempts,
            backoff_model_secs: self.backoff_model_secs,
        }
    }

    /// The backoff before attempt `attempt + 1` (so `attempt` is the
    /// 1-based attempt that just failed), with deterministic jitter from
    /// the seeded roll `jitter_roll ∈ [0, 1)`.
    pub(crate) fn backoff_for(&self, attempt: usize, jitter_roll: f64) -> f64 {
        let exp = attempt.saturating_sub(1) as i32;
        let base = self.backoff_model_secs * self.backoff_multiplier.powi(exp);
        let jitter = 1.0 + self.backoff_jitter_frac * (2.0 * jitter_roll - 1.0);
        (base * jitter).max(0.0)
    }

    /// True when the policy is exactly the non-resilient default for the
    /// call path (attempts aside): no deadline, breaker, or hedge.
    pub fn is_plain(&self) -> bool {
        self.deadline_model_secs.is_none() && self.breaker.is_none() && self.hedge.is_none()
    }
}

/// Per-provider slice of [`ResilienceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderResilience {
    /// Retry attempts issued against this provider.
    pub retries: u64,
    /// Times this provider's breaker tripped open (including re-opens
    /// from half-open).
    pub breaker_opens: u64,
    /// Calls rejected by this provider's open breaker.
    pub breaker_rejections: u64,
}

/// Counters describing the resilience machinery's activity during one
/// run, surfaced on [`crate::ExecutionReport::resilience`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceStats {
    /// Retry attempts issued (beyond each call's first attempt).
    pub retries: u64,
    /// Calls that charged their full deadline and timed out.
    pub deadline_exceeded: u64,
    /// Hedged backup calls launched.
    pub hedges_launched: u64,
    /// Hedged calls whose backup's success was taken.
    pub hedge_wins: u64,
    /// Breaker transitions closed/half-open → open.
    pub breaker_opens: u64,
    /// Breaker transitions open → half-open (cooldown elapsed).
    pub breaker_half_opens: u64,
    /// Breaker transitions half-open → closed (probe succeeded).
    pub breaker_closes: u64,
    /// Calls rejected by an open breaker without reaching the wire.
    pub breaker_rejections: u64,
    /// Parameter tuples dropped under [`FailureMode::Partial`].
    pub skipped_params: u64,
    /// Calls shed by admission control ([`QuotaPolicy`] budgets) before
    /// reaching the wire.
    pub admission_rejections: u64,
    /// Per-provider breakdown, sorted by provider name. For replicated
    /// providers this is the *group-level rollup* (each entry sums its
    /// replicas), so group dashboards and the chaos ablation keep their
    /// historical shape; a non-replicated provider is its own group.
    pub per_provider: Vec<(String, ProviderResilience)>,
    /// Per-replica breakdown keyed `(group, replica)`, sorted by key.
    /// For a non-replicated provider the replica name equals the group
    /// name, so this is a superset view of `per_provider`.
    pub per_replica: Vec<((String, String), ProviderResilience)>,
    /// Skipped-parameter counts per OWF name, sorted by name.
    pub skipped_by_owf: Vec<(String, u64)>,
}

impl ResilienceStats {
    /// True when no resilience machinery fired at all this run.
    pub fn is_quiet(&self) -> bool {
        *self == ResilienceStats::default()
    }
}

/// Run-scoped collector behind [`ResilienceStats`]. Cheap when idle: the
/// maps are only locked on actual resilience events.
#[derive(Debug, Default)]
pub(crate) struct ResilienceCollector {
    retries: AtomicU64,
    deadline_exceeded: AtomicU64,
    hedges_launched: AtomicU64,
    hedge_wins: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_half_opens: AtomicU64,
    breaker_closes: AtomicU64,
    breaker_rejections: AtomicU64,
    skipped_params: AtomicU64,
    admission_rejections: AtomicU64,
    per_replica: Mutex<BTreeMap<(String, String), ProviderResilience>>,
    skipped_by_owf: Mutex<BTreeMap<String, u64>>,
}

impl ResilienceCollector {
    pub(crate) fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.deadline_exceeded.store(0, Ordering::Relaxed);
        self.hedges_launched.store(0, Ordering::Relaxed);
        self.hedge_wins.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.breaker_half_opens.store(0, Ordering::Relaxed);
        self.breaker_closes.store(0, Ordering::Relaxed);
        self.breaker_rejections.store(0, Ordering::Relaxed);
        self.skipped_params.store(0, Ordering::Relaxed);
        self.admission_rejections.store(0, Ordering::Relaxed);
        self.per_replica.lock().clear();
        self.skipped_by_owf.lock().clear();
    }

    pub(crate) fn note_retry(&self, group: &str, replica: &str) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.per_replica
            .lock()
            .entry((group.to_owned(), replica.to_owned()))
            .or_default()
            .retries += 1;
    }

    pub(crate) fn note_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_hedge_launched(&self) {
        self.hedges_launched.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_hedge_win(&self) {
        self.hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_breaker_open(&self, group: &str, replica: &str) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
        self.per_replica
            .lock()
            .entry((group.to_owned(), replica.to_owned()))
            .or_default()
            .breaker_opens += 1;
    }

    pub(crate) fn note_breaker_half_open(&self) {
        self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admission_rejection(&self) {
        self.admission_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_breaker_rejection(&self, group: &str, replica: &str) {
        self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
        self.per_replica
            .lock()
            .entry((group.to_owned(), replica.to_owned()))
            .or_default()
            .breaker_rejections += 1;
    }

    /// Counts `n` skipped parameter tuples against one OWF (at the
    /// coordinator, or when a child's end-of-call skips are committed).
    pub(crate) fn note_skips(&self, owf: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.skipped_params.fetch_add(n, Ordering::Relaxed);
        *self
            .skipped_by_owf
            .lock()
            .entry(owf.to_owned())
            .or_default() += n;
    }

    pub(crate) fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            retries: self.retries.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_half_opens: self.breaker_half_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            skipped_params: self.skipped_params.load(Ordering::Relaxed),
            admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
            per_provider: {
                let map = self.per_replica.lock();
                let mut groups: BTreeMap<String, ProviderResilience> = BTreeMap::new();
                for ((group, _), v) in map.iter() {
                    let g = groups.entry(group.clone()).or_default();
                    g.retries += v.retries;
                    g.breaker_opens += v.breaker_opens;
                    g.breaker_rejections += v.breaker_rejections;
                }
                groups.into_iter().collect()
            },
            per_replica: self
                .per_replica
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            skipped_by_owf: self
                .skipped_by_owf
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// The phase of one provider's breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Closed,
    Open { since_model: f64, rejections: u32 },
    HalfOpen { probes_in_flight: u32 },
}

#[derive(Debug)]
struct BreakerState {
    consecutive_failures: u32,
    phase: Phase,
}

impl Default for BreakerState {
    fn default() -> Self {
        BreakerState {
            consecutive_failures: 0,
            phase: Phase::Closed,
        }
    }
}

/// Whether a call may proceed, and what the admission decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Admission {
    /// The call may be issued (closed breaker, or a half-open probe).
    pub allowed: bool,
    /// Admission itself moved the breaker open → half-open (trace it).
    pub went_half_open: bool,
}

/// A state transition caused by a call outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    /// Closed (or half-open) tripped to open.
    Opened,
    /// A half-open probe succeeded; the breaker closed.
    Closed,
}

/// Lifetime circuit-breaker transition totals across every query that
/// shared one breaker table. These are never reset by runs, so summing
/// per-query [`ResilienceStats`] deltas against them is meaningful under
/// concurrent executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTotals {
    /// Transitions closed/half-open → open.
    pub opens: u64,
    /// Transitions open → half-open (cooldown or rejection escape).
    pub half_opens: u64,
    /// Transitions half-open → closed (probe succeeded).
    pub closes: u64,
    /// Calls rejected by an open breaker without reaching the wire.
    pub rejections: u64,
}

/// Per-provider breaker states, shared by every query running against
/// one mediator. State is cleared at the start of each busy period (the
/// first run after the table goes idle), so sequential runs see the
/// paper-era "fresh breakers per run" semantics while overlapping runs
/// share live state.
#[derive(Debug, Default)]
pub(crate) struct Breakers {
    states: Mutex<HashMap<String, BreakerState>>,
    active_runs: AtomicUsize,
    opens: AtomicU64,
    half_opens: AtomicU64,
    closes: AtomicU64,
    rejections: AtomicU64,
}

impl Breakers {
    pub(crate) fn reset(&self) {
        self.states.lock().clear();
    }

    /// Marks one run as using this breaker table. The first run of a
    /// busy period (idle → busy edge) clears per-provider state; runs
    /// that overlap an already-active run share it.
    pub(crate) fn begin_run(&self) {
        if self.active_runs.fetch_add(1, Ordering::AcqRel) == 0 {
            self.reset();
        }
    }

    /// Marks one run as finished with this breaker table.
    pub(crate) fn end_run(&self) {
        self.active_runs.fetch_sub(1, Ordering::AcqRel);
    }

    /// Lifetime transition totals (never reset by runs).
    pub(crate) fn totals(&self) -> BreakerTotals {
        BreakerTotals {
            opens: self.opens.load(Ordering::Relaxed),
            half_opens: self.half_opens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
        }
    }

    /// Decides whether a call against `provider` may proceed at model
    /// time `now`.
    pub(crate) fn admit(&self, provider: &str, policy: &BreakerPolicy, now: f64) -> Admission {
        let mut states = self.states.lock();
        let state = states.entry(provider.to_owned()).or_default();
        match state.phase {
            Phase::Closed => Admission {
                allowed: true,
                went_half_open: false,
            },
            Phase::Open {
                since_model,
                ref mut rejections,
            } => {
                let cooled = now - since_model >= policy.cooldown_model_secs;
                let escape = policy.probe_after_rejections > 0
                    && *rejections + 1 >= policy.probe_after_rejections;
                if cooled || escape {
                    state.phase = Phase::HalfOpen {
                        probes_in_flight: 1,
                    };
                    self.half_opens.fetch_add(1, Ordering::Relaxed);
                    Admission {
                        allowed: true,
                        went_half_open: true,
                    }
                } else {
                    *rejections += 1;
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    Admission {
                        allowed: false,
                        went_half_open: false,
                    }
                }
            }
            Phase::HalfOpen {
                ref mut probes_in_flight,
            } => {
                if *probes_in_flight < policy.half_open_probes {
                    *probes_in_flight += 1;
                    Admission {
                        allowed: true,
                        went_half_open: false,
                    }
                } else {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    Admission {
                        allowed: false,
                        went_half_open: false,
                    }
                }
            }
        }
    }

    /// Records a successful call; returns a transition when a half-open
    /// probe's success closed the breaker.
    pub(crate) fn on_success(&self, provider: &str) -> Option<Transition> {
        let mut states = self.states.lock();
        let state = states.entry(provider.to_owned()).or_default();
        state.consecutive_failures = 0;
        match state.phase {
            Phase::HalfOpen { .. } => {
                state.phase = Phase::Closed;
                self.closes.fetch_add(1, Ordering::Relaxed);
                Some(Transition::Closed)
            }
            // A call admitted before the breaker tripped may complete
            // while open; its success does not close the breaker (the
            // cooldown/probe protocol decides).
            Phase::Open { .. } | Phase::Closed => None,
        }
    }

    /// Records a transiently failed call; returns a transition when the
    /// failure tripped (or re-tripped) the breaker.
    pub(crate) fn on_failure(
        &self,
        provider: &str,
        policy: &BreakerPolicy,
        now: f64,
    ) -> Option<Transition> {
        let mut states = self.states.lock();
        let state = states.entry(provider.to_owned()).or_default();
        match state.phase {
            Phase::Closed => {
                state.consecutive_failures += 1;
                if state.consecutive_failures >= policy.failure_threshold {
                    state.phase = Phase::Open {
                        since_model: now,
                        rejections: 0,
                    };
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    Some(Transition::Opened)
                } else {
                    None
                }
            }
            Phase::HalfOpen { .. } => {
                state.phase = Phase::Open {
                    since_model: now,
                    rejections: 0,
                };
                self.opens.fetch_add(1, Ordering::Relaxed);
                Some(Transition::Opened)
            }
            // Stragglers failing while already open change nothing.
            Phase::Open { .. } => None,
        }
    }
}

/// Admission-control budgets for a mediator shared by many tenants.
/// Every limit is optional; the default policy admits everything, which
/// keeps single-user runs byte-identical to the pre-quota behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuotaPolicy {
    /// Queries allowed in flight at once across all tenants; the
    /// `N+1`-th concurrent `execute` fails with
    /// [`CoreError::Admission`] instead of queueing.
    pub max_concurrent_queries: Option<usize>,
    /// Web-service calls allowed in flight at once across all tenants —
    /// the mediator-wide provider-capacity guard.
    pub max_inflight_calls: Option<usize>,
    /// Web-service calls one tenant may have in flight at once.
    pub per_tenant_inflight_calls: Option<usize>,
}

/// Counters describing admission-control activity, for dashboards and
/// the shell's shared-infrastructure printout. Lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries currently executing.
    pub active_queries: usize,
    /// Web-service calls currently in flight (admission-counted).
    pub inflight_calls: usize,
    /// Queries rejected at admission.
    pub shed_queries: u64,
    /// Calls rejected by the global or per-tenant in-flight budget.
    pub shed_calls: u64,
}

/// Mediator-global admission control: enforces a [`QuotaPolicy`] over
/// concurrent queries and in-flight web-service calls, shedding load
/// with [`CoreError::Admission`] instead of queueing. All decisions are
/// pure counter comparisons — deterministic given a deterministic
/// schedule of acquisitions.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    policy: RwLock<QuotaPolicy>,
    active_queries: AtomicUsize,
    inflight_calls: AtomicUsize,
    tenants: Mutex<HashMap<String, Arc<AtomicUsize>>>,
    shed_queries: AtomicU64,
    shed_calls: AtomicU64,
}

/// Releases one admitted query's slot on drop.
#[derive(Debug)]
pub struct QueryGuard {
    control: Arc<AdmissionControl>,
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.control.active_queries.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Per-query handle for charging web-service calls against the global
/// and per-tenant in-flight budgets.
#[derive(Debug, Clone)]
pub(crate) struct CallGate {
    control: Arc<AdmissionControl>,
    tenant: Arc<str>,
    tenant_inflight: Arc<AtomicUsize>,
}

/// Releases one in-flight call's budget slots on drop.
#[derive(Debug)]
pub(crate) struct CallToken {
    control: Arc<AdmissionControl>,
    tenant_inflight: Arc<AtomicUsize>,
}

impl Drop for CallToken {
    fn drop(&mut self) {
        self.control.inflight_calls.fetch_sub(1, Ordering::AcqRel);
        self.tenant_inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Increments `counter` unless that would exceed `limit`.
fn try_acquire(counter: &AtomicUsize, limit: Option<usize>) -> bool {
    match limit {
        None => {
            counter.fetch_add(1, Ordering::AcqRel);
            true
        }
        Some(limit) => counter
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                (v < limit).then_some(v + 1)
            })
            .is_ok(),
    }
}

impl AdmissionControl {
    /// Replaces the active quota policy (applies to future admissions).
    pub fn set_policy(&self, policy: QuotaPolicy) {
        *self.policy.write() = policy;
    }

    /// The active quota policy.
    pub fn policy(&self) -> QuotaPolicy {
        *self.policy.read()
    }

    /// Admits one query for `tenant`, or sheds it when the concurrent
    /// query budget is exhausted. The returned guard holds the slot
    /// until dropped.
    pub fn admit_query(self: &Arc<Self>, tenant: &str) -> CoreResult<QueryGuard> {
        let limit = self.policy.read().max_concurrent_queries;
        if !try_acquire(&self.active_queries, limit) {
            self.shed_queries.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Admission {
                tenant: tenant.to_owned(),
                reason: format!("max_concurrent_queries ({}) exhausted", limit.unwrap_or(0)),
            });
        }
        Ok(QueryGuard {
            control: Arc::clone(self),
        })
    }

    /// The per-query call gate for `tenant` (shares one in-flight
    /// counter across all of the tenant's queries).
    pub(crate) fn gate(self: &Arc<Self>, tenant: &str) -> CallGate {
        let tenant_inflight = Arc::clone(self.tenants.lock().entry(tenant.to_owned()).or_default());
        CallGate {
            control: Arc::clone(self),
            tenant: Arc::from(tenant),
            tenant_inflight,
        }
    }

    /// Lifetime admission counters plus current occupancy.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            active_queries: self.active_queries.load(Ordering::Acquire),
            inflight_calls: self.inflight_calls.load(Ordering::Acquire),
            shed_queries: self.shed_queries.load(Ordering::Relaxed),
            shed_calls: self.shed_calls.load(Ordering::Relaxed),
        }
    }
}

impl CallGate {
    /// Charges one web-service call against the global and per-tenant
    /// in-flight budgets, or sheds it with [`CoreError::Admission`].
    pub(crate) fn begin_call(&self, operation: &str) -> CoreResult<CallToken> {
        let policy = *self.control.policy.read();
        if !try_acquire(&self.control.inflight_calls, policy.max_inflight_calls) {
            self.control.shed_calls.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Admission {
                tenant: self.tenant.as_ref().to_owned(),
                reason: format!(
                    "max_inflight_calls ({}) exhausted calling {operation:?}",
                    policy.max_inflight_calls.unwrap_or(0)
                ),
            });
        }
        if !try_acquire(&self.tenant_inflight, policy.per_tenant_inflight_calls) {
            self.control.inflight_calls.fetch_sub(1, Ordering::AcqRel);
            self.control.shed_calls.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Admission {
                tenant: self.tenant.as_ref().to_owned(),
                reason: format!(
                    "per_tenant_inflight_calls ({}) exhausted calling {operation:?}",
                    policy.per_tenant_inflight_calls.unwrap_or(0)
                ),
            });
        }
        Ok(CallToken {
            control: Arc::clone(&self.control),
            tenant_inflight: Arc::clone(&self.tenant_inflight),
        })
    }

    /// The tenant this gate charges.
    pub(crate) fn tenant(&self) -> &str {
        &self.tenant
    }
}

thread_local! {
    /// Skip sink installed by a child query process around each call it
    /// handles: `(owf name, count)` entries accumulated by `eval` under
    /// [`FailureMode::Partial`], shipped to the parent with the
    /// end-of-call message so skips commit exactly when the call's result
    /// rows do (requeue-safe accounting).
    static SKIP_SINK: RefCell<Option<Vec<(String, u64)>>> = const { RefCell::new(None) };
}

/// Installs a fresh, empty skip sink on the calling thread.
pub(crate) fn install_skip_sink() {
    SKIP_SINK.with(|s| *s.borrow_mut() = Some(Vec::new()));
}

/// Removes the sink and returns its accumulated `(owf, count)` entries.
pub(crate) fn take_skip_sink() -> Vec<(String, u64)> {
    SKIP_SINK
        .with(|s| s.borrow_mut().take())
        .unwrap_or_default()
}

/// Number of skips accumulated so far in the active sink (0 without one).
/// Used to detect skips inside one parameter's evaluation, which must
/// suppress memoization of that parameter's (incomplete) row set.
pub(crate) fn skip_sink_len() -> u64 {
    SKIP_SINK.with(|s| {
        s.borrow()
            .as_ref()
            .map_or(0, |v| v.iter().map(|(_, n)| *n).sum())
    })
}

/// Routes one skipped parameter into the active sink. Returns `false`
/// when no sink is installed (coordinator thread) — the caller then
/// counts it directly on the run's collector.
pub(crate) fn note_skip_local(owf: &str) -> bool {
    SKIP_SINK.with(|s| match s.borrow_mut().as_mut() {
        Some(v) => {
            if let Some(entry) = v.iter_mut().find(|(name, _)| name == owf) {
                entry.1 += 1;
            } else {
                v.push((owf.to_owned(), 1));
            }
            true
        }
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_plain_and_matches_legacy_retry() {
        let p = ResiliencePolicy::default();
        assert!(p.is_plain());
        assert_eq!(p.failure_mode, FailureMode::Abort);
        assert_eq!(p.as_retry(), RetryPolicy::default());
        let lifted = ResiliencePolicy::from_retry(RetryPolicy {
            max_attempts: 4,
            backoff_model_secs: 0.25,
        });
        assert_eq!(lifted.max_attempts, 4);
        assert_eq!(lifted.backoff_model_secs, 0.25);
        assert!(lifted.is_plain());
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let p = ResiliencePolicy {
            backoff_model_secs: 1.0,
            backoff_multiplier: 2.0,
            backoff_jitter_frac: 0.5,
            ..Default::default()
        };
        // Roll 0.5 → jitter factor exactly 1.
        assert_eq!(p.backoff_for(1, 0.5), 1.0);
        assert_eq!(p.backoff_for(2, 0.5), 2.0);
        assert_eq!(p.backoff_for(3, 0.5), 4.0);
        // Extremes of the roll span [1-j, 1+j].
        assert!((p.backoff_for(1, 0.0) - 0.5).abs() < 1e-12);
        assert!((p.backoff_for(1, 1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_through_probe() {
        let breakers = Breakers::default();
        let policy = BreakerPolicy {
            failure_threshold: 3,
            cooldown_model_secs: 10.0,
            half_open_probes: 1,
            probe_after_rejections: 0,
        };
        // Two failures: still closed.
        assert_eq!(breakers.on_failure("p", &policy, 0.0), None);
        assert_eq!(breakers.on_failure("p", &policy, 1.0), None);
        assert!(breakers.admit("p", &policy, 1.0).allowed);
        // Third failure trips it.
        assert_eq!(
            breakers.on_failure("p", &policy, 2.0),
            Some(Transition::Opened)
        );
        // Rejected during cooldown.
        assert!(!breakers.admit("p", &policy, 5.0).allowed);
        // Cooldown elapsed: one probe admitted, a second rejected.
        let probe = breakers.admit("p", &policy, 12.5);
        assert!(probe.allowed && probe.went_half_open);
        assert!(!breakers.admit("p", &policy, 12.6).allowed);
        // Probe success closes the breaker.
        assert_eq!(breakers.on_success("p"), Some(Transition::Closed));
        assert!(breakers.admit("p", &policy, 12.7).allowed);
        // Other providers are independent.
        assert!(breakers.admit("q", &policy, 0.0).allowed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let breakers = Breakers::default();
        let policy = BreakerPolicy {
            failure_threshold: 1,
            cooldown_model_secs: 5.0,
            half_open_probes: 1,
            probe_after_rejections: 0,
        };
        assert_eq!(
            breakers.on_failure("p", &policy, 0.0),
            Some(Transition::Opened)
        );
        assert!(breakers.admit("p", &policy, 6.0).allowed);
        // The probe fails: open again, from the failure's own time.
        assert_eq!(
            breakers.on_failure("p", &policy, 6.5),
            Some(Transition::Opened)
        );
        assert!(!breakers.admit("p", &policy, 7.0).allowed);
        assert!(breakers.admit("p", &policy, 12.0).allowed);
    }

    #[test]
    fn frozen_clock_escapes_via_rejection_probes() {
        let breakers = Breakers::default();
        let policy = BreakerPolicy {
            failure_threshold: 1,
            cooldown_model_secs: 30.0,
            half_open_probes: 1,
            probe_after_rejections: 3,
        };
        assert_eq!(
            breakers.on_failure("p", &policy, 5.0),
            Some(Transition::Opened)
        );
        // The model clock freezes at 5.0: the open breaker blocks the
        // only traffic that would advance it. Two rejections, then the
        // count-based escape admits a half-open probe.
        assert!(!breakers.admit("p", &policy, 5.0).allowed);
        assert!(!breakers.admit("p", &policy, 5.0).allowed);
        let probe = breakers.admit("p", &policy, 5.0);
        assert!(probe.allowed && probe.went_half_open);
        assert_eq!(breakers.on_success("p"), Some(Transition::Closed));
        assert!(breakers.admit("p", &policy, 5.0).allowed);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let breakers = Breakers::default();
        let policy = BreakerPolicy {
            failure_threshold: 2,
            ..Default::default()
        };
        assert_eq!(breakers.on_failure("p", &policy, 0.0), None);
        assert_eq!(breakers.on_success("p"), None);
        assert_eq!(breakers.on_failure("p", &policy, 0.0), None);
        assert_eq!(breakers.on_success("p"), None);
        // Never two in a row: never trips.
        assert!(breakers.admit("p", &policy, 0.0).allowed);
    }

    #[test]
    fn collector_aggregates_and_resets() {
        let c = ResilienceCollector::default();
        c.note_retry("a", "a");
        c.note_retry("a", "a#1");
        c.note_retry("b", "b");
        c.note_deadline_exceeded();
        c.note_breaker_open("a", "a#1");
        c.note_breaker_rejection("a", "a#1");
        c.note_skips("GetInfoByState", 3);
        c.note_skips("GetInfoByState", 0); // no-op
        c.note_skips("GetPlacesInside", 1);
        let s = c.snapshot();
        assert_eq!(s.retries, 3);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_rejections, 1);
        assert_eq!(s.skipped_params, 4);
        assert_eq!(
            s.per_provider,
            vec![
                (
                    "a".to_owned(),
                    ProviderResilience {
                        retries: 2,
                        breaker_opens: 1,
                        breaker_rejections: 1,
                    }
                ),
                (
                    "b".to_owned(),
                    ProviderResilience {
                        retries: 1,
                        ..Default::default()
                    }
                ),
            ]
        );
        assert_eq!(
            s.per_replica,
            vec![
                (
                    ("a".to_owned(), "a".to_owned()),
                    ProviderResilience {
                        retries: 1,
                        ..Default::default()
                    }
                ),
                (
                    ("a".to_owned(), "a#1".to_owned()),
                    ProviderResilience {
                        retries: 1,
                        breaker_opens: 1,
                        breaker_rejections: 1,
                    }
                ),
                (
                    ("b".to_owned(), "b".to_owned()),
                    ProviderResilience {
                        retries: 1,
                        ..Default::default()
                    }
                ),
            ]
        );
        assert_eq!(
            s.skipped_by_owf,
            vec![
                ("GetInfoByState".to_owned(), 3),
                ("GetPlacesInside".to_owned(), 1)
            ]
        );
        assert!(!s.is_quiet());
        c.reset();
        assert!(c.snapshot().is_quiet());
    }

    #[test]
    fn admission_defaults_admit_everything() {
        let ac = Arc::new(AdmissionControl::default());
        let g1 = ac.admit_query("a").expect("admit");
        let g2 = ac.admit_query("b").expect("admit");
        let gate = ac.gate("a");
        let t1 = gate.begin_call("Op").expect("call");
        let t2 = gate.begin_call("Op").expect("call");
        assert_eq!(ac.stats().active_queries, 2);
        assert_eq!(ac.stats().inflight_calls, 2);
        drop((t1, t2, g1, g2));
        assert_eq!(ac.stats().active_queries, 0);
        assert_eq!(ac.stats().inflight_calls, 0);
        assert_eq!(ac.stats().shed_queries, 0);
        assert_eq!(ac.stats().shed_calls, 0);
    }

    #[test]
    fn query_quota_sheds_then_recovers() {
        let ac = Arc::new(AdmissionControl::default());
        ac.set_policy(QuotaPolicy {
            max_concurrent_queries: Some(1),
            ..Default::default()
        });
        let guard = ac.admit_query("a").expect("first admitted");
        let err = ac.admit_query("b").expect_err("second shed");
        assert!(matches!(err, CoreError::Admission { ref tenant, .. } if tenant == "b"));
        assert_eq!(ac.stats().shed_queries, 1);
        drop(guard);
        ac.admit_query("b").expect("slot released");
    }

    #[test]
    fn call_budgets_shed_per_tenant_and_globally() {
        let ac = Arc::new(AdmissionControl::default());
        ac.set_policy(QuotaPolicy {
            per_tenant_inflight_calls: Some(1),
            max_inflight_calls: Some(2),
            ..Default::default()
        });
        let a = ac.gate("a");
        let b = ac.gate("b");
        let c = ac.gate("c");
        let ta = a.begin_call("Op").expect("a admitted");
        // Tenant budget: a's second concurrent call sheds.
        assert!(a.begin_call("Op").is_err());
        let tb = b.begin_call("Op").expect("b admitted");
        // Global budget: a third in-flight call sheds even for a fresh
        // tenant, and failing the global check charges nothing.
        assert!(c.begin_call("Op").is_err());
        assert_eq!(ac.stats().inflight_calls, 2);
        assert_eq!(ac.stats().shed_calls, 2);
        drop(tb);
        let tc = c.begin_call("Op").expect("slot released");
        drop(ta);
        assert_eq!(ac.stats().inflight_calls, 1);
        drop(tc);
        assert_eq!(ac.stats().inflight_calls, 0);
        // Two gates for one tenant share the in-flight counter.
        let a2 = ac.gate("a");
        let t = a.begin_call("Op").expect("a idle again");
        assert!(a2.begin_call("Op").is_err());
        drop(t);
        assert_eq!(a.tenant(), "a");
    }

    #[test]
    fn breaker_totals_accumulate_across_busy_periods() {
        let breakers = Breakers::default();
        let policy = BreakerPolicy {
            failure_threshold: 1,
            cooldown_model_secs: 5.0,
            half_open_probes: 1,
            probe_after_rejections: 0,
        };
        breakers.begin_run();
        assert_eq!(
            breakers.on_failure("p", &policy, 0.0),
            Some(Transition::Opened)
        );
        assert!(!breakers.admit("p", &policy, 1.0).allowed);
        assert!(breakers.admit("p", &policy, 6.0).went_half_open);
        assert_eq!(breakers.on_success("p"), Some(Transition::Closed));
        breakers.end_run();
        // Next busy period clears state but keeps totals.
        breakers.begin_run();
        assert!(breakers.admit("p", &policy, 0.0).allowed);
        breakers.end_run();
        assert_eq!(
            breakers.totals(),
            BreakerTotals {
                opens: 1,
                half_opens: 1,
                closes: 1,
                rejections: 1,
            }
        );
        // Overlapping runs share state: the second begin_run does not
        // clear the open breaker.
        breakers.begin_run();
        assert_eq!(
            breakers.on_failure("p", &policy, 0.0),
            Some(Transition::Opened)
        );
        breakers.begin_run();
        assert!(!breakers.admit("p", &policy, 1.0).allowed);
        breakers.end_run();
        breakers.end_run();
    }

    #[test]
    fn skip_sink_routes_and_drains() {
        // No sink: the local route reports false.
        assert!(!note_skip_local("X"));
        install_skip_sink();
        assert!(note_skip_local("X"));
        assert!(note_skip_local("Y"));
        assert!(note_skip_local("X"));
        assert_eq!(skip_sink_len(), 3);
        let drained = take_skip_sink();
        assert_eq!(drained, vec![("X".to_owned(), 2), ("Y".to_owned(), 1)]);
        // Sink gone again.
        assert!(!note_skip_local("X"));
        assert_eq!(skip_sink_len(), 0);
        assert!(take_skip_sink().is_empty());
    }
}
