#![deny(missing_docs)]

//! # wsmed-core
//!
//! The WSMED query processor — the primary contribution of
//! *"Adaptive Parallelization of Queries over Dependent Web Service Calls"*
//! (Sabesan & Risch, ICDE 2009).
//!
//! The pipeline follows the paper's Fig. 5:
//!
//! ```text
//!  SQL ──calculus generator──▶ calculus ──central plan creator──▶ γ-chain
//!      ──parallelizer──▶ sections ──plan function generator──▶ PF1..PFn
//!      ──plan rewriter──▶ FF_APPLYP / AFF_APPLYP plan ──▶ process tree
//! ```
//!
//! * [`central`] builds the naïve central plan: a chain of γ (apply)
//!   operators invoking OWFs and helping functions in dependency order
//!   (Fig. 6/10).
//! * [`parallel`] splits the central plan into sections, wraps each
//!   parallelizable section in a *plan function*, and rewrites the plan
//!   with [`plan::PlanOp::FfApply`] / [`plan::PlanOp::AffApply`] operators
//!   (Fig. 9/13). Plan functions are *shipped* to child query processes as
//!   serialized bytes ([`wire`]), mirroring the paper's code shipping.
//! * [`exec`] interprets plans. Query processes are threads with message
//!   inboxes; `FF_APPLYP` streams parameter tuples to whichever child
//!   finished first; `AFF_APPLYP` starts from a binary process tree and
//!   adapts each subtree locally by monitoring the average time per
//!   incoming result tuple (§V.A).
//! * [`Wsmed`] is the mediator facade: import WSDL → SQL → execute
//!   (central, manually parallel, or adaptive).

pub mod cache;
pub mod catalog;
pub mod central;
pub mod costs;
pub mod error;
pub mod exec;
pub mod materialized;
pub mod obs;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod resilience;
pub mod router;
pub mod stats;
pub mod transport;
pub mod wire;
mod wsmed;

pub use cache::{CacheKey, CachePolicy, CacheStats, CallCache, CallLookup, Flight};
pub use catalog::OwfCatalog;
pub use central::{create_central_plan, create_central_plan_for_order};
pub use costs::{CostModel, CostStage, LevelCost, OpObs, PlanCost, PlannerStats, ProviderProfile};
pub use error::{CoreError, CoreResult};
pub use exec::pool::{PoolPolicy, PoolStats, ProcessPool};
pub use exec::ExecContext;
pub use materialized::run_materialized;
pub use obs::{KindMask, TraceEvent, TraceEventKind, TraceLog, TracePolicy};
pub use parallel::{
    parallel_level_count, parallelize, parallelize_adaptive, parallelize_adaptive_masked,
    parallelize_unprojected, plan_sections, FanoutVector, SectionStage,
};
pub use plan::{
    AdaptDecision, AdaptiveConfig, ArgExpr, PlanFunction, PlanOp, PruneSpec, QueryPlan,
};
pub use planner::{PlanExplanation, PlannerPolicy};
pub use resilience::{
    AdmissionControl, AdmissionStats, BreakerPolicy, BreakerTotals, FailureMode, HedgePolicy,
    ProviderResilience, QueryGuard, QuotaPolicy, ResiliencePolicy, ResilienceStats,
};
pub use router::{GroupView, ReplicaView, RouterPolicy, RouterStats};
pub use stats::{AdaptEvent, ExecutionReport, LevelStats, TreeNode, TreeRegistry, TreeSnapshot};
pub use transport::{
    BatchPolicy, DispatchPolicy, MockTransport, RetryPolicy, SimTransport, WsTransport,
};
pub use wsmed::{paper, ArrivalOutcome, QuerySession, Wsmed, DEFAULT_TENANT};
