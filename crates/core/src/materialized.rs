//! A WSQ/DSQ-style baseline: asynchronous *materialized* dependent joins.
//!
//! The paper's related work (§VI) contrasts WSMED with WSQ/DSQ
//! [Goldman & Widom, SIGMOD 2000], which "handles high-latency calls …
//! by launching asynchronous materialized dependent joins later joined in
//! the execution plan": for each level, issue **all** calls of that level
//! concurrently (no fanout bound), materialize the full intermediate
//! result, then move to the next level. WSMED instead streams parameter
//! tuples through a *bounded* process tree.
//!
//! This module implements that baseline faithfully enough to compare:
//!
//! * level-at-a-time execution with a barrier between levels (no
//!   cross-level pipelining);
//! * unbounded intra-level concurrency (one thread per pending call);
//! * full materialization of each level's output.
//!
//! Against saturating providers the unbounded burst drives the congestion
//! model far past capacity, which is exactly why the paper's bounded,
//! near-balanced trees win — the `wsq_baseline` bench harness measures it.

use std::sync::Arc;

use wsmed_store::Tuple;

use crate::exec::ExecContext;
use crate::plan::{ArgExpr, PlanOp, QueryPlan};
use crate::{CoreError, CoreResult};

/// Executes a **central** plan level-at-a-time with unbounded asynchronous
/// calls per level, WSQ/DSQ style. Returns the same rows as
/// [`ExecContext::run_plan`] on the central plan.
pub fn run_materialized(ctx: &Arc<ExecContext>, plan: &QueryPlan) -> CoreResult<Vec<Tuple>> {
    let cache = ctx.call_cache();
    if let Some(cache) = &cache {
        cache.begin_run();
    }
    let result = run_materialized_inner(ctx, plan);
    if let Some(cache) = &cache {
        cache.end_run();
    }
    result
}

fn run_materialized_inner(ctx: &Arc<ExecContext>, plan: &QueryPlan) -> CoreResult<Vec<Tuple>> {
    // Decompose the chain bottom-up.
    let mut stages: Vec<&PlanOp> = Vec::new();
    let mut op = &plan.root;
    loop {
        stages.push(op);
        match op.input() {
            Some(input) => op = input,
            None => break,
        }
    }
    stages.reverse();

    // The stream is fully materialized between stages.
    let mut rows: Vec<Tuple> = vec![Tuple::empty()];
    for stage in stages {
        rows = match stage {
            PlanOp::Unit => rows,
            PlanOp::Param { .. } => {
                return Err(CoreError::InvalidPlan(
                    "materialized execution takes a central plan, not a plan function".into(),
                ))
            }
            PlanOp::FfApply { .. } | PlanOp::AffApply { .. } => {
                return Err(CoreError::InvalidPlan(
                    "materialized execution takes a central plan, not a parallel one".into(),
                ))
            }
            PlanOp::ApplyOwf { owf, args, .. } => {
                // The WSQ/DSQ step: all calls of this level at once.
                let owf = ctx.owfs().get(owf)?.clone();
                let handles: Vec<_> = rows
                    .into_iter()
                    .map(|row| {
                        let ctx = Arc::clone(ctx);
                        let owf = owf.clone();
                        let values = resolve_args(args, &row);
                        std::thread::spawn(move || -> CoreResult<Vec<Tuple>> {
                            let response = ctx.call_with_retry(&owf, &values)?;
                            Ok(owf
                                .flatten(&response)?
                                .into_iter()
                                .map(|produced| row.concat(&produced))
                                .collect())
                        })
                    })
                    .collect();
                let mut out = Vec::new();
                let mut first_error = None;
                for handle in handles {
                    match handle.join() {
                        Ok(Ok(mut produced)) => out.append(&mut produced),
                        Ok(Err(e)) => {
                            first_error.get_or_insert(e);
                        }
                        Err(_) => {
                            first_error.get_or_insert(CoreError::ProcessFailure(
                                "async call thread panicked".into(),
                            ));
                        }
                    }
                }
                if let Some(e) = first_error {
                    return Err(e);
                }
                out
            }
            PlanOp::ApplyFunction { function, args, .. } => {
                let mut out = Vec::new();
                for row in rows {
                    let values = resolve_args(args, &row);
                    for produced in ctx.functions().apply(function, &values)? {
                        out.push(row.concat(&produced));
                    }
                }
                out
            }
            PlanOp::Extend { exprs, .. } => rows
                .into_iter()
                .map(|row| {
                    let extra = Tuple::new(resolve_args(exprs, &row));
                    row.concat(&extra)
                })
                .collect(),
            PlanOp::Project { columns, .. } => {
                rows.into_iter().map(|row| row.project(columns)).collect()
            }
            PlanOp::Sort { keys, .. } => {
                let mut rows = rows;
                rows.sort_by(|a, b| {
                    for &(col, desc) in keys.iter() {
                        let ord = a.get(col).total_cmp(b.get(col));
                        if ord != std::cmp::Ordering::Equal {
                            return if desc { ord.reverse() } else { ord };
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                rows
            }
            PlanOp::Distinct { .. } => {
                let mut rows = rows;
                rows.sort_by(|a, b| a.total_cmp(b));
                rows.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
                rows
            }
            PlanOp::Limit { count, .. } => {
                let mut rows = rows;
                rows.truncate(*count);
                rows
            }
            PlanOp::Count { .. } => {
                vec![Tuple::new(vec![wsmed_store::Value::Int(rows.len() as i64)])]
            }
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => crate::exec::group_rows(*key_count, aggs, rows)?,
        };
    }
    Ok(rows)
}

fn resolve_args(args: &[ArgExpr], row: &Tuple) -> Vec<wsmed_store::Value> {
    args.iter()
        .map(|a| match a {
            ArgExpr::Col(i) => row.get(*i).clone(),
            ArgExpr::Const(v) => v.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{MockTransport, WsTransport};
    use crate::OwfCatalog;
    use wsmed_store::{canonicalize, Record, SqlType, Value};
    use wsmed_wsdl::{OperationDef, TypeNode, WsdlDocument};

    fn echo_catalog() -> Arc<OwfCatalog> {
        let mut cat = OwfCatalog::new();
        let doc = WsdlDocument {
            service_name: "Mock".into(),
            target_namespace: "urn:mock".into(),
            operations: vec![OperationDef {
                name: "Echo".into(),
                inputs: vec![("x".into(), SqlType::Charstring)],
                output: TypeNode::Record {
                    name: "EchoResponse".into(),
                    fields: vec![TypeNode::Repeated {
                        element: Box::new(TypeNode::Scalar {
                            name: "y".into(),
                            ty: SqlType::Charstring,
                        }),
                    }],
                },
                doc: None,
            }],
        };
        cat.import(&doc, "urn:mock.wsdl").unwrap();
        Arc::new(cat)
    }

    fn ctx() -> Arc<ExecContext> {
        let transport = MockTransport::new(|_, args| {
            let arg = args[0].as_str().map_err(CoreError::Store)?;
            Ok(Value::Record(
                Record::new().with(
                    "y",
                    Value::Sequence(
                        arg.split('|')
                            .filter(|s| !s.is_empty())
                            .map(Value::str)
                            .collect(),
                    ),
                ),
            ))
        });
        ExecContext::new(
            transport as Arc<dyn WsTransport>,
            echo_catalog(),
            wsmed_netsim::SimConfig::default(),
        )
    }

    fn central() -> QueryPlan {
        QueryPlan {
            root: PlanOp::Project {
                columns: vec![2],
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "Echo".into(),
                    args: vec![ArgExpr::Col(1)],
                    output_arity: 1,
                    input: Box::new(PlanOp::ApplyOwf {
                        owf: "Echo".into(),
                        args: vec![ArgExpr::Col(0)],
                        output_arity: 1,
                        input: Box::new(PlanOp::Extend {
                            exprs: vec![ArgExpr::Const(Value::str("a|b|c"))],
                            input: Box::new(PlanOp::Unit),
                        }),
                    }),
                }),
            },
            column_names: vec!["y".into()],
        }
    }

    #[test]
    fn materialized_matches_streamed_central() {
        let ctx = ctx();
        let plan = central();
        let streamed = ctx.run_plan(&plan).unwrap();
        let materialized = run_materialized(&ctx, &plan).unwrap();
        assert_eq!(canonicalize(materialized), canonicalize(streamed.rows));
    }

    #[test]
    fn rejects_parallel_plans() {
        let ctx = ctx();
        let plan = central();
        let parallel = crate::parallel::parallelize(&plan, &vec![2, 2]).unwrap();
        assert!(matches!(
            run_materialized(&ctx, &parallel),
            Err(CoreError::InvalidPlan(_))
        ));
    }

    #[test]
    fn propagates_call_errors() {
        let transport = MockTransport::new(|_, args| {
            let arg = args[0].as_str().map_err(CoreError::Store)?;
            if arg == "b" {
                return Err(CoreError::ProcessFailure("boom".into()));
            }
            Ok(Value::Record(
                Record::new().with(
                    "y",
                    Value::Sequence(
                        arg.split('|')
                            .filter(|s| !s.is_empty())
                            .map(Value::str)
                            .collect(),
                    ),
                ),
            ))
        });
        let ctx = ExecContext::new(
            transport as Arc<dyn WsTransport>,
            echo_catalog(),
            wsmed_netsim::SimConfig::default(),
        );
        assert!(run_materialized(&ctx, &central()).is_err());
    }
}
