//! Execution reports: results plus the process tree and cost counters.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wsmed_store::Tuple;

use crate::cache::CacheStats;
use crate::exec::pool::PoolStats;
use crate::resilience::ResilienceStats;
use crate::router::RouterStats;

/// Live registry of query processes, maintained by the runtime so the
/// process tree (paper Fig. 4, 14, 15, 18–20) can be observed at any time.
#[derive(Debug, Default)]
pub struct TreeRegistry {
    inner: Mutex<TreeInner>,
}

#[derive(Debug, Default)]
struct TreeInner {
    nodes: HashMap<u64, NodeInfo>,
    adds: u64,
    drops: u64,
    peak_alive: usize,
    events: Vec<AdaptEvent>,
}

/// One `AFF_APPLYP` monitoring-cycle decision, recorded in execution order
/// — the event-level view of the paper's Fig. 18–20 lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptEvent {
    /// The adapting (parent) query process.
    pub process: u64,
    /// Its tree level (0 = coordinator).
    pub level: usize,
    /// Average seconds per incoming result tuple in the finished cycle.
    pub per_tuple_secs: f64,
    /// Children alive when the decision was made.
    pub alive: usize,
    /// What the §V.A rule decided (`add:N`, `drop`, `stop`, `converged`).
    pub decision: String,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    parent: Option<u64>,
    level: usize,
    pf_name: String,
    alive: bool,
    calls: u64,
    msgs_down: u64,
    msgs_up: u64,
    cache_short_circuits: u64,
    blocked_send: Duration,
}

impl TreeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(TreeRegistry::default())
    }

    /// Registers a new query process. The coordinator is id 0, level 0,
    /// parent `None`.
    pub fn register(&self, id: u64, parent: Option<u64>, level: usize, pf_name: &str) {
        let mut inner = self.inner.lock();
        inner.nodes.insert(
            id,
            NodeInfo {
                parent,
                level,
                pf_name: pf_name.to_owned(),
                alive: true,
                calls: 0,
                msgs_down: 0,
                msgs_up: 0,
                cache_short_circuits: 0,
                blocked_send: Duration::ZERO,
            },
        );
        if parent.is_some() {
            inner.adds += 1;
        }
        let alive = inner.nodes.values().filter(|n| n.alive).count();
        inner.peak_alive = inner.peak_alive.max(alive);
    }

    /// Counts `n` plan-function calls dispatched to a process (for the
    /// load-balance view: first-finished dispatch shifts work toward fast
    /// children, static partitioning spreads it evenly). With batching one
    /// message frame can carry several calls.
    pub fn note_calls(&self, id: u64, n: u64) {
        if let Some(node) = self.inner.lock().nodes.get_mut(&id) {
            node.calls += n;
        }
    }

    /// Counts one message frame sent from a parent down to process `id`
    /// (plan installation or a parameter batch).
    pub fn note_msg_down(&self, id: u64) {
        if let Some(node) = self.inner.lock().nodes.get_mut(&id) {
            node.msgs_down += 1;
        }
    }

    /// Counts one message frame sent from process `id` up to its parent
    /// (installation ack, result batch, or end-of-call).
    pub fn note_msg_up(&self, id: u64) {
        if let Some(node) = self.inner.lock().nodes.get_mut(&id) {
            node.msgs_up += 1;
        }
    }

    /// Counts `n` parameter tuples process `id` answered from the call
    /// cache's plan-function memo instead of shipping them to a child
    /// (dedup-aware dispatch).
    pub fn note_short_circuits(&self, id: u64, n: u64) {
        if let Some(node) = self.inner.lock().nodes.get_mut(&id) {
            node.cache_short_circuits += n;
        }
    }

    /// Accumulates wall time an endpoint of the `id` mailbox spent blocked
    /// in `send` because the bounded channel was full — backpressure made
    /// visible. Both directions are attributed to the child endpoint,
    /// matching `msgs_down`/`msgs_up`.
    pub fn note_blocked_send(&self, id: u64, waited: Duration) {
        if let Some(node) = self.inner.lock().nodes.get_mut(&id) {
            node.blocked_send += waited;
        }
    }

    /// Records an adaptation decision (called by `AFF_APPLYP` at each
    /// monitoring-cycle boundary).
    pub fn record_adapt_event(&self, event: AdaptEvent) {
        let mut inner = self.inner.lock();
        // Bound the log; queries make thousands of cycles at most.
        if inner.events.len() < 100_000 {
            inner.events.push(event);
        }
    }

    /// Marks a process (and implicitly its subtree, whose nodes deregister
    /// themselves) as terminated.
    pub fn deregister(&self, id: u64, dropped_by_adaptation: bool) {
        let mut inner = self.inner.lock();
        if let Some(node) = inner.nodes.get_mut(&id) {
            node.alive = false;
        }
        if dropped_by_adaptation {
            inner.drops += 1;
        }
    }

    /// Takes a snapshot of the current tree.
    pub fn snapshot(&self) -> TreeSnapshot {
        let inner = self.inner.lock();
        let mut levels: HashMap<usize, (usize, usize)> = HashMap::new(); // level -> (alive, total)
        let mut children_of: HashMap<u64, usize> = HashMap::new();
        for node in inner.nodes.values() {
            let entry = levels.entry(node.level).or_default();
            entry.1 += 1;
            if node.alive {
                entry.0 += 1;
                if let Some(parent) = node.parent {
                    *children_of.entry(parent).or_default() += 1;
                }
            }
        }
        let max_level = levels.keys().copied().max().unwrap_or(0);
        let mut per_level = Vec::with_capacity(max_level + 1);
        for level in 0..=max_level {
            let (alive, total) = levels.get(&level).copied().unwrap_or((0, 0));
            // Average fanout of alive level-`level` nodes.
            let parents: Vec<u64> = inner
                .nodes
                .iter()
                .filter(|(_, n)| n.level == level && n.alive)
                .map(|(&id, _)| id)
                .collect();
            let avg_fanout = if parents.is_empty() {
                0.0
            } else {
                parents
                    .iter()
                    .map(|id| children_of.get(id).copied().unwrap_or(0))
                    .sum::<usize>() as f64
                    / parents.len() as f64
            };
            let pf_name = inner
                .nodes
                .values()
                .find(|n| n.level == level)
                .map(|n| n.pf_name.clone())
                .unwrap_or_default();
            per_level.push(LevelStats {
                level,
                alive,
                ever: total,
                avg_fanout,
                pf_name,
            });
        }
        let mut nodes: Vec<TreeNode> = inner
            .nodes
            .iter()
            .map(|(&id, n)| TreeNode {
                id,
                parent: n.parent,
                level: n.level,
                pf_name: n.pf_name.clone(),
                alive: n.alive,
                calls: n.calls,
                msgs_down: n.msgs_down,
                msgs_up: n.msgs_up,
                cache_short_circuits: n.cache_short_circuits,
                blocked_send: n.blocked_send,
            })
            .collect();
        nodes.sort_by_key(|n| (n.level, n.id));
        TreeSnapshot {
            levels: per_level,
            nodes,
            adds: inner.adds,
            drops: inner.drops,
            peak_alive: inner.peak_alive,
            adapt_events: inner.events.clone(),
        }
    }
}

/// One node of the process tree, as captured in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Process id (coordinator = 0).
    pub id: u64,
    /// Parent process id, if any.
    pub parent: Option<u64>,
    /// Tree level.
    pub level: usize,
    /// Plan function the node executes.
    pub pf_name: String,
    /// Whether the process is still alive.
    pub alive: bool,
    /// Plan-function calls dispatched to this process.
    pub calls: u64,
    /// Message frames this process received from its parent (plan
    /// installation and parameter batches).
    pub msgs_down: u64,
    /// Message frames this process sent to its parent (installation ack,
    /// result batches, end-of-call notices).
    pub msgs_up: u64,
    /// Parameter tuples this process answered from the call cache's
    /// plan-function memo instead of shipping them down to a child
    /// (dedup-aware dispatch; joins `msgs_down`/`msgs_up` in the
    /// load-balance view).
    pub cache_short_circuits: u64,
    /// Wall time spent blocked in `send` on this node's mailboxes because
    /// a bounded channel was full (both directions, attributed to the
    /// child endpoint like `msgs_down`/`msgs_up`). Zero means the mailbox
    /// capacity never throttled this edge.
    pub blocked_send: Duration,
}

/// Statistics for one level of the process tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Tree level (0 = coordinator).
    pub level: usize,
    /// Processes currently alive on this level.
    pub alive: usize,
    /// Processes ever created on this level.
    pub ever: usize,
    /// Average number of children per alive process on this level (the
    /// paper reports these as "average fanouts" in Fig. 21).
    pub avg_fanout: f64,
    /// Plan function executed at this level (`coordinator` for level 0).
    pub pf_name: String,
}

/// A point-in-time view of the process tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeSnapshot {
    /// Per-level statistics, level 0 first.
    pub levels: Vec<LevelStats>,
    /// All processes (alive and dead), sorted by level then id.
    pub nodes: Vec<TreeNode>,
    /// Child processes started (including adaptive add stages).
    pub adds: u64,
    /// Child subtrees dropped by adaptive drop stages.
    pub drops: u64,
    /// Peak number of simultaneously alive processes.
    pub peak_alive: usize,
    /// `AFF_APPLYP` monitoring decisions, in the order they were made.
    pub adapt_events: Vec<AdaptEvent>,
}

impl TreeSnapshot {
    /// Total processes alive.
    pub fn total_alive(&self) -> usize {
        self.levels.iter().map(|l| l.alive).sum()
    }

    /// Total parent↔child message frames exchanged, in both directions.
    /// Each frame counts once, attributed to the child endpoint.
    pub fn total_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.msgs_down + n.msgs_up).sum()
    }

    /// Total parameter tuples answered parent-side by dedup-aware
    /// dispatch, across all processes.
    pub fn total_short_circuits(&self) -> u64 {
        self.nodes.iter().map(|n| n.cache_short_circuits).sum()
    }

    /// Total wall time any process spent blocked sending into a full
    /// bounded mailbox, across all edges of the tree.
    pub fn total_blocked_send(&self) -> Duration {
        self.nodes.iter().map(|n| n.blocked_send).sum()
    }

    /// Average fanout at a level, if the level exists.
    pub fn fanout_at(&self, level: usize) -> Option<f64> {
        self.levels.get(level).map(|l| l.avg_fanout)
    }

    /// Renders the tree as indented ASCII, one line per process — the
    /// textual Fig. 4:
    ///
    /// ```text
    /// q0 coordinator
    ///   q1 PF1
    ///     q3 PF2
    ///     q4 PF2
    ///   q2 PF1 (dropped)
    /// ```
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_children(None, 0, &mut out);
        out
    }

    fn render_children(&self, parent: Option<u64>, depth: usize, out: &mut String) {
        for node in self.nodes.iter().filter(|n| n.parent == parent) {
            out.push_str(&"  ".repeat(depth));
            let calls = if node.calls > 0 {
                format!(" [{} calls]", node.calls)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "q{} {}{}{}\n",
                node.id,
                node.pf_name,
                calls,
                if node.alive { "" } else { " (dropped)" }
            ));
            self.render_children(Some(node.id), depth + 1, out);
        }
    }

    /// Renders a compact description like `1-5-20 (fanouts 5.0/4.0)`.
    pub fn describe(&self) -> String {
        let counts: Vec<String> = self.levels.iter().map(|l| l.alive.to_string()).collect();
        let fanouts: Vec<String> = self
            .levels
            .iter()
            .take(self.levels.len().saturating_sub(1))
            .map(|l| format!("{:.1}", l.avg_fanout))
            .collect();
        format!("{} (fanouts {})", counts.join("-"), fanouts.join("/"))
    }
}

/// The outcome of executing a query plan.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Result tuples, in arrival order.
    pub rows: Vec<Tuple>,
    /// Output column names.
    pub column_names: Vec<String>,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// `wall / time_scale` — the estimated model-seconds the execution
    /// represents (`None` when the time scale is 0).
    pub model_seconds: Option<f64>,
    /// Web service calls made during execution (across all providers).
    pub ws_calls: u64,
    /// Request plus response payload bytes.
    pub ws_bytes: u64,
    /// Bytes shipped between query processes: plan functions, parameter
    /// tuples and result tuples (the client-side messaging volume the
    /// parameter-projection optimization reduces).
    pub shipped_bytes: u64,
    /// Parent↔child message frames exchanged between query processes
    /// during execution (plan installs, parameter batches, result batches,
    /// end-of-call notices). Batching exists to shrink this number.
    pub messages: u64,
    /// Per-run call-cache counters: hits, misses, single-flight dedup
    /// waits, evictions and dedup-aware dispatch short-circuits. All zero
    /// when caching is disabled; `hits + misses + dedup_waits` is the
    /// call-lookup total, so the hit rate is computable per run.
    pub cache: CacheStats,
    /// Per-run process-pool counters: warm acquires, cold spawns, modeled
    /// startup seconds saved and evictions. All zero when no pool is
    /// installed (an installed-but-disabled pool still counts cold
    /// spawns); `cold_spawns` is exactly the number of times the modeled
    /// `process_startup` cost was charged this run.
    pub pool: PoolStats,
    /// Per-run resilience counters: retries, deadline timeouts, hedges,
    /// circuit-breaker transitions/rejections and skipped parameters
    /// (partial failure mode). All zero — [`ResilienceStats::is_quiet`] —
    /// under the default non-resilient policy.
    pub resilience: ResilienceStats,
    /// Per-run client-side routing counters: route decisions, breaker
    /// failovers, hedge reroutes and membership events, plus per-(group,
    /// replica) decision counts. All zero — [`RouterStats::is_quiet`] —
    /// when no router is installed (the default).
    pub router: RouterStats,
    /// Parameter tuples dropped parent-side by semi-join pruning
    /// ([`crate::plan::PruneSpec`]) — dependent calls that were never
    /// issued because the parameter was learned to evaluate empty. Zero
    /// under the default heuristic policy (no prune annotations).
    pub pruned_params: u64,
    /// Time from run start until the coordinator received its first result
    /// tuple from a child process — the streaming latency of the parallel
    /// plan. `None` for central plans (no child processes).
    pub first_row_wall: Option<Duration>,
    /// Final process tree.
    pub tree: TreeSnapshot,
    /// The run's structured trace, when a [`crate::obs::TracePolicy`] with
    /// `enabled == true` was installed; `None` otherwise (tracing off is
    /// the default and costs one atomic load per hook site).
    pub trace: Option<std::sync::Arc<crate::obs::TraceLog>>,
}

impl ExecutionReport {
    /// Result cardinality.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_snapshot_levels() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        reg.register(1, Some(0), 1, "PF1");
        reg.register(2, Some(0), 1, "PF1");
        reg.register(3, Some(1), 2, "PF2");
        let snap = reg.snapshot();
        assert_eq!(snap.levels.len(), 3);
        assert_eq!(snap.levels[0].alive, 1);
        assert_eq!(snap.levels[1].alive, 2);
        assert_eq!(snap.levels[2].alive, 1);
        assert_eq!(snap.fanout_at(0), Some(2.0));
        assert_eq!(snap.fanout_at(1), Some(0.5));
        assert_eq!(snap.adds, 3);
        assert_eq!(snap.total_alive(), 4);
        assert_eq!(snap.peak_alive, 4);
    }

    #[test]
    fn deregister_updates_alive_and_drops() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        reg.register(1, Some(0), 1, "PF1");
        reg.register(2, Some(0), 1, "PF1");
        reg.deregister(2, true);
        let snap = reg.snapshot();
        assert_eq!(snap.levels[1].alive, 1);
        assert_eq!(snap.levels[1].ever, 2);
        assert_eq!(snap.drops, 1);
        assert_eq!(snap.fanout_at(0), Some(1.0));
    }

    #[test]
    fn describe_is_compact() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        for i in 1..=2 {
            reg.register(i, Some(0), 1, "PF1");
        }
        for i in 3..=8 {
            reg.register(i, Some(1 + (i % 2)), 2, "PF2");
        }
        let s = reg.snapshot().describe();
        assert_eq!(s, "1-2-6 (fanouts 2.0/3.0)");
    }

    #[test]
    fn render_ascii_shows_hierarchy_and_drops() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        reg.register(1, Some(0), 1, "PF1");
        reg.register(2, Some(0), 1, "PF1");
        reg.register(3, Some(1), 2, "PF2");
        reg.deregister(2, true);
        let text = reg.snapshot().render_ascii();
        let expect = "q0 coordinator\n  q1 PF1\n    q3 PF2\n  q2 PF1 (dropped)\n";
        assert_eq!(text, expect);
    }

    #[test]
    fn message_counters_accumulate_per_node() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        reg.register(1, Some(0), 1, "PF1");
        reg.register(2, Some(0), 1, "PF1");
        reg.note_msg_down(1);
        reg.note_msg_down(1);
        reg.note_msg_up(1);
        reg.note_msg_up(2);
        reg.note_calls(1, 3);
        let snap = reg.snapshot();
        let q1 = snap.nodes.iter().find(|n| n.id == 1).unwrap();
        assert_eq!((q1.msgs_down, q1.msgs_up, q1.calls), (2, 1, 3));
        assert_eq!(snap.total_messages(), 4);
    }

    #[test]
    fn blocked_send_accumulates_per_node() {
        let reg = TreeRegistry::new();
        reg.register(0, None, 0, "coordinator");
        reg.register(1, Some(0), 1, "PF1");
        reg.note_blocked_send(1, Duration::from_millis(3));
        reg.note_blocked_send(1, Duration::from_millis(4));
        reg.note_blocked_send(99, Duration::from_millis(9)); // unknown id: ignored
        let snap = reg.snapshot();
        let q1 = snap.nodes.iter().find(|n| n.id == 1).unwrap();
        assert_eq!(q1.blocked_send, Duration::from_millis(7));
        assert_eq!(snap.total_blocked_send(), Duration::from_millis(7));
    }

    #[test]
    fn empty_registry_snapshot() {
        let reg = TreeRegistry::new();
        let snap = reg.snapshot();
        assert_eq!(snap.total_alive(), 0);
        assert_eq!(snap.adds, 0);
    }
}
