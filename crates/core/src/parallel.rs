//! The parallelizer (paper §IV): central plan → parallel plan.
//!
//! 1. **Section splitting.** The central γ-chain is split into sections,
//!    one per *parallelizable* OWF — an OWF call whose arguments depend on
//!    upstream columns (OWFs without input parameters, like `GetAllStates`,
//!    cannot be partitioned over a parameter stream and stay in the
//!    coordinator). Each section contains its OWF plus the local operators
//!    that follow it (e.g. `GetPlacesWithin` + `concat`, Fig. 7; or
//!    `GetPlacesInside` + `equal`, Fig. 12).
//! 2. **Plan function generation.** Each section becomes a plan function
//!    `PFk(param) -> stream` whose body runs the section's operators over
//!    the incoming parameter tuple.
//! 3. **Plan rewriting.** Sections are nested: each plan function ends with
//!    an `FF_APPLYP` (or `AFF_APPLYP`) that ships the *next* section's plan
//!    function to its own children — producing the multi-level process
//!    tree of Fig. 4 rather than a flat star.
//!
//! A fanout of `0` for a level merges that section into the previous one —
//! the paper's *flat tree* (`{fo1, 0}` in Fig. 14 combines both OWFs into
//! one plan function at a single level).

use crate::plan::{AdaptiveConfig, ArgExpr, PlanFunction, PlanOp, QueryPlan};
use crate::{CoreError, CoreResult};

/// Fanouts per process-tree level: `vec![5, 4]` is the paper's `{5,4}`.
pub type FanoutVector = Vec<usize>;

/// How the rewrite parallelizes each level.
#[derive(Debug, Clone)]
enum Mode {
    /// `FF_APPLYP` with explicit fanouts.
    Fixed(FanoutVector),
    /// `AFF_APPLYP` everywhere with one shared config; the optional mask
    /// merges sections into their predecessors (the AFF analogue of a
    /// `0` fanout entry).
    Adaptive(AdaptiveConfig, Option<Vec<bool>>),
}

/// Number of parallelizable sections (= required fanout-vector length) in
/// a central plan.
pub fn parallel_level_count(plan: &QueryPlan) -> usize {
    let (_, sections, _) = split_sections(&plan.root);
    sections.len()
}

/// Rewrites a central plan with `FF_APPLYP` operators using explicit
/// fanouts (paper Fig. 9 / Fig. 13).
///
/// `fanouts.len()` must equal the number of parallelizable sections; an
/// entry of `0` merges that section into the previous level (flat tree).
///
/// Parameter tuples are projected to the columns downstream sections
/// actually consume, matching the paper's plan-function signatures
/// (`PF1(Charstring st1)` ships one string, not the whole prefix tuple).
pub fn parallelize(plan: &QueryPlan, fanouts: &FanoutVector) -> CoreResult<QueryPlan> {
    rewrite(plan, Mode::Fixed(fanouts.clone()), true)
}

/// [`parallelize`] without the parameter-projection optimization: plan
/// functions receive (and results carry) the full prefix tuple. Exists for
/// the shipping-cost ablation; results are identical, messages are fatter.
pub fn parallelize_unprojected(plan: &QueryPlan, fanouts: &FanoutVector) -> CoreResult<QueryPlan> {
    rewrite(plan, Mode::Fixed(fanouts.clone()), false)
}

/// Rewrites a central plan with `AFF_APPLYP` operators (paper §V.A): every
/// level starts as a binary tree and adapts locally.
pub fn parallelize_adaptive(plan: &QueryPlan, config: &AdaptiveConfig) -> CoreResult<QueryPlan> {
    rewrite(plan, Mode::Adaptive(config.clone(), None), true)
}

/// [`parallelize_adaptive`] with an explicit merge mask: `mask[i] == true`
/// folds section `i` into its predecessor's plan function, so the merged
/// pair runs at a single adaptive level — the `AFF_APPLYP` analogue of a
/// `0` entry in a fixed fanout vector. `mask.len()` must equal the number
/// of parallelizable sections, and `mask[0]` must be `false`.
pub fn parallelize_adaptive_masked(
    plan: &QueryPlan,
    config: &AdaptiveConfig,
    mask: &[bool],
) -> CoreResult<QueryPlan> {
    rewrite(
        plan,
        Mode::Adaptive(config.clone(), Some(mask.to_vec())),
        true,
    )
}

/// One γ-operator of a section (or of the coordinator prefix), summarized
/// for the cost model's cardinality walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStage {
    /// A web service call, by OWF name.
    Owf(String),
    /// A local helping function, by name.
    Function(String),
}

/// The parallel structure the rewriter would give `plan`, as
/// `(coordinator stages, per-section stages)` — section `i` becomes
/// process-tree level `i + 1`. Blocking tail operators (final projection,
/// `ORDER BY`, …) are coordinator-side and carry no per-tuple call cost,
/// so they are omitted.
pub fn plan_sections(plan: &QueryPlan) -> (Vec<SectionStage>, Vec<Vec<SectionStage>>) {
    let (coordinator, sections, _tail) = split_sections(&plan.root);
    let summarize = |stages: &[Stage]| -> Vec<SectionStage> {
        stages
            .iter()
            .filter_map(|stage| match stage {
                PlanOp::ApplyOwf { owf, .. } => Some(SectionStage::Owf(owf.clone())),
                PlanOp::ApplyFunction { function, .. } => {
                    Some(SectionStage::Function(function.clone()))
                }
                _ => None,
            })
            .collect()
    };
    (
        summarize(&coordinator),
        sections.iter().map(|s| summarize(s)).collect(),
    )
}

fn rewrite(plan: &QueryPlan, mode: Mode, project_parameters: bool) -> CoreResult<QueryPlan> {
    let (coordinator_ops, mut sections, tail_ops) = split_sections(&plan.root);

    if sections.is_empty() {
        return Err(CoreError::InvalidPlan(
            "plan has no parallelizable web service calls \
             (every OWF lacks stream-dependent inputs)"
                .into(),
        ));
    }

    // ---- apply fanout vector: validate and merge zero-fanout levels -------
    let fanouts: Vec<usize> = match &mode {
        Mode::Fixed(fanouts) => {
            if fanouts.len() != sections.len() {
                return Err(CoreError::InvalidPlan(format!(
                    "fanout vector has {} entries but the plan has {} parallelizable \
                     sections",
                    fanouts.len(),
                    sections.len()
                )));
            }
            if fanouts[0] == 0 {
                return Err(CoreError::InvalidPlan(
                    "the first fanout cannot be 0 (there is no previous level to merge \
                     into)"
                        .into(),
                ));
            }
            // Merge sections whose fanout is 0 into their predecessor,
            // right to left so indexes stay valid.
            let mut kept = Vec::with_capacity(fanouts.len());
            for (i, &fo) in fanouts.iter().enumerate() {
                if fo == 0 {
                    let merged = sections.remove(kept.len());
                    sections[kept.len() - 1].extend(merged);
                } else {
                    let _ = i;
                    kept.push(fo);
                }
            }
            kept
        }
        Mode::Adaptive(_, mask) => {
            if let Some(mask) = mask {
                if mask.len() != sections.len() {
                    return Err(CoreError::InvalidPlan(format!(
                        "merge mask has {} entries but the plan has {} parallelizable \
                         sections",
                        mask.len(),
                        sections.len()
                    )));
                }
                if mask.first() == Some(&true) {
                    return Err(CoreError::InvalidPlan(
                        "the first section cannot merge (there is no previous level)".into(),
                    ));
                }
                // Same right-to-left folding as a 0 fanout entry.
                let mut kept = 0usize;
                for &merge in mask {
                    if merge {
                        let merged = sections.remove(kept);
                        sections[kept - 1].extend(merged);
                    } else {
                        kept += 1;
                    }
                }
            }
            vec![0; sections.len()] // unused placeholders
        }
    };

    // ---- compute the arity entering each section ---------------------------
    let mut arity = chain_arity(0, &coordinator_ops);
    let mut entry_arities = Vec::with_capacity(sections.len());
    for section in &sections {
        entry_arities.push(arity);
        arity = chain_arity(arity, section);
    }
    let final_arity = arity;

    // ---- plan the per-level parameter projections --------------------------
    // `keep[i]` is the (sorted) set of central-plan columns that section i
    // and everything after it still reads, restricted to columns that exist
    // at the boundary — the parameter tuple of PF_{i+1}. Without the
    // optimization, every existing column is kept.
    let tail_refs = stage_refs_of_all(&tail_ops);
    let mut needed_after: Vec<std::collections::BTreeSet<usize>> =
        vec![tail_refs; sections.len() + 1];
    for i in (0..sections.len()).rev() {
        let mut set = needed_after[i + 1].clone();
        set.extend(stage_refs_of_all(&sections[i]));
        needed_after[i] = set;
    }
    let keep: Vec<Vec<usize>> = (0..sections.len())
        .map(|i| {
            if project_parameters {
                needed_after[i]
                    .iter()
                    .copied()
                    .filter(|&c| c < entry_arities[i])
                    .collect()
            } else {
                (0..entry_arities[i]).collect()
            }
        })
        .collect();

    // ---- remap sections and tail into the projected coordinate space -------
    // `map` is central-plan column index → index in the current (projected)
    // tuple. The coordinator prefix is never projected, so it starts as the
    // identity.
    let mut map: std::collections::HashMap<usize, usize> =
        (0..entry_arities[0]).map(|c| (c, c)).collect();
    let mut boundary_projections = Vec::with_capacity(sections.len());
    let mut remapped_sections = Vec::with_capacity(sections.len());
    let mut old_cursor;
    let mut cur_arity = 0;
    for (i, section) in sections.iter().enumerate() {
        let projection: Vec<usize> = keep[i]
            .iter()
            .map(|old| {
                map.get(old).copied().ok_or_else(|| {
                    CoreError::InvalidPlan(format!(
                        "projection dropped column #{old} still needed at level {}",
                        i + 1
                    ))
                })
            })
            .collect::<CoreResult<_>>()?;
        boundary_projections.push(projection);
        map = keep[i]
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        cur_arity = keep[i].len();
        old_cursor = entry_arities[i];

        let mut ops = Vec::with_capacity(section.len());
        for stage in section {
            ops.push(remap_stage(stage, &map)?);
            let produced = stage_output_count(stage);
            for j in 0..produced {
                map.insert(old_cursor + j, cur_arity + j);
            }
            old_cursor += produced;
            cur_arity += produced;
        }
        remapped_sections.push(ops);
    }

    // ---- remap the coordinator tail -----------------------------------------
    // Up to (and including) the first projection, tail references are in
    // central-plan coordinates and go through `map`. A projection (or a
    // grouping) re-bases the coordinate space to its own output order, so
    // everything above it is already in local positions: identity map.
    let mut old_cursor_tail = final_arity;
    let mut remapped_tail = Vec::with_capacity(tail_ops.len());
    for stage in &tail_ops {
        remapped_tail.push(remap_stage(stage, &map)?);
        match stage {
            PlanOp::Project { columns, .. } => {
                map = (0..columns.len()).map(|i| (i, i)).collect();
                cur_arity = columns.len();
                old_cursor_tail = cur_arity;
            }
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => {
                let arity = key_count + aggs.len();
                map = (0..arity).map(|i| (i, i)).collect();
                cur_arity = arity;
                old_cursor_tail = cur_arity;
            }
            _ => {
                let produced = stage_output_count(stage);
                for j in 0..produced {
                    map.insert(old_cursor_tail + j, cur_arity + j);
                }
                old_cursor_tail += produced;
                cur_arity += produced;
            }
        }
    }
    let projected_output_arity = chain_arity(
        keep.last().expect("non-empty").len(),
        remapped_sections.last().expect("non-empty"),
    );

    // ---- build plan functions innermost-first ------------------------------
    // Every level ultimately streams the innermost section's tuples up, so
    // each plan function's output arity is the (projected) final arity.
    let mut inner: Option<PlanFunction> = None;
    for level in (0..remapped_sections.len()).rev() {
        let param_arity = keep[level].len();
        let mut body = build_chain(
            PlanOp::Param { arity: param_arity },
            &remapped_sections[level],
        );
        if let Some(next_pf) = inner.take() {
            // Project the stream before shipping it to the next level.
            body = PlanOp::Project {
                columns: boundary_projections[level + 1].clone(),
                input: Box::new(body),
            };
            body = make_parallel(&mode, next_pf, fanouts.get(level + 1).copied(), body);
        }
        inner = Some(PlanFunction {
            name: format!("PF{}", level + 1),
            param_arity,
            body: Box::new(body),
            output_arity: projected_output_arity,
            prune: None,
        });
    }
    let first_pf = inner.expect("at least one section");

    // ---- coordinator plan ---------------------------------------------------
    let mut source = build_chain(PlanOp::Unit, &coordinator_ops);
    source = PlanOp::Project {
        columns: boundary_projections[0].clone(),
        input: Box::new(source),
    };
    let parallel_root = make_parallel(&mode, first_pf, fanouts.first().copied(), source);
    let root = build_chain(parallel_root, &remapped_tail);

    Ok(QueryPlan {
        root,
        column_names: plan.column_names.clone(),
    })
}

/// Central-plan column indices referenced by a run of stages. Stops at
/// the first projection: references above it are in the projection's own
/// output coordinates, not central-plan columns.
fn stage_refs_of_all(stages: &[Stage]) -> std::collections::BTreeSet<usize> {
    let mut refs = std::collections::BTreeSet::new();
    for stage in stages {
        let is_projection = matches!(stage, PlanOp::Project { .. });
        match stage {
            PlanOp::ApplyOwf { args, .. }
            | PlanOp::ApplyFunction { args, .. }
            | PlanOp::Extend { exprs: args, .. } => {
                refs.extend(args.iter().filter_map(|a| match a {
                    ArgExpr::Col(c) => Some(*c),
                    ArgExpr::Const(_) => None,
                }));
            }
            PlanOp::Project { columns, .. } => refs.extend(columns.iter().copied()),
            // Sort keys are positions in the *projected* head tuple, not
            // central-plan columns; Distinct/Limit reference nothing.
            // These reference post-projection (head-order) positions, not
            // central-plan columns.
            PlanOp::Sort { .. }
            | PlanOp::Distinct { .. }
            | PlanOp::Limit { .. }
            | PlanOp::Count { .. }
            | PlanOp::GroupBy { .. } => {}
            PlanOp::Unit | PlanOp::Param { .. } => {}
            PlanOp::FfApply { .. } | PlanOp::AffApply { .. } => {
                unreachable!("central chains contain no parallel operators")
            }
        }
        if is_projection {
            break;
        }
    }
    refs
}

/// Number of columns a stage appends to its input tuple.
fn stage_output_count(stage: &Stage) -> usize {
    match stage {
        PlanOp::ApplyOwf { output_arity, .. } | PlanOp::ApplyFunction { output_arity, .. } => {
            *output_arity
        }
        PlanOp::Extend { exprs, .. } => exprs.len(),
        _ => 0,
    }
}

/// Clones a stage with its column references rewritten through `map`.
fn remap_stage(stage: &Stage, map: &std::collections::HashMap<usize, usize>) -> CoreResult<Stage> {
    let remap_args = |args: &[ArgExpr]| -> CoreResult<Vec<ArgExpr>> {
        args.iter()
            .map(|a| match a {
                ArgExpr::Col(c) => map.get(c).map(|&n| ArgExpr::Col(n)).ok_or_else(|| {
                    CoreError::InvalidPlan(format!("column #{c} lost in projection"))
                }),
                ArgExpr::Const(v) => Ok(ArgExpr::Const(v.clone())),
            })
            .collect()
    };
    Ok(match stage {
        PlanOp::ApplyOwf {
            owf,
            args,
            output_arity,
            input,
        } => PlanOp::ApplyOwf {
            owf: owf.clone(),
            args: remap_args(args)?,
            output_arity: *output_arity,
            input: input.clone(),
        },
        PlanOp::ApplyFunction {
            function,
            args,
            output_arity,
            input,
        } => PlanOp::ApplyFunction {
            function: function.clone(),
            args: remap_args(args)?,
            output_arity: *output_arity,
            input: input.clone(),
        },
        PlanOp::Extend { exprs, input } => PlanOp::Extend {
            exprs: remap_args(exprs)?,
            input: input.clone(),
        },
        PlanOp::Project { columns, input } => PlanOp::Project {
            columns: columns
                .iter()
                .map(|c| {
                    map.get(c).copied().ok_or_else(|| {
                        CoreError::InvalidPlan(format!("column #{c} lost in projection"))
                    })
                })
                .collect::<CoreResult<_>>()?,
            input: input.clone(),
        },
        other => other.clone(),
    })
}

fn make_parallel(mode: &Mode, pf: PlanFunction, fanout: Option<usize>, input: PlanOp) -> PlanOp {
    match mode {
        Mode::Fixed(_) => PlanOp::FfApply {
            pf,
            fanout: fanout.expect("fanout validated"),
            input: Box::new(input),
        },
        Mode::Adaptive(config, _) => PlanOp::AffApply {
            pf,
            config: config.clone(),
            input: Box::new(input),
        },
    }
}

/// A chain operator with its input detached.
type Stage = PlanOp;

/// Decomposes the central chain into
/// `(coordinator ops, parallelizable sections, coordinator tail)`.
///
/// The tail is the maximal suffix of `Project`/`Extend` operators — the
/// final projection stays in the coordinator, as in the paper's figures.
fn split_sections(root: &PlanOp) -> (Vec<Stage>, Vec<Vec<Stage>>, Vec<Stage>) {
    // Collect the chain bottom-up, dropping the Unit leaf.
    let mut chain: Vec<Stage> = Vec::new();
    let mut op = root;
    while let Some(input) = op.input() {
        chain.push(detach(op));
        op = input;
    }
    chain.reverse();

    // Split off the coordinator tail. Two rules compose:
    //
    // 1. *Blocking* operators (GROUP BY, ORDER BY, DISTINCT, LIMIT, COUNT)
    //    need the whole stream, so they — and everything above them,
    //    including HAVING filters — must run in the coordinator.
    // 2. Below any blocking operator, the maximal suffix of
    //    `Project`/`Extend` (the head projection) also stays coordinator-
    //    side, matching the paper's figures. Tuple-at-a-time filters below
    //    that (e.g. Query2's `equal`) remain inside the shipped sections.
    let is_blocking = |op: &PlanOp| {
        matches!(
            op,
            PlanOp::Sort { .. }
                | PlanOp::Distinct { .. }
                | PlanOp::Limit { .. }
                | PlanOp::Count { .. }
                | PlanOp::GroupBy { .. }
        )
    };
    let mut tail = match chain.iter().position(is_blocking) {
        Some(first_blocking) => {
            let mut tail = chain.split_off(first_blocking);
            tail.reverse(); // temporarily top-down, like the loop below
            tail
        }
        None => Vec::new(),
    };
    while matches!(
        chain.last(),
        Some(PlanOp::Project { .. } | PlanOp::Extend { .. })
    ) {
        tail.push(chain.pop().expect("non-empty"));
    }
    tail.reverse();

    // Partition into coordinator prefix + sections at parallelizable OWFs.
    let mut coordinator = Vec::new();
    let mut sections: Vec<Vec<Stage>> = Vec::new();
    for stage in chain {
        if is_parallelizable(&stage) {
            sections.push(vec![stage]);
        } else if let Some(current) = sections.last_mut() {
            current.push(stage);
        } else {
            coordinator.push(stage);
        }
    }
    (coordinator, sections, tail)
}

/// An OWF call is parallelizable when at least one argument depends on the
/// parameter stream (§IV: "OWFs not having input parameters are not
/// considered").
fn is_parallelizable(stage: &Stage) -> bool {
    match stage {
        PlanOp::ApplyOwf { args, .. } => args.iter().any(|a| matches!(a, ArgExpr::Col(_))),
        _ => false,
    }
}

/// Clones an operator with its input replaced by `Unit` (a detached stage).
fn detach(op: &PlanOp) -> Stage {
    let mut stage = op.clone();
    match &mut stage {
        PlanOp::ApplyOwf { input, .. }
        | PlanOp::ApplyFunction { input, .. }
        | PlanOp::Extend { input, .. }
        | PlanOp::Project { input, .. }
        | PlanOp::Sort { input, .. }
        | PlanOp::Distinct { input }
        | PlanOp::Limit { input, .. }
        | PlanOp::Count { input }
        | PlanOp::GroupBy { input, .. }
        | PlanOp::FfApply { input, .. }
        | PlanOp::AffApply { input, .. } => **input = PlanOp::Unit,
        PlanOp::Unit | PlanOp::Param { .. } => {}
    }
    stage
}

/// Rebuilds a chain: applies `stages` (bottom-up order) over `base`.
fn build_chain(base: PlanOp, stages: &[Stage]) -> PlanOp {
    let mut op = base;
    for stage in stages {
        let mut next = stage.clone();
        match &mut next {
            PlanOp::ApplyOwf { input, .. }
            | PlanOp::ApplyFunction { input, .. }
            | PlanOp::Extend { input, .. }
            | PlanOp::Project { input, .. }
            | PlanOp::Sort { input, .. }
            | PlanOp::Distinct { input }
            | PlanOp::Limit { input, .. }
            | PlanOp::Count { input }
            | PlanOp::GroupBy { input, .. }
            | PlanOp::FfApply { input, .. }
            | PlanOp::AffApply { input, .. } => **input = op,
            PlanOp::Unit | PlanOp::Param { .. } => unreachable!("leaves are never stages"),
        }
        op = next;
    }
    op
}

/// Output arity after running `stages` over an input of `base` arity.
fn chain_arity(base: usize, stages: &[Stage]) -> usize {
    let mut arity = base;
    for stage in stages {
        arity = match stage {
            PlanOp::ApplyOwf { output_arity, .. } | PlanOp::ApplyFunction { output_arity, .. } => {
                arity + output_arity
            }
            PlanOp::Extend { exprs, .. } => arity + exprs.len(),
            PlanOp::Project { columns, .. } => columns.len(),
            PlanOp::Sort { .. } | PlanOp::Distinct { .. } | PlanOp::Limit { .. } => arity,
            PlanOp::Count { .. } => 1,
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => key_count + aggs.len(),
            PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => pf.output_arity,
            PlanOp::Unit => 0,
            PlanOp::Param { arity } => *arity,
        };
    }
    arity
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_store::Value;

    /// A central chain shaped like Query1's (Fig. 6):
    /// `π ← GetPlaceList ← concat3 ← GetPlacesWithin ← GetAllStates ← unit`.
    fn query1_like_central() -> QueryPlan {
        let plan = PlanOp::Project {
            columns: vec![7, 8],
            input: Box::new(PlanOp::ApplyOwf {
                owf: "GetPlaceList".into(),
                args: vec![
                    ArgExpr::Col(6),
                    ArgExpr::Const(Value::Int(100)),
                    ArgExpr::Const(Value::str("true")),
                ],
                output_arity: 2,
                input: Box::new(PlanOp::ApplyFunction {
                    function: "concat3".into(),
                    args: vec![
                        ArgExpr::Col(3),
                        ArgExpr::Const(Value::str(", ")),
                        ArgExpr::Col(4),
                    ],
                    output_arity: 1,
                    input: Box::new(PlanOp::ApplyOwf {
                        owf: "GetPlacesWithin".into(),
                        args: vec![
                            ArgExpr::Const(Value::str("Atlanta")),
                            ArgExpr::Col(0),
                            ArgExpr::Const(Value::Real(15.0)),
                            ArgExpr::Const(Value::str("City")),
                        ],
                        output_arity: 3,
                        input: Box::new(PlanOp::ApplyOwf {
                            owf: "GetAllStates".into(),
                            args: vec![],
                            output_arity: 3,
                            input: Box::new(PlanOp::Unit),
                        }),
                    }),
                }),
            }),
        };
        QueryPlan {
            root: plan,
            column_names: vec!["placename".into(), "state".into()],
        }
    }

    #[test]
    fn counts_parallelizable_sections() {
        assert_eq!(parallel_level_count(&query1_like_central()), 2);
    }

    #[test]
    fn rewrite_nests_ff_operators() {
        let plan = parallelize(&query1_like_central(), &vec![5, 4]).unwrap();
        // Root: π over FF_APPLYP(PF1) over GetAllStates over unit.
        let PlanOp::Project { input, .. } = &plan.root else {
            panic!("root must stay a projection: {}", plan.root)
        };
        let PlanOp::FfApply {
            pf,
            fanout,
            input: source,
        } = &**input
        else {
            panic!("expected FF under the projection: {}", plan.root)
        };
        assert_eq!(*fanout, 5);
        assert_eq!(pf.name, "PF1");
        // Parameter projection: PF1 receives only the state column, exactly
        // the paper's `PF1(Charstring st1)`.
        assert_eq!(pf.param_arity, 1);
        // PF1's body: FF(PF2, 4) over concat3 over GetPlacesWithin over param.
        let PlanOp::FfApply {
            pf: pf2,
            fanout: fo2,
            ..
        } = &*pf.body
        else {
            panic!("PF1 must end in the nested FF: {}", pf.body)
        };
        assert_eq!(*fo2, 4);
        assert_eq!(pf2.name, "PF2");
        // PF2 receives only the concatenated place string — `PF2(str)`.
        assert_eq!(pf2.param_arity, 1);
        // The source chain still calls GetAllStates in the coordinator.
        assert_eq!(source.owf_calls(), vec!["GetAllStates"]);
        // Two levels of process tree.
        assert_eq!(plan.root.parallel_depth(), 2);
        assert_eq!(plan.column_names, vec!["placename", "state"]);
    }

    #[test]
    fn flat_tree_merges_sections() {
        let plan = parallelize(&query1_like_central(), &vec![6, 0]).unwrap();
        let PlanOp::Project { input, .. } = &plan.root else {
            panic!()
        };
        let PlanOp::FfApply { pf, fanout, .. } = &**input else {
            panic!()
        };
        assert_eq!(*fanout, 6);
        // Single level: PF1 contains both OWFs (Fig. 14).
        assert_eq!(plan.root.parallel_depth(), 1);
        assert_eq!(pf.body.owf_calls(), vec!["GetPlacesWithin", "GetPlaceList"]);
    }

    #[test]
    fn adaptive_rewrite_uses_aff() {
        let plan =
            parallelize_adaptive(&query1_like_central(), &AdaptiveConfig::default()).unwrap();
        let PlanOp::Project { input, .. } = &plan.root else {
            panic!()
        };
        assert!(matches!(&**input, PlanOp::AffApply { .. }));
        assert_eq!(plan.root.parallel_depth(), 2);
    }

    #[test]
    fn masked_adaptive_merges_sections() {
        let config = AdaptiveConfig::default();
        let plan =
            parallelize_adaptive_masked(&query1_like_central(), &config, &[false, true]).unwrap();
        let PlanOp::Project { input, .. } = &plan.root else {
            panic!()
        };
        let PlanOp::AffApply { pf, .. } = &**input else {
            panic!()
        };
        // Single adaptive level containing both OWFs, like `{fo, 0}`.
        assert_eq!(plan.root.parallel_depth(), 1);
        assert_eq!(pf.body.owf_calls(), vec!["GetPlacesWithin", "GetPlaceList"]);
        // An all-false mask is exactly parallelize_adaptive.
        let unmasked = parallelize_adaptive(&query1_like_central(), &config).unwrap();
        let masked =
            parallelize_adaptive_masked(&query1_like_central(), &config, &[false, false]).unwrap();
        assert_eq!(unmasked, masked);
        // Bad masks are rejected.
        for bad in [vec![true, false], vec![false], vec![false; 3]] {
            let err =
                parallelize_adaptive_masked(&query1_like_central(), &config, &bad).unwrap_err();
            assert!(matches!(err, CoreError::InvalidPlan(_)));
        }
    }

    #[test]
    fn plan_sections_summarizes_stage_chains() {
        let (coordinator, sections) = plan_sections(&query1_like_central());
        assert_eq!(coordinator, vec![SectionStage::Owf("GetAllStates".into())]);
        assert_eq!(
            sections,
            vec![
                vec![
                    SectionStage::Owf("GetPlacesWithin".into()),
                    SectionStage::Function("concat3".into()),
                ],
                vec![SectionStage::Owf("GetPlaceList".into())],
            ]
        );
    }

    #[test]
    fn wrong_fanout_length_is_error() {
        let err = parallelize(&query1_like_central(), &vec![5]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPlan(_)));
        let err = parallelize(&query1_like_central(), &vec![5, 4, 3]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPlan(_)));
    }

    #[test]
    fn zero_first_fanout_is_error() {
        let err = parallelize(&query1_like_central(), &vec![0, 4]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPlan(_)));
    }

    #[test]
    fn plan_without_dependent_owfs_is_error() {
        let plan = QueryPlan {
            root: PlanOp::Project {
                columns: vec![0],
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "GetAllStates".into(),
                    args: vec![],
                    output_arity: 1,
                    input: Box::new(PlanOp::Unit),
                }),
            },
            column_names: vec!["state".into()],
        };
        assert!(matches!(
            parallelize(&plan, &vec![]).unwrap_err(),
            CoreError::InvalidPlan(_)
        ));
    }

    #[test]
    fn arities_remain_consistent_after_rewrite() {
        let central = query1_like_central();
        let parallel = parallelize(&central, &vec![3, 2]).unwrap();
        assert_eq!(central.root.output_arity(), parallel.root.output_arity());
    }

    #[test]
    fn owf_order_is_preserved() {
        let central = query1_like_central();
        let parallel = parallelize(&central, &vec![2, 2]).unwrap();
        assert_eq!(central.root.owf_calls(), parallel.root.owf_calls());
    }

    #[test]
    fn unprojected_rewrite_ships_full_prefix() {
        let plan = parallelize_unprojected(&query1_like_central(), &vec![5, 4]).unwrap();
        let PlanOp::Project { input, .. } = &plan.root else {
            panic!()
        };
        let PlanOp::FfApply { pf, .. } = &**input else {
            panic!()
        };
        assert_eq!(pf.param_arity, 3, "no projection: full GetAllStates tuple");
        let PlanOp::FfApply { pf: pf2, .. } = &*pf.body else {
            panic!()
        };
        assert_eq!(pf2.param_arity, 7, "no projection: 3 + 3 + 1 columns");
        assert_eq!(plan.root.output_arity(), 2);
    }

    #[test]
    fn projection_keeps_columns_needed_by_the_head() {
        // A head that projects a coordinator-level column forces it through
        // both plan functions.
        let mut central = query1_like_central();
        central.root = PlanOp::Project {
            columns: vec![0, 7], // a GetAllStates column + a GetPlaceList one
            input: central.root.input().unwrap().clone().into(),
        };
        let plan = parallelize(&central, &vec![2, 2]).unwrap();
        let PlanOp::Project { input, columns } = &plan.root else {
            panic!()
        };
        let PlanOp::FfApply { pf, .. } = &**input else {
            panic!()
        };
        // PF1's parameters now carry column 0 and the state (column 0 of
        // GetAllStates output is #0; GetPlacesWithin consumes #0 too).
        assert!(pf.param_arity >= 1);
        assert_eq!(columns.len(), 2);
        assert_eq!(plan.root.output_arity(), 2);
    }

    #[test]
    fn projection_errors_are_impossible_for_valid_plans() {
        // Any valid central chain must rewrite cleanly at any fanout.
        for fanouts in [vec![1, 1], vec![3, 2], vec![2, 0]] {
            parallelize(&query1_like_central(), &fanouts).unwrap();
        }
    }
}
