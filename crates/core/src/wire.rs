//! The wire format used to *ship* plan functions and parameter tuples.
//!
//! The paper's `FF_APPLYP` "ships in parallel to other query processes the
//! same plan function for different parameters" — code shipping, not
//! shared memory. To reproduce that faithfully, plan functions and tuples
//! cross process boundaries as serialized bytes: the receiving query
//! process deserializes and installs its own copy. Message sizes feed the
//! client cost model (`plan_ship_per_kib`).
//!
//! The format is a deliberately simple tagged binary encoding (little
//! endian, u32 lengths). It is not versioned — both ends are always the
//! same build, as in the paper's single-system deployment.

use std::cell::RefCell;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use wsmed_store::ValueBatch;
use wsmed_store::{Column, ColumnData, Record, StrColumn, StrHeap, Tuple, Validity, Value};

use crate::plan::{AdaptiveConfig, ArgExpr, PlanFunction, PlanOp};
use crate::{CoreError, CoreResult};

// ---------------------------------------------------------------- encode --

/// Serializes a plan function for shipping.
pub fn encode_plan_function(pf: &PlanFunction) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    put_plan_function(&mut buf, pf);
    buf.freeze()
}

/// Serializes a tuple for shipping as a parameter or result message.
pub fn encode_tuple(tuple: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_tuple(&mut buf, tuple);
    buf.freeze()
}

/// Serializes a value slice with the same layout as [`encode_tuple`] —
/// lets callers build structural keys without cloning values into a
/// `Tuple` first. Capacity is sized from the values' exact encoded
/// length, so the buffer never re-grows mid-encode.
pub(crate) fn encode_value_slice(values: &[Value]) -> Bytes {
    let cap = 4 + values.iter().map(value_encoded_size).sum::<usize>();
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_u32_le(values.len() as u32);
    for v in values {
        put_value(&mut buf, v);
    }
    buf.freeze()
}

/// Exact number of bytes [`put_value`] writes for `value`.
fn value_encoded_size(value: &Value) -> usize {
    match value {
        Value::Null => 1,
        Value::Str(s) => 1 + 4 + s.len(),
        Value::Real(_) | Value::Int(_) => 1 + 8,
        Value::Bool(_) => 1 + 1,
        Value::Record(record) => {
            1 + 4
                + record
                    .iter()
                    .map(|(name, v)| 4 + name.len() + value_encoded_size(v))
                    .sum::<usize>()
        }
        Value::Sequence(items) | Value::Bag(items) => {
            1 + 4 + items.iter().map(value_encoded_size).sum::<usize>()
        }
    }
}

/// Serializes a batch of tuples into one frame.
///
/// Frame layout: a varint tuple count, then per tuple a varint byte
/// length followed by that tuple's [`encode_tuple`] encoding. The
/// per-tuple length prefix lets a receiver slice tuples out without
/// re-parsing and lets pre-encoded tuples be framed without re-encoding
/// (see [`frame_encoded_batch`]).
pub fn encode_tuple_batch(tuples: &[Tuple]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 * tuples.len() + 8);
    put_varint(&mut buf, tuples.len() as u64);
    TUPLE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        for t in tuples {
            scratch.clear();
            put_tuple(scratch, t);
            put_varint(&mut buf, scratch.len() as u64);
            buf.put_slice(scratch);
        }
    });
    buf.freeze()
}

thread_local! {
    // Per-tuple encode buffer shared across frames: `clear` keeps the
    // capacity, so after the first few frames no frame re-grows it.
    static TUPLE_SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::with_capacity(256));
}

/// Builds a batch frame from tuples that are already individually
/// encoded — a memcpy per tuple instead of a re-encoding tree walk.
pub fn frame_encoded_batch<'a, I>(encoded: I) -> Bytes
where
    I: IntoIterator<Item = &'a Bytes>,
    I::IntoIter: ExactSizeIterator,
{
    let iter = encoded.into_iter();
    let mut buf = BytesMut::with_capacity(8);
    put_varint(&mut buf, iter.len() as u64);
    for part in iter {
        put_varint(&mut buf, part.len() as u64);
        buf.put_slice(part);
    }
    buf.freeze()
}

// -------------------------------------------------------------- columnar --
//
// The Call / ResultBatch message frames carry a one-byte kind prefix:
// kind 0 means a legacy row frame follows (`encode_tuple_batch` layout),
// kind 1 a columnar frame. Columnar layout after the kind byte:
//
//   varint row_count, varint col_count, then per column:
//     u8 tag (0=Null 1=Int 2=Real 3=Bool 4=Str 5=Other)
//     u8 has_validity, then ceil(rows/8) mask bytes if 1
//     data — Int/Real: rows × 8 LE; Bool: ceil(rows/8) packed bits;
//            Str: rows × u32 LE lengths, u32 heap_len, heap bytes;
//            Other: rows × tagged values (row format per value)
//
// Decode of a Str column borrows the heap straight out of the received
// frame (`copy_to_bytes` shares the allocation) — zero per-value copies.

/// Message frame kind: a legacy row frame follows.
const KIND_ROWS: u8 = 0;
/// Message frame kind: a columnar frame follows.
const KIND_COLUMNAR: u8 = 1;

/// A decoded Call/ResultBatch message frame.
#[derive(Debug, Clone)]
pub enum MessageBatch {
    /// Per-tuple row encodings, zero-copy slices of the frame (the
    /// slices match [`encode_tuple`] output byte-for-byte).
    Rows(Vec<Bytes>),
    /// A columnar batch whose string heaps borrow the frame.
    Columnar(ValueBatch),
}

impl MessageBatch {
    /// Number of tuples carried.
    pub fn len(&self) -> usize {
        match self {
            MessageBatch::Rows(parts) => parts.len(),
            MessageBatch::Columnar(batch) => batch.len(),
        }
    }

    /// Whether the frame carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every tuple (row fallback for unmigrated callers).
    pub fn into_tuples(self) -> CoreResult<Vec<Tuple>> {
        match self {
            MessageBatch::Rows(parts) => parts.into_iter().map(decode_tuple).collect(),
            MessageBatch::Columnar(batch) => Ok(batch.to_tuples()),
        }
    }
}

/// Builds a kind-prefixed message frame from pre-encoded row tuples.
pub fn encode_rows_message<'a, I>(encoded: I) -> Bytes
where
    I: IntoIterator<Item = &'a Bytes>,
    I::IntoIter: ExactSizeIterator,
{
    let iter = encoded.into_iter();
    let mut buf = BytesMut::with_capacity(8);
    buf.put_u8(KIND_ROWS);
    put_varint(&mut buf, iter.len() as u64);
    for part in iter {
        put_varint(&mut buf, part.len() as u64);
        buf.put_slice(part);
    }
    buf.freeze()
}

/// Builds a columnar message frame from a batch.
pub fn encode_columnar_batch(batch: &ValueBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 16 * batch.len());
    buf.put_u8(KIND_COLUMNAR);
    put_columnar(&mut buf, batch);
    buf.freeze()
}

/// Encodes tuples as a columnar message frame, falling back to the row
/// format when the batch cannot be columnarized (non-uniform arity).
pub fn encode_columnar_message(tuples: &[Tuple]) -> Bytes {
    match ValueBatch::from_tuples(tuples) {
        Some(batch) => encode_columnar_batch(&batch),
        None => {
            let mut buf = BytesMut::with_capacity(64 * tuples.len() + 9);
            buf.put_u8(KIND_ROWS);
            put_varint(&mut buf, tuples.len() as u64);
            TUPLE_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                for t in tuples {
                    scratch.clear();
                    put_tuple(scratch, t);
                    put_varint(&mut buf, scratch.len() as u64);
                    buf.put_slice(scratch);
                }
            });
            buf.freeze()
        }
    }
}

/// Decodes a kind-prefixed message frame produced by
/// [`encode_rows_message`] / [`encode_columnar_message`].
pub fn decode_message(mut bytes: Bytes) -> CoreResult<MessageBatch> {
    match get_u8(&mut bytes)? {
        KIND_ROWS => Ok(MessageBatch::Rows(split_tuple_batch(bytes)?)),
        KIND_COLUMNAR => {
            let batch = get_columnar(&mut bytes)?;
            if bytes.has_remaining() {
                return Err(CoreError::Wire(format!(
                    "{} trailing bytes after columnar frame",
                    bytes.remaining()
                )));
            }
            Ok(MessageBatch::Columnar(batch))
        }
        kind => Err(CoreError::Wire(format!("unknown message kind {kind}"))),
    }
}

/// Re-encodes row `i` of a columnar batch in [`encode_tuple`] layout,
/// straight from the column vectors (strings come from heap slices, no
/// `Arc` materialization). Byte-identical to `encode_tuple(&batch.row(i))`
/// — this is how the child keeps per-parameter memo keys in parity with
/// the parent's row encodings without materializing rows.
pub fn encode_row_tuple(batch: &ValueBatch, i: usize) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 * batch.arity().max(1));
    buf.put_u32_le(batch.arity() as u32);
    for col in batch.columns() {
        if !col.is_valid(i) {
            buf.put_u8(0);
            continue;
        }
        match col.data() {
            ColumnData::Null => buf.put_u8(0),
            ColumnData::Int(v) => {
                buf.put_u8(3);
                buf.put_i64_le(v[i]);
            }
            ColumnData::Real(v) => {
                buf.put_u8(2);
                buf.put_f64_le(v[i]);
            }
            ColumnData::Bool(v) => {
                buf.put_u8(4);
                buf.put_u8(u8::from(v[i]));
            }
            ColumnData::Str(col) => {
                buf.put_u8(1);
                let raw = col.get_bytes(i);
                buf.put_u32_le(raw.len() as u32);
                buf.put_slice(raw);
            }
            ColumnData::Other(v) => put_value(&mut buf, &v[i]),
        }
    }
    buf.freeze()
}

fn put_validity(buf: &mut BytesMut, validity: Option<&Validity>) {
    match validity {
        Some(mask) => {
            buf.put_u8(1);
            buf.put_slice(mask.as_bytes());
        }
        None => buf.put_u8(0),
    }
}

fn put_columnar(buf: &mut BytesMut, batch: &ValueBatch) {
    put_varint(buf, batch.len() as u64);
    put_varint(buf, batch.arity() as u64);
    for col in batch.columns() {
        match col.data() {
            ColumnData::Null => {
                buf.put_u8(0);
                buf.put_u8(0); // all-null columns carry no mask
            }
            ColumnData::Int(v) => {
                buf.put_u8(1);
                put_validity(buf, col.validity());
                for &x in v {
                    buf.put_i64_le(x);
                }
            }
            ColumnData::Real(v) => {
                buf.put_u8(2);
                put_validity(buf, col.validity());
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            ColumnData::Bool(v) => {
                buf.put_u8(3);
                put_validity(buf, col.validity());
                let mut packed = vec![0u8; v.len().div_ceil(8)];
                for (i, &b) in v.iter().enumerate() {
                    if b {
                        packed[i / 8] |= 1 << (i % 8);
                    }
                }
                buf.put_slice(&packed);
            }
            ColumnData::Str(scol) => {
                buf.put_u8(4);
                put_validity(buf, col.validity());
                let offsets = scol.offsets();
                for w in offsets.windows(2) {
                    buf.put_u32_le(w[1] - w[0]);
                }
                let heap = scol.heap().as_bytes();
                buf.put_u32_le(heap.len() as u32);
                buf.put_slice(heap);
            }
            ColumnData::Other(v) => {
                buf.put_u8(5);
                put_validity(buf, col.validity());
                for value in v {
                    put_value(buf, value);
                }
            }
        }
    }
}

fn get_validity(buf: &mut Bytes, rows: usize) -> CoreResult<Option<Validity>> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => {
            let n = rows.div_ceil(8);
            need(buf, n)?;
            let raw = buf.copy_to_bytes(n).to_vec();
            Validity::from_bytes(raw, rows)
                .map(Some)
                .ok_or_else(|| CoreError::Wire("bad validity mask".into()))
        }
        tag => Err(CoreError::Wire(format!("bad validity tag {tag}"))),
    }
}

fn get_columnar(buf: &mut Bytes) -> CoreResult<ValueBatch> {
    let rows = get_varint(buf)?;
    let cols = get_varint(buf)?;
    if rows > u32::MAX as u64 || cols > u32::MAX as u64 {
        return Err(CoreError::Wire(format!(
            "absurd columnar shape {rows}×{cols}"
        )));
    }
    let rows = rows as usize;
    let mut columns = Vec::with_capacity((cols as usize).min(4096));
    for _ in 0..cols {
        let tag = get_u8(buf)?;
        if tag == 0 {
            match get_u8(buf)? {
                0 => columns.push(Column::new(ColumnData::Null, None)),
                other => {
                    return Err(CoreError::Wire(format!(
                        "null column with validity tag {other}"
                    )))
                }
            }
            continue;
        }
        let validity = get_validity(buf, rows)?;
        let data = match tag {
            1 => {
                need(buf, rows * 8)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(buf.get_i64_le());
                }
                ColumnData::Int(v)
            }
            2 => {
                need(buf, rows * 8)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(buf.get_f64_le());
                }
                ColumnData::Real(v)
            }
            3 => {
                let n = rows.div_ceil(8);
                need(buf, n)?;
                let packed = buf.copy_to_bytes(n);
                ColumnData::Bool(
                    (0..rows)
                        .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
                        .collect(),
                )
            }
            4 => {
                need(buf, rows * 4)?;
                let mut offsets = Vec::with_capacity(rows + 1);
                offsets.push(0u32);
                let mut total = 0u64;
                for _ in 0..rows {
                    total += u64::from(buf.get_u32_le());
                    if total > u64::from(u32::MAX) {
                        return Err(CoreError::Wire("string heap overflows u32".into()));
                    }
                    offsets.push(total as u32);
                }
                let heap_len = get_u32(buf)?;
                if heap_len as u64 != total {
                    return Err(CoreError::Wire(format!(
                        "heap length {heap_len} != summed lengths {total}"
                    )));
                }
                need(buf, heap_len)?;
                // Zero-copy: the heap is a refcounted view of the frame.
                let heap = buf.copy_to_bytes(heap_len);
                let col = StrColumn::new(offsets, StrHeap::Shared(heap))
                    .ok_or_else(|| CoreError::Wire("invalid UTF-8 in string column".into()))?;
                ColumnData::Str(col)
            }
            5 => {
                let mut v = Vec::with_capacity(rows.min(4096));
                for _ in 0..rows {
                    v.push(get_value(buf)?);
                }
                ColumnData::Other(v)
            }
            other => return Err(CoreError::Wire(format!("unknown column tag {other}"))),
        };
        columns.push(Column::new(data, validity));
    }
    ValueBatch::from_parts(rows, columns)
        .ok_or_else(|| CoreError::Wire("columnar frame shape mismatch".into()))
}

/// LEB128 unsigned varint (7 bits per byte, high bit = continuation).
fn put_varint(buf: &mut BytesMut, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(0),
        Value::Str(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        Value::Real(r) => {
            buf.put_u8(2);
            buf.put_f64_le(*r);
        }
        Value::Int(i) => {
            buf.put_u8(3);
            buf.put_i64_le(*i);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
        Value::Record(record) => {
            buf.put_u8(5);
            buf.put_u32_le(record.len() as u32);
            for (name, v) in record.iter() {
                put_str(buf, name);
                put_value(buf, v);
            }
        }
        Value::Sequence(items) => {
            buf.put_u8(6);
            buf.put_u32_le(items.len() as u32);
            for v in items {
                put_value(buf, v);
            }
        }
        Value::Bag(items) => {
            buf.put_u8(7);
            buf.put_u32_le(items.len() as u32);
            for v in items {
                put_value(buf, v);
            }
        }
    }
}

fn put_tuple(buf: &mut BytesMut, tuple: &Tuple) {
    buf.put_u32_le(tuple.arity() as u32);
    for v in tuple.values() {
        put_value(buf, v);
    }
}

fn put_arg(buf: &mut BytesMut, arg: &ArgExpr) {
    match arg {
        ArgExpr::Col(i) => {
            buf.put_u8(0);
            buf.put_u32_le(*i as u32);
        }
        ArgExpr::Const(v) => {
            buf.put_u8(1);
            put_value(buf, v);
        }
    }
}

fn put_args(buf: &mut BytesMut, args: &[ArgExpr]) {
    buf.put_u32_le(args.len() as u32);
    for a in args {
        put_arg(buf, a);
    }
}

fn put_plan_op(buf: &mut BytesMut, op: &PlanOp) {
    match op {
        PlanOp::Unit => buf.put_u8(0),
        PlanOp::Param { arity } => {
            buf.put_u8(1);
            buf.put_u32_le(*arity as u32);
        }
        PlanOp::ApplyOwf {
            owf,
            args,
            output_arity,
            input,
        } => {
            buf.put_u8(2);
            put_str(buf, owf);
            put_args(buf, args);
            buf.put_u32_le(*output_arity as u32);
            put_plan_op(buf, input);
        }
        PlanOp::ApplyFunction {
            function,
            args,
            output_arity,
            input,
        } => {
            buf.put_u8(3);
            put_str(buf, function);
            put_args(buf, args);
            buf.put_u32_le(*output_arity as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Extend { exprs, input } => {
            buf.put_u8(4);
            put_args(buf, exprs);
            put_plan_op(buf, input);
        }
        PlanOp::Project { columns, input } => {
            buf.put_u8(5);
            buf.put_u32_le(columns.len() as u32);
            for c in columns {
                buf.put_u32_le(*c as u32);
            }
            put_plan_op(buf, input);
        }
        PlanOp::FfApply { pf, fanout, input } => {
            buf.put_u8(6);
            put_plan_function(buf, pf);
            buf.put_u32_le(*fanout as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Sort { keys, input } => {
            buf.put_u8(8);
            buf.put_u32_le(keys.len() as u32);
            for (col, desc) in keys {
                buf.put_u32_le(*col as u32);
                buf.put_u8(u8::from(*desc));
            }
            put_plan_op(buf, input);
        }
        PlanOp::Distinct { input } => {
            buf.put_u8(9);
            put_plan_op(buf, input);
        }
        PlanOp::Limit { count, input } => {
            buf.put_u8(10);
            buf.put_u32_le(*count as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Count { input } => {
            buf.put_u8(11);
            put_plan_op(buf, input);
        }
        PlanOp::GroupBy {
            key_count,
            aggs,
            input,
        } => {
            buf.put_u8(12);
            buf.put_u32_le(*key_count as u32);
            buf.put_u32_le(aggs.len() as u32);
            for (func, arg) in aggs {
                buf.put_u8(agg_code(*func));
                match arg {
                    Some(col) => {
                        buf.put_u8(1);
                        buf.put_u32_le(*col as u32);
                    }
                    None => buf.put_u8(0),
                }
            }
            put_plan_op(buf, input);
        }
        PlanOp::AffApply { pf, config, input } => {
            buf.put_u8(7);
            put_plan_function(buf, pf);
            buf.put_u32_le(config.add_step as u32);
            buf.put_f64_le(config.threshold);
            buf.put_u8(u8::from(config.drop_enabled));
            buf.put_u32_le(config.init_fanout as u32);
            buf.put_u32_le(config.max_fanout as u32);
            match config.rearm_factor {
                Some(factor) => {
                    buf.put_u8(1);
                    buf.put_f64_le(factor);
                }
                None => buf.put_u8(0),
            }
            put_plan_op(buf, input);
        }
    }
}

fn put_plan_function(buf: &mut BytesMut, pf: &PlanFunction) {
    put_str(buf, &pf.name);
    buf.put_u32_le(pf.param_arity as u32);
    buf.put_u32_le(pf.output_arity as u32);
    put_plan_op(buf, &pf.body);
    match &pf.prune {
        None => buf.put_u8(0),
        Some(spec) => {
            buf.put_u8(1);
            put_str(buf, &spec.section_key);
            buf.put_u32_le(spec.drop_params.len() as u32);
            for param in &spec.drop_params {
                buf.put_u32_le(param.len() as u32);
                buf.extend_from_slice(param);
            }
        }
    }
}

// ---------------------------------------------------------------- decode --

/// Deserializes a plan function received from a parent process.
pub fn decode_plan_function(mut bytes: Bytes) -> CoreResult<PlanFunction> {
    let pf = get_plan_function(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(pf)
}

/// Deserializes a tuple.
pub fn decode_tuple(mut bytes: Bytes) -> CoreResult<Tuple> {
    let t = get_tuple(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(t)
}

/// Deserializes a batch frame produced by [`encode_tuple_batch`] or
/// [`frame_encoded_batch`].
pub fn decode_tuple_batch(mut bytes: Bytes) -> CoreResult<Vec<Tuple>> {
    let n = get_varint(&mut bytes)?;
    if n > u32::MAX as u64 {
        return Err(CoreError::Wire(format!("absurd batch count {n}")));
    }
    let mut tuples = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        let len = get_varint(&mut bytes)? as usize;
        need(&bytes, len)?;
        let mut part = bytes.copy_to_bytes(len);
        let t = get_tuple(&mut part)?;
        if part.has_remaining() {
            return Err(CoreError::Wire(format!(
                "{} trailing bytes inside batch entry",
                part.remaining()
            )));
        }
        tuples.push(t);
    }
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(tuples)
}

/// Splits a batch frame into the per-tuple encodings it carries without
/// decoding them — zero-copy slices of the original frame. Each returned
/// `Bytes` equals what [`encode_tuple`] produced for that tuple, so the
/// slices can key per-parameter memo lookups ([`crate::cache`]) against
/// parent-side `encode_tuple` output byte-for-byte.
pub fn split_tuple_batch(mut bytes: Bytes) -> CoreResult<Vec<Bytes>> {
    let n = get_varint(&mut bytes)?;
    if n > u32::MAX as u64 {
        return Err(CoreError::Wire(format!("absurd batch count {n}")));
    }
    let mut parts = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        let len = get_varint(&mut bytes)? as usize;
        need(&bytes, len)?;
        parts.push(bytes.copy_to_bytes(len));
    }
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(parts)
}

fn need(buf: &Bytes, n: usize) -> CoreResult<()> {
    if buf.remaining() < n {
        Err(CoreError::Wire(format!(
            "needed {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut Bytes) -> CoreResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_varint(buf: &mut Bytes) -> CoreResult<u64> {
    let mut n = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = get_u8(buf)?;
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical padding like 0x80 0x00.
            if byte == 0 && shift != 0 {
                return Err(CoreError::Wire("non-canonical varint".into()));
            }
            return Ok(n);
        }
    }
    Err(CoreError::Wire("varint longer than 10 bytes".into()))
}

fn get_u32(buf: &mut Bytes) -> CoreResult<usize> {
    need(buf, 4)?;
    Ok(buf.get_u32_le() as usize)
}

fn get_f64(buf: &mut Bytes) -> CoreResult<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

fn get_str(buf: &mut Bytes) -> CoreResult<String> {
    let len = get_u32(buf)?;
    need(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    // Validate in place and copy once; `String::from_utf8(raw.to_vec())`
    // would copy before validating and throw the copy away on error.
    std::str::from_utf8(&raw)
        .map(str::to_owned)
        .map_err(|_| CoreError::Wire("invalid UTF-8".into()))
}

fn get_value(buf: &mut Bytes) -> CoreResult<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::from(get_str(buf)?)),
        2 => Ok(Value::Real(get_f64(buf)?)),
        3 => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        4 => Ok(Value::Bool(get_u8(buf)? != 0)),
        5 => {
            let n = get_u32(buf)?;
            let mut record = Record::new();
            for _ in 0..n {
                let name = get_str(buf)?;
                let value = get_value(buf)?;
                record.set(name, value);
            }
            Ok(Value::Record(record))
        }
        6 => {
            let n = get_u32(buf)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Ok(Value::Sequence(items))
        }
        7 => {
            let n = get_u32(buf)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Ok(Value::Bag(items))
        }
        tag => Err(CoreError::Wire(format!("unknown value tag {tag}"))),
    }
}

fn get_tuple(buf: &mut Bytes) -> CoreResult<Tuple> {
    let n = get_u32(buf)?;
    let mut values = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        values.push(get_value(buf)?);
    }
    Ok(Tuple::new(values))
}

fn get_arg(buf: &mut Bytes) -> CoreResult<ArgExpr> {
    match get_u8(buf)? {
        0 => Ok(ArgExpr::Col(get_u32(buf)?)),
        1 => Ok(ArgExpr::Const(get_value(buf)?)),
        tag => Err(CoreError::Wire(format!("unknown arg tag {tag}"))),
    }
}

fn get_args(buf: &mut Bytes) -> CoreResult<Vec<ArgExpr>> {
    let n = get_u32(buf)?;
    let mut args = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        args.push(get_arg(buf)?);
    }
    Ok(args)
}

fn get_plan_op(buf: &mut Bytes) -> CoreResult<PlanOp> {
    match get_u8(buf)? {
        0 => Ok(PlanOp::Unit),
        1 => Ok(PlanOp::Param {
            arity: get_u32(buf)?,
        }),
        2 => {
            let owf = get_str(buf)?;
            let args = get_args(buf)?;
            let output_arity = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::ApplyOwf {
                owf,
                args,
                output_arity,
                input,
            })
        }
        3 => {
            let function = get_str(buf)?;
            let args = get_args(buf)?;
            let output_arity = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::ApplyFunction {
                function,
                args,
                output_arity,
                input,
            })
        }
        4 => {
            let exprs = get_args(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Extend { exprs, input })
        }
        5 => {
            let n = get_u32(buf)?;
            let mut columns = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                columns.push(get_u32(buf)?);
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Project { columns, input })
        }
        6 => {
            let pf = get_plan_function(buf)?;
            let fanout = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::FfApply { pf, fanout, input })
        }
        7 => {
            let pf = get_plan_function(buf)?;
            let config = AdaptiveConfig {
                add_step: get_u32(buf)?,
                threshold: get_f64(buf)?,
                drop_enabled: get_u8(buf)? != 0,
                init_fanout: get_u32(buf)?,
                max_fanout: get_u32(buf)?,
                rearm_factor: match get_u8(buf)? {
                    0 => None,
                    _ => Some(get_f64(buf)?),
                },
            };
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::AffApply { pf, config, input })
        }
        8 => {
            let n = get_u32(buf)?;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let col = get_u32(buf)?;
                let desc = get_u8(buf)? != 0;
                keys.push((col, desc));
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Sort { keys, input })
        }
        9 => {
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Distinct { input })
        }
        10 => {
            let count = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Limit { count, input })
        }
        11 => {
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Count { input })
        }
        12 => {
            let key_count = get_u32(buf)?;
            let n = get_u32(buf)?;
            let mut aggs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let func = agg_from_code(get_u8(buf)?)?;
                let arg = match get_u8(buf)? {
                    0 => None,
                    1 => Some(get_u32(buf)?),
                    tag => return Err(CoreError::Wire(format!("bad agg-arg tag {tag}"))),
                };
                aggs.push((func, arg));
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::GroupBy {
                key_count,
                aggs,
                input,
            })
        }
        tag => Err(CoreError::Wire(format!("unknown plan-op tag {tag}"))),
    }
}

fn agg_code(func: wsmed_sql::AggFunc) -> u8 {
    match func {
        wsmed_sql::AggFunc::Count => 0,
        wsmed_sql::AggFunc::Sum => 1,
        wsmed_sql::AggFunc::Min => 2,
        wsmed_sql::AggFunc::Max => 3,
        wsmed_sql::AggFunc::Avg => 4,
    }
}

fn agg_from_code(code: u8) -> CoreResult<wsmed_sql::AggFunc> {
    Ok(match code {
        0 => wsmed_sql::AggFunc::Count,
        1 => wsmed_sql::AggFunc::Sum,
        2 => wsmed_sql::AggFunc::Min,
        3 => wsmed_sql::AggFunc::Max,
        4 => wsmed_sql::AggFunc::Avg,
        other => return Err(CoreError::Wire(format!("unknown aggregate code {other}"))),
    })
}

fn get_plan_function(buf: &mut Bytes) -> CoreResult<PlanFunction> {
    let name = get_str(buf)?;
    let param_arity = get_u32(buf)?;
    let output_arity = get_u32(buf)?;
    let body = Box::new(get_plan_op(buf)?);
    let prune = match get_u8(buf)? {
        0 => None,
        1 => {
            let section_key = get_str(buf)?;
            let n = get_u32(buf)?;
            let mut drop_params = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let len = get_u32(buf)?;
                need(buf, len)?;
                drop_params.push(buf.copy_to_bytes(len));
            }
            Some(crate::plan::PruneSpec {
                section_key,
                drop_params,
            })
        }
        tag => return Err(CoreError::Wire(format!("bad prune-spec tag {tag}"))),
    };
    Ok(PlanFunction {
        name,
        param_arity,
        body,
        output_arity,
        prune,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_pf() -> PlanFunction {
        PlanFunction {
            name: "PF1".into(),
            param_arity: 1,
            output_arity: 2,
            body: Box::new(PlanOp::ApplyFunction {
                function: "concat".into(),
                args: vec![ArgExpr::Col(0), ArgExpr::Const(Value::str(", "))],
                output_arity: 1,
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "GetPlacesWithin".into(),
                    args: vec![
                        ArgExpr::Const(Value::str("Atlanta")),
                        ArgExpr::Col(0),
                        ArgExpr::Const(Value::Real(15.0)),
                        ArgExpr::Const(Value::str("City")),
                    ],
                    output_arity: 3,
                    input: Box::new(PlanOp::Param { arity: 1 }),
                }),
            }),
            prune: None,
        }
    }

    #[test]
    fn plan_function_roundtrip() {
        let pf = sample_pf();
        let bytes = encode_plan_function(&pf);
        let back = decode_plan_function(bytes).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn prune_spec_roundtrip() {
        let mut pf = sample_pf();
        pf.prune = Some(crate::plan::PruneSpec {
            section_key: "a1b2c3d4e5f60718".into(),
            drop_params: vec![
                encode_tuple(&Tuple::new(vec![Value::str("GA")])),
                encode_tuple(&Tuple::new(vec![Value::str("TX")])),
                Bytes::new(), // empty params survive too
            ],
        });
        let bytes = encode_plan_function(&pf);
        let back = decode_plan_function(bytes).unwrap();
        assert_eq!(back, pf);
        // An empty drop list is distinct from no annotation at all.
        pf.prune = Some(crate::plan::PruneSpec::default());
        let back = decode_plan_function(encode_plan_function(&pf)).unwrap();
        assert_eq!(back.prune, Some(crate::plan::PruneSpec::default()));
    }

    #[test]
    fn nested_ff_roundtrip() {
        let inner = sample_pf();
        let outer = PlanFunction {
            name: "PF0".into(),
            param_arity: 1,
            output_arity: 2,
            body: Box::new(PlanOp::FfApply {
                pf: inner,
                fanout: 4,
                input: Box::new(PlanOp::Param { arity: 1 }),
            }),
            prune: None,
        };
        let back = decode_plan_function(encode_plan_function(&outer)).unwrap();
        assert_eq!(back, outer);
    }

    #[test]
    fn aff_roundtrip_preserves_config() {
        let pf = PlanFunction {
            name: "A".into(),
            param_arity: 0,
            output_arity: 0,
            body: Box::new(PlanOp::AffApply {
                pf: sample_pf(),
                config: AdaptiveConfig {
                    add_step: 4,
                    threshold: 0.1,
                    drop_enabled: true,
                    init_fanout: 2,
                    max_fanout: 9,
                    rearm_factor: Some(0.5),
                },
                input: Box::new(PlanOp::Unit),
            }),
            prune: None,
        };
        let back = decode_plan_function(encode_plan_function(&pf)).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn sort_distinct_limit_roundtrip() {
        let pf = PlanFunction {
            name: "T".into(),
            param_arity: 0,
            output_arity: 2,
            body: Box::new(PlanOp::Limit {
                count: 10,
                input: Box::new(PlanOp::Sort {
                    keys: vec![(1, true), (0, false)],
                    input: Box::new(PlanOp::Distinct {
                        input: Box::new(PlanOp::Unit),
                    }),
                }),
            }),
            prune: None,
        };
        let back = decode_plan_function(encode_plan_function(&pf)).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn truncated_bytes_error() {
        let bytes = encode_plan_function(&sample_pf());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(
                decode_plan_function(truncated).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut raw = encode_plan_function(&sample_pf()).to_vec();
        raw.push(0);
        assert!(decode_plan_function(Bytes::from(raw)).is_err());
    }

    #[test]
    fn garbage_tag_error() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let mut raw = encode_tuple(&t).to_vec();
        raw[4] = 250; // value tag position
        assert!(decode_tuple(Bytes::from(raw)).is_err());
    }

    fn sample_batch() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::str("Atlanta")]),
            Tuple::new(vec![]),
            Tuple::new(vec![Value::Real(15.0), Value::Null, Value::Bool(true)]),
        ]
    }

    #[test]
    fn tuple_batch_roundtrip() {
        let tuples = sample_batch();
        let frame = encode_tuple_batch(&tuples);
        assert_eq!(decode_tuple_batch(frame).unwrap(), tuples);
        assert_eq!(decode_tuple_batch(encode_tuple_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn framed_encoded_batch_matches_direct_encoding() {
        let tuples = sample_batch();
        let parts: Vec<Bytes> = tuples.iter().map(encode_tuple).collect();
        assert_eq!(frame_encoded_batch(&parts), encode_tuple_batch(&tuples));
    }

    #[test]
    fn split_batch_yields_per_tuple_encodings() {
        let tuples = sample_batch();
        let frame = encode_tuple_batch(&tuples);
        let parts = split_tuple_batch(frame).unwrap();
        assert_eq!(parts.len(), tuples.len());
        for (part, t) in parts.iter().zip(&tuples) {
            assert_eq!(part, &encode_tuple(t));
        }
        assert!(split_tuple_batch(encode_tuple_batch(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_truncation_errors() {
        let frame = encode_tuple_batch(&sample_batch());
        for cut in 0..frame.len() {
            assert!(
                decode_tuple_batch(frame.slice(0..cut)).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn batch_trailing_and_garbage_errors() {
        let mut raw = encode_tuple_batch(&sample_batch()).to_vec();
        raw.push(0);
        assert!(decode_tuple_batch(Bytes::from(raw.clone())).is_err());
        raw.pop();
        raw[0] = 0xFF; // claim a huge continuation-heavy count
        for _ in 0..10 {
            raw.insert(1, 0xFF);
        }
        assert!(decode_tuple_batch(Bytes::from(raw)).is_err());
    }

    #[test]
    fn batch_entry_length_mismatch_errors() {
        // A per-tuple length that overclaims into the next entry must fail
        // the inner trailing-bytes check, not silently misparse.
        let tuples = sample_batch();
        let mut raw = encode_tuple_batch(&tuples).to_vec();
        raw[1] += 1; // first entry's varint length (count is 1 byte here)
        raw.push(0); // keep the outer frame long enough
        assert!(decode_tuple_batch(Bytes::from(raw)).is_err());
    }

    // ---- columnar frames -------------------------------------------------

    fn columnar_batch() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Int(1),
                Value::str("Atlanta"),
                Value::Real(1.5),
                Value::Bool(true),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(2),
                Value::Null,
                Value::Real(f64::NAN),
                Value::Null,
                Value::Sequence(vec![Value::Int(9), Value::str("x")]),
            ]),
            Tuple::new(vec![
                Value::Int(3),
                Value::str("Decatur"),
                Value::Real(-0.0),
                Value::Bool(false),
                Value::str("mixed"),
            ]),
        ]
    }

    fn assert_rows_eq(a: &[Tuple], b: &[Tuple]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.total_cmp(y), std::cmp::Ordering::Equal, "{x} vs {y}");
        }
    }

    #[test]
    fn columnar_message_roundtrip() {
        let tuples = columnar_batch();
        let frame = encode_columnar_message(&tuples);
        let MessageBatch::Columnar(batch) = decode_message(frame).unwrap() else {
            panic!("uniform batch must ship columnar");
        };
        assert_rows_eq(&batch.to_tuples(), &tuples);
        // Empty batches round-trip too.
        let empty = decode_message(encode_columnar_message(&[])).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn columnar_decode_borrows_frame_heap() {
        let tuples = columnar_batch();
        let frame = encode_columnar_message(&tuples);
        let frame_range = frame.as_ptr_range();
        let MessageBatch::Columnar(batch) = decode_message(frame.clone()).unwrap() else {
            panic!("expected columnar");
        };
        let ColumnData::Str(col) = batch.column(1).data() else {
            panic!("expected str column");
        };
        assert!(col.heap().is_shared(), "heap must borrow the frame");
        let heap = col.heap().as_bytes().as_ptr_range();
        assert!(
            frame_range.start <= heap.start && heap.end <= frame_range.end,
            "heap bytes must live inside the received frame"
        );
    }

    #[test]
    fn non_uniform_batch_falls_back_to_rows() {
        let tuples = sample_batch(); // arities 2, 0, 3
        let frame = encode_columnar_message(&tuples);
        let decoded = decode_message(frame).unwrap();
        let MessageBatch::Rows(parts) = &decoded else {
            panic!("non-uniform arity must fall back to the row format");
        };
        for (part, t) in parts.iter().zip(&tuples) {
            assert_eq!(part, &encode_tuple(t));
        }
        assert_rows_eq(&decoded.into_tuples().unwrap(), &tuples);
    }

    #[test]
    fn rows_message_matches_legacy_frame_plus_kind() {
        let tuples = sample_batch();
        let parts: Vec<Bytes> = tuples.iter().map(encode_tuple).collect();
        let msg = encode_rows_message(&parts);
        assert_eq!(msg[0], 0, "kind byte");
        assert_eq!(msg.slice(1..), encode_tuple_batch(&tuples));
        assert_rows_eq(
            &decode_message(msg).unwrap().into_tuples().unwrap(),
            &tuples,
        );
    }

    #[test]
    fn encode_row_tuple_matches_row_encoding() {
        for tuples in [columnar_batch(), vec![Tuple::empty(), Tuple::empty()]] {
            let batch = wsmed_store::ValueBatch::from_tuples(&tuples).unwrap();
            for (i, t) in tuples.iter().enumerate() {
                assert_eq!(
                    encode_row_tuple(&batch, i),
                    encode_tuple(t),
                    "row {i} encoding must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn columnar_frame_rejects_corruption() {
        let frame = encode_columnar_message(&columnar_batch());
        for cut in 0..frame.len() {
            assert!(
                decode_message(frame.slice(0..cut)).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
        let mut raw = frame.to_vec();
        raw.push(0);
        assert!(decode_message(Bytes::from(raw)).is_err(), "trailing bytes");
        let mut raw = frame.to_vec();
        raw[0] = 9;
        assert!(decode_message(Bytes::from(raw)).is_err(), "unknown kind");
    }

    // ---- property tests --------------------------------------------------

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            "[ -~]{0,24}".prop_map(Value::from),
            any::<f64>().prop_map(Value::Real),
            any::<i64>().prop_map(Value::Int),
            any::<bool>().prop_map(Value::Bool),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Sequence),
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
                proptest::collection::vec(("[a-z]{1,8}", inner), 0..4).prop_map(|fields| {
                    let mut r = Record::new();
                    for (k, v) in fields {
                        r.set(k, v);
                    }
                    Value::Record(r)
                }),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_tuple_roundtrip(values in proptest::collection::vec(value_strategy(), 0..6)) {
            let t = Tuple::new(values);
            let back = decode_tuple(encode_tuple(&t)).unwrap();
            // NaN != NaN under PartialEq; compare via total ordering.
            prop_assert_eq!(back.total_cmp(&t), std::cmp::Ordering::Equal);
        }

        #[test]
        fn prop_decoder_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_plan_function(Bytes::from(raw.clone()));
            let _ = decode_tuple(Bytes::from(raw.clone()));
            let _ = decode_tuple_batch(Bytes::from(raw.clone()));
            let _ = decode_message(Bytes::from(raw.clone()));
            // Exercise the columnar decoder directly too.
            let mut framed = vec![1u8];
            framed.extend_from_slice(&raw);
            let _ = decode_message(Bytes::from(framed));
        }

        #[test]
        fn prop_columnar_roundtrip_uniform(
            rows in proptest::collection::vec(
                proptest::collection::vec(value_strategy(), 3..4),
                0..12,
            )
        ) {
            let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
            let decoded = decode_message(encode_columnar_message(&tuples)).unwrap();
            let back = decoded.into_tuples().unwrap();
            prop_assert_eq!(back.len(), tuples.len());
            for (b, t) in back.iter().zip(&tuples) {
                prop_assert_eq!(b.total_cmp(t), std::cmp::Ordering::Equal);
            }
        }

        #[test]
        fn prop_encode_row_tuple_parity(
            rows in proptest::collection::vec(
                proptest::collection::vec(value_strategy(), 4..5),
                1..10,
            )
        ) {
            // Memo-key invariant: the child's column-sourced re-encoding of
            // any row must equal the parent's `encode_tuple` byte-for-byte,
            // even after a wire round trip.
            let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
            let direct = wsmed_store::ValueBatch::from_tuples(&tuples).unwrap();
            let MessageBatch::Columnar(wired) =
                decode_message(encode_columnar_batch(&direct)).unwrap()
            else {
                panic!("expected columnar")
            };
            for (i, t) in tuples.iter().enumerate() {
                let expected = encode_tuple(t);
                prop_assert_eq!(&encode_row_tuple(&direct, i), &expected);
                prop_assert_eq!(&encode_row_tuple(&wired, i), &expected);
            }
        }

        #[test]
        fn prop_tuple_batch_roundtrip(
            batch in proptest::collection::vec(
                proptest::collection::vec(value_strategy(), 0..4),
                0..12,
            )
        ) {
            let tuples: Vec<Tuple> = batch.into_iter().map(Tuple::new).collect();
            let back = decode_tuple_batch(encode_tuple_batch(&tuples)).unwrap();
            prop_assert_eq!(back.len(), tuples.len());
            for (b, t) in back.iter().zip(&tuples) {
                prop_assert_eq!(b.total_cmp(t), std::cmp::Ordering::Equal);
            }
            // Framing pre-encoded tuples is byte-identical to direct encoding.
            let parts: Vec<Bytes> = tuples.iter().map(encode_tuple).collect();
            prop_assert_eq!(frame_encoded_batch(&parts), encode_tuple_batch(&tuples));
        }
    }
}
