//! The wire format used to *ship* plan functions and parameter tuples.
//!
//! The paper's `FF_APPLYP` "ships in parallel to other query processes the
//! same plan function for different parameters" — code shipping, not
//! shared memory. To reproduce that faithfully, plan functions and tuples
//! cross process boundaries as serialized bytes: the receiving query
//! process deserializes and installs its own copy. Message sizes feed the
//! client cost model (`plan_ship_per_kib`).
//!
//! The format is a deliberately simple tagged binary encoding (little
//! endian, u32 lengths). It is not versioned — both ends are always the
//! same build, as in the paper's single-system deployment.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use wsmed_store::{Record, Tuple, Value};

use crate::plan::{AdaptiveConfig, ArgExpr, PlanFunction, PlanOp};
use crate::{CoreError, CoreResult};

// ---------------------------------------------------------------- encode --

/// Serializes a plan function for shipping.
pub fn encode_plan_function(pf: &PlanFunction) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    put_plan_function(&mut buf, pf);
    buf.freeze()
}

/// Serializes a tuple for shipping as a parameter or result message.
pub fn encode_tuple(tuple: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_tuple(&mut buf, tuple);
    buf.freeze()
}

/// Serializes a value slice with the same layout as [`encode_tuple`] —
/// lets callers build structural keys without cloning values into a
/// `Tuple` first.
pub(crate) fn encode_value_slice(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u32_le(values.len() as u32);
    for v in values {
        put_value(&mut buf, v);
    }
    buf.freeze()
}

/// Serializes a batch of tuples into one frame.
///
/// Frame layout: a varint tuple count, then per tuple a varint byte
/// length followed by that tuple's [`encode_tuple`] encoding. The
/// per-tuple length prefix lets a receiver slice tuples out without
/// re-parsing and lets pre-encoded tuples be framed without re-encoding
/// (see [`frame_encoded_batch`]).
pub fn encode_tuple_batch(tuples: &[Tuple]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 * tuples.len() + 8);
    put_varint(&mut buf, tuples.len() as u64);
    let mut scratch = BytesMut::with_capacity(64);
    for t in tuples {
        put_tuple(&mut scratch, t);
        put_varint(&mut buf, scratch.len() as u64);
        buf.put_slice(&scratch);
        scratch.clear();
    }
    buf.freeze()
}

/// Builds a batch frame from tuples that are already individually
/// encoded — a memcpy per tuple instead of a re-encoding tree walk.
pub fn frame_encoded_batch<'a, I>(encoded: I) -> Bytes
where
    I: IntoIterator<Item = &'a Bytes>,
    I::IntoIter: ExactSizeIterator,
{
    let iter = encoded.into_iter();
    let mut buf = BytesMut::with_capacity(8);
    put_varint(&mut buf, iter.len() as u64);
    for part in iter {
        put_varint(&mut buf, part.len() as u64);
        buf.put_slice(part);
    }
    buf.freeze()
}

/// LEB128 unsigned varint (7 bits per byte, high bit = continuation).
fn put_varint(buf: &mut BytesMut, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(0),
        Value::Str(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        Value::Real(r) => {
            buf.put_u8(2);
            buf.put_f64_le(*r);
        }
        Value::Int(i) => {
            buf.put_u8(3);
            buf.put_i64_le(*i);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
        Value::Record(record) => {
            buf.put_u8(5);
            buf.put_u32_le(record.len() as u32);
            for (name, v) in record.iter() {
                put_str(buf, name);
                put_value(buf, v);
            }
        }
        Value::Sequence(items) => {
            buf.put_u8(6);
            buf.put_u32_le(items.len() as u32);
            for v in items {
                put_value(buf, v);
            }
        }
        Value::Bag(items) => {
            buf.put_u8(7);
            buf.put_u32_le(items.len() as u32);
            for v in items {
                put_value(buf, v);
            }
        }
    }
}

fn put_tuple(buf: &mut BytesMut, tuple: &Tuple) {
    buf.put_u32_le(tuple.arity() as u32);
    for v in tuple.values() {
        put_value(buf, v);
    }
}

fn put_arg(buf: &mut BytesMut, arg: &ArgExpr) {
    match arg {
        ArgExpr::Col(i) => {
            buf.put_u8(0);
            buf.put_u32_le(*i as u32);
        }
        ArgExpr::Const(v) => {
            buf.put_u8(1);
            put_value(buf, v);
        }
    }
}

fn put_args(buf: &mut BytesMut, args: &[ArgExpr]) {
    buf.put_u32_le(args.len() as u32);
    for a in args {
        put_arg(buf, a);
    }
}

fn put_plan_op(buf: &mut BytesMut, op: &PlanOp) {
    match op {
        PlanOp::Unit => buf.put_u8(0),
        PlanOp::Param { arity } => {
            buf.put_u8(1);
            buf.put_u32_le(*arity as u32);
        }
        PlanOp::ApplyOwf {
            owf,
            args,
            output_arity,
            input,
        } => {
            buf.put_u8(2);
            put_str(buf, owf);
            put_args(buf, args);
            buf.put_u32_le(*output_arity as u32);
            put_plan_op(buf, input);
        }
        PlanOp::ApplyFunction {
            function,
            args,
            output_arity,
            input,
        } => {
            buf.put_u8(3);
            put_str(buf, function);
            put_args(buf, args);
            buf.put_u32_le(*output_arity as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Extend { exprs, input } => {
            buf.put_u8(4);
            put_args(buf, exprs);
            put_plan_op(buf, input);
        }
        PlanOp::Project { columns, input } => {
            buf.put_u8(5);
            buf.put_u32_le(columns.len() as u32);
            for c in columns {
                buf.put_u32_le(*c as u32);
            }
            put_plan_op(buf, input);
        }
        PlanOp::FfApply { pf, fanout, input } => {
            buf.put_u8(6);
            put_plan_function(buf, pf);
            buf.put_u32_le(*fanout as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Sort { keys, input } => {
            buf.put_u8(8);
            buf.put_u32_le(keys.len() as u32);
            for (col, desc) in keys {
                buf.put_u32_le(*col as u32);
                buf.put_u8(u8::from(*desc));
            }
            put_plan_op(buf, input);
        }
        PlanOp::Distinct { input } => {
            buf.put_u8(9);
            put_plan_op(buf, input);
        }
        PlanOp::Limit { count, input } => {
            buf.put_u8(10);
            buf.put_u32_le(*count as u32);
            put_plan_op(buf, input);
        }
        PlanOp::Count { input } => {
            buf.put_u8(11);
            put_plan_op(buf, input);
        }
        PlanOp::GroupBy {
            key_count,
            aggs,
            input,
        } => {
            buf.put_u8(12);
            buf.put_u32_le(*key_count as u32);
            buf.put_u32_le(aggs.len() as u32);
            for (func, arg) in aggs {
                buf.put_u8(agg_code(*func));
                match arg {
                    Some(col) => {
                        buf.put_u8(1);
                        buf.put_u32_le(*col as u32);
                    }
                    None => buf.put_u8(0),
                }
            }
            put_plan_op(buf, input);
        }
        PlanOp::AffApply { pf, config, input } => {
            buf.put_u8(7);
            put_plan_function(buf, pf);
            buf.put_u32_le(config.add_step as u32);
            buf.put_f64_le(config.threshold);
            buf.put_u8(u8::from(config.drop_enabled));
            buf.put_u32_le(config.init_fanout as u32);
            buf.put_u32_le(config.max_fanout as u32);
            put_plan_op(buf, input);
        }
    }
}

fn put_plan_function(buf: &mut BytesMut, pf: &PlanFunction) {
    put_str(buf, &pf.name);
    buf.put_u32_le(pf.param_arity as u32);
    buf.put_u32_le(pf.output_arity as u32);
    put_plan_op(buf, &pf.body);
}

// ---------------------------------------------------------------- decode --

/// Deserializes a plan function received from a parent process.
pub fn decode_plan_function(mut bytes: Bytes) -> CoreResult<PlanFunction> {
    let pf = get_plan_function(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(pf)
}

/// Deserializes a tuple.
pub fn decode_tuple(mut bytes: Bytes) -> CoreResult<Tuple> {
    let t = get_tuple(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(t)
}

/// Deserializes a batch frame produced by [`encode_tuple_batch`] or
/// [`frame_encoded_batch`].
pub fn decode_tuple_batch(mut bytes: Bytes) -> CoreResult<Vec<Tuple>> {
    let n = get_varint(&mut bytes)?;
    if n > u32::MAX as u64 {
        return Err(CoreError::Wire(format!("absurd batch count {n}")));
    }
    let mut tuples = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        let len = get_varint(&mut bytes)? as usize;
        need(&bytes, len)?;
        let mut part = bytes.copy_to_bytes(len);
        let t = get_tuple(&mut part)?;
        if part.has_remaining() {
            return Err(CoreError::Wire(format!(
                "{} trailing bytes inside batch entry",
                part.remaining()
            )));
        }
        tuples.push(t);
    }
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(tuples)
}

/// Splits a batch frame into the per-tuple encodings it carries without
/// decoding them — zero-copy slices of the original frame. Each returned
/// `Bytes` equals what [`encode_tuple`] produced for that tuple, so the
/// slices can key per-parameter memo lookups ([`crate::cache`]) against
/// parent-side `encode_tuple` output byte-for-byte.
pub fn split_tuple_batch(mut bytes: Bytes) -> CoreResult<Vec<Bytes>> {
    let n = get_varint(&mut bytes)?;
    if n > u32::MAX as u64 {
        return Err(CoreError::Wire(format!("absurd batch count {n}")));
    }
    let mut parts = Vec::with_capacity((n as usize).min(4096));
    for _ in 0..n {
        let len = get_varint(&mut bytes)? as usize;
        need(&bytes, len)?;
        parts.push(bytes.copy_to_bytes(len));
    }
    if bytes.has_remaining() {
        return Err(CoreError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(parts)
}

fn need(buf: &Bytes, n: usize) -> CoreResult<()> {
    if buf.remaining() < n {
        Err(CoreError::Wire(format!(
            "needed {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut Bytes) -> CoreResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_varint(buf: &mut Bytes) -> CoreResult<u64> {
    let mut n = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = get_u8(buf)?;
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical padding like 0x80 0x00.
            if byte == 0 && shift != 0 {
                return Err(CoreError::Wire("non-canonical varint".into()));
            }
            return Ok(n);
        }
    }
    Err(CoreError::Wire("varint longer than 10 bytes".into()))
}

fn get_u32(buf: &mut Bytes) -> CoreResult<usize> {
    need(buf, 4)?;
    Ok(buf.get_u32_le() as usize)
}

fn get_f64(buf: &mut Bytes) -> CoreResult<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

fn get_str(buf: &mut Bytes) -> CoreResult<String> {
    let len = get_u32(buf)?;
    need(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CoreError::Wire("invalid UTF-8".into()))
}

fn get_value(buf: &mut Bytes) -> CoreResult<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::from(get_str(buf)?)),
        2 => Ok(Value::Real(get_f64(buf)?)),
        3 => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        4 => Ok(Value::Bool(get_u8(buf)? != 0)),
        5 => {
            let n = get_u32(buf)?;
            let mut record = Record::new();
            for _ in 0..n {
                let name = get_str(buf)?;
                let value = get_value(buf)?;
                record.set(name, value);
            }
            Ok(Value::Record(record))
        }
        6 => {
            let n = get_u32(buf)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Ok(Value::Sequence(items))
        }
        7 => {
            let n = get_u32(buf)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Ok(Value::Bag(items))
        }
        tag => Err(CoreError::Wire(format!("unknown value tag {tag}"))),
    }
}

fn get_tuple(buf: &mut Bytes) -> CoreResult<Tuple> {
    let n = get_u32(buf)?;
    let mut values = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        values.push(get_value(buf)?);
    }
    Ok(Tuple::new(values))
}

fn get_arg(buf: &mut Bytes) -> CoreResult<ArgExpr> {
    match get_u8(buf)? {
        0 => Ok(ArgExpr::Col(get_u32(buf)?)),
        1 => Ok(ArgExpr::Const(get_value(buf)?)),
        tag => Err(CoreError::Wire(format!("unknown arg tag {tag}"))),
    }
}

fn get_args(buf: &mut Bytes) -> CoreResult<Vec<ArgExpr>> {
    let n = get_u32(buf)?;
    let mut args = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        args.push(get_arg(buf)?);
    }
    Ok(args)
}

fn get_plan_op(buf: &mut Bytes) -> CoreResult<PlanOp> {
    match get_u8(buf)? {
        0 => Ok(PlanOp::Unit),
        1 => Ok(PlanOp::Param {
            arity: get_u32(buf)?,
        }),
        2 => {
            let owf = get_str(buf)?;
            let args = get_args(buf)?;
            let output_arity = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::ApplyOwf {
                owf,
                args,
                output_arity,
                input,
            })
        }
        3 => {
            let function = get_str(buf)?;
            let args = get_args(buf)?;
            let output_arity = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::ApplyFunction {
                function,
                args,
                output_arity,
                input,
            })
        }
        4 => {
            let exprs = get_args(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Extend { exprs, input })
        }
        5 => {
            let n = get_u32(buf)?;
            let mut columns = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                columns.push(get_u32(buf)?);
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Project { columns, input })
        }
        6 => {
            let pf = get_plan_function(buf)?;
            let fanout = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::FfApply { pf, fanout, input })
        }
        7 => {
            let pf = get_plan_function(buf)?;
            let config = AdaptiveConfig {
                add_step: get_u32(buf)?,
                threshold: get_f64(buf)?,
                drop_enabled: get_u8(buf)? != 0,
                init_fanout: get_u32(buf)?,
                max_fanout: get_u32(buf)?,
            };
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::AffApply { pf, config, input })
        }
        8 => {
            let n = get_u32(buf)?;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let col = get_u32(buf)?;
                let desc = get_u8(buf)? != 0;
                keys.push((col, desc));
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Sort { keys, input })
        }
        9 => {
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Distinct { input })
        }
        10 => {
            let count = get_u32(buf)?;
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Limit { count, input })
        }
        11 => {
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::Count { input })
        }
        12 => {
            let key_count = get_u32(buf)?;
            let n = get_u32(buf)?;
            let mut aggs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let func = agg_from_code(get_u8(buf)?)?;
                let arg = match get_u8(buf)? {
                    0 => None,
                    1 => Some(get_u32(buf)?),
                    tag => return Err(CoreError::Wire(format!("bad agg-arg tag {tag}"))),
                };
                aggs.push((func, arg));
            }
            let input = Box::new(get_plan_op(buf)?);
            Ok(PlanOp::GroupBy {
                key_count,
                aggs,
                input,
            })
        }
        tag => Err(CoreError::Wire(format!("unknown plan-op tag {tag}"))),
    }
}

fn agg_code(func: wsmed_sql::AggFunc) -> u8 {
    match func {
        wsmed_sql::AggFunc::Count => 0,
        wsmed_sql::AggFunc::Sum => 1,
        wsmed_sql::AggFunc::Min => 2,
        wsmed_sql::AggFunc::Max => 3,
        wsmed_sql::AggFunc::Avg => 4,
    }
}

fn agg_from_code(code: u8) -> CoreResult<wsmed_sql::AggFunc> {
    Ok(match code {
        0 => wsmed_sql::AggFunc::Count,
        1 => wsmed_sql::AggFunc::Sum,
        2 => wsmed_sql::AggFunc::Min,
        3 => wsmed_sql::AggFunc::Max,
        4 => wsmed_sql::AggFunc::Avg,
        other => return Err(CoreError::Wire(format!("unknown aggregate code {other}"))),
    })
}

fn get_plan_function(buf: &mut Bytes) -> CoreResult<PlanFunction> {
    let name = get_str(buf)?;
    let param_arity = get_u32(buf)?;
    let output_arity = get_u32(buf)?;
    let body = Box::new(get_plan_op(buf)?);
    Ok(PlanFunction {
        name,
        param_arity,
        body,
        output_arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_pf() -> PlanFunction {
        PlanFunction {
            name: "PF1".into(),
            param_arity: 1,
            output_arity: 2,
            body: Box::new(PlanOp::ApplyFunction {
                function: "concat".into(),
                args: vec![ArgExpr::Col(0), ArgExpr::Const(Value::str(", "))],
                output_arity: 1,
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "GetPlacesWithin".into(),
                    args: vec![
                        ArgExpr::Const(Value::str("Atlanta")),
                        ArgExpr::Col(0),
                        ArgExpr::Const(Value::Real(15.0)),
                        ArgExpr::Const(Value::str("City")),
                    ],
                    output_arity: 3,
                    input: Box::new(PlanOp::Param { arity: 1 }),
                }),
            }),
        }
    }

    #[test]
    fn plan_function_roundtrip() {
        let pf = sample_pf();
        let bytes = encode_plan_function(&pf);
        let back = decode_plan_function(bytes).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn nested_ff_roundtrip() {
        let inner = sample_pf();
        let outer = PlanFunction {
            name: "PF0".into(),
            param_arity: 1,
            output_arity: 2,
            body: Box::new(PlanOp::FfApply {
                pf: inner,
                fanout: 4,
                input: Box::new(PlanOp::Param { arity: 1 }),
            }),
        };
        let back = decode_plan_function(encode_plan_function(&outer)).unwrap();
        assert_eq!(back, outer);
    }

    #[test]
    fn aff_roundtrip_preserves_config() {
        let pf = PlanFunction {
            name: "A".into(),
            param_arity: 0,
            output_arity: 0,
            body: Box::new(PlanOp::AffApply {
                pf: sample_pf(),
                config: AdaptiveConfig {
                    add_step: 4,
                    threshold: 0.1,
                    drop_enabled: true,
                    init_fanout: 2,
                    max_fanout: 9,
                },
                input: Box::new(PlanOp::Unit),
            }),
        };
        let back = decode_plan_function(encode_plan_function(&pf)).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn sort_distinct_limit_roundtrip() {
        let pf = PlanFunction {
            name: "T".into(),
            param_arity: 0,
            output_arity: 2,
            body: Box::new(PlanOp::Limit {
                count: 10,
                input: Box::new(PlanOp::Sort {
                    keys: vec![(1, true), (0, false)],
                    input: Box::new(PlanOp::Distinct {
                        input: Box::new(PlanOp::Unit),
                    }),
                }),
            }),
        };
        let back = decode_plan_function(encode_plan_function(&pf)).unwrap();
        assert_eq!(back, pf);
    }

    #[test]
    fn truncated_bytes_error() {
        let bytes = encode_plan_function(&sample_pf());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(
                decode_plan_function(truncated).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut raw = encode_plan_function(&sample_pf()).to_vec();
        raw.push(0);
        assert!(decode_plan_function(Bytes::from(raw)).is_err());
    }

    #[test]
    fn garbage_tag_error() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let mut raw = encode_tuple(&t).to_vec();
        raw[4] = 250; // value tag position
        assert!(decode_tuple(Bytes::from(raw)).is_err());
    }

    fn sample_batch() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::str("Atlanta")]),
            Tuple::new(vec![]),
            Tuple::new(vec![Value::Real(15.0), Value::Null, Value::Bool(true)]),
        ]
    }

    #[test]
    fn tuple_batch_roundtrip() {
        let tuples = sample_batch();
        let frame = encode_tuple_batch(&tuples);
        assert_eq!(decode_tuple_batch(frame).unwrap(), tuples);
        assert_eq!(decode_tuple_batch(encode_tuple_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn framed_encoded_batch_matches_direct_encoding() {
        let tuples = sample_batch();
        let parts: Vec<Bytes> = tuples.iter().map(encode_tuple).collect();
        assert_eq!(frame_encoded_batch(&parts), encode_tuple_batch(&tuples));
    }

    #[test]
    fn split_batch_yields_per_tuple_encodings() {
        let tuples = sample_batch();
        let frame = encode_tuple_batch(&tuples);
        let parts = split_tuple_batch(frame).unwrap();
        assert_eq!(parts.len(), tuples.len());
        for (part, t) in parts.iter().zip(&tuples) {
            assert_eq!(part, &encode_tuple(t));
        }
        assert!(split_tuple_batch(encode_tuple_batch(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_truncation_errors() {
        let frame = encode_tuple_batch(&sample_batch());
        for cut in 0..frame.len() {
            assert!(
                decode_tuple_batch(frame.slice(0..cut)).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn batch_trailing_and_garbage_errors() {
        let mut raw = encode_tuple_batch(&sample_batch()).to_vec();
        raw.push(0);
        assert!(decode_tuple_batch(Bytes::from(raw.clone())).is_err());
        raw.pop();
        raw[0] = 0xFF; // claim a huge continuation-heavy count
        for _ in 0..10 {
            raw.insert(1, 0xFF);
        }
        assert!(decode_tuple_batch(Bytes::from(raw)).is_err());
    }

    #[test]
    fn batch_entry_length_mismatch_errors() {
        // A per-tuple length that overclaims into the next entry must fail
        // the inner trailing-bytes check, not silently misparse.
        let tuples = sample_batch();
        let mut raw = encode_tuple_batch(&tuples).to_vec();
        raw[1] += 1; // first entry's varint length (count is 1 byte here)
        raw.push(0); // keep the outer frame long enough
        assert!(decode_tuple_batch(Bytes::from(raw)).is_err());
    }

    // ---- property tests --------------------------------------------------

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            "[ -~]{0,24}".prop_map(Value::from),
            any::<f64>().prop_map(Value::Real),
            any::<i64>().prop_map(Value::Int),
            any::<bool>().prop_map(Value::Bool),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Sequence),
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Bag),
                proptest::collection::vec(("[a-z]{1,8}", inner), 0..4).prop_map(|fields| {
                    let mut r = Record::new();
                    for (k, v) in fields {
                        r.set(k, v);
                    }
                    Value::Record(r)
                }),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_tuple_roundtrip(values in proptest::collection::vec(value_strategy(), 0..6)) {
            let t = Tuple::new(values);
            let back = decode_tuple(encode_tuple(&t)).unwrap();
            // NaN != NaN under PartialEq; compare via total ordering.
            prop_assert_eq!(back.total_cmp(&t), std::cmp::Ordering::Equal);
        }

        #[test]
        fn prop_decoder_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_plan_function(Bytes::from(raw.clone()));
            let _ = decode_tuple(Bytes::from(raw.clone()));
            let _ = decode_tuple_batch(Bytes::from(raw));
        }

        #[test]
        fn prop_tuple_batch_roundtrip(
            batch in proptest::collection::vec(
                proptest::collection::vec(value_strategy(), 0..4),
                0..12,
            )
        ) {
            let tuples: Vec<Tuple> = batch.into_iter().map(Tuple::new).collect();
            let back = decode_tuple_batch(encode_tuple_batch(&tuples)).unwrap();
            prop_assert_eq!(back.len(), tuples.len());
            for (b, t) in back.iter().zip(&tuples) {
                prop_assert_eq!(b.total_cmp(t), std::cmp::Ordering::Equal);
            }
            // Framing pre-encoded tuples is byte-identical to direct encoding.
            let parts: Vec<Bytes> = tuples.iter().map(encode_tuple).collect();
            prop_assert_eq!(frame_encoded_batch(&parts), encode_tuple_batch(&tuples));
        }
    }
}
