//! Execution plans: the γ-algebra with `FF_APPLYP` / `AFF_APPLYP`.
//!
//! A plan is a tree (in practice a chain) of operators over tuple streams.
//! The tuple-layout convention mirrors the dependent-join semantics: every
//! apply operator **appends** its result columns to the input tuple, so a
//! downstream operator can reference any upstream column by position.
//! A final [`PlanOp::Project`] narrows to the query's head.

use std::fmt;

use wsmed_sql::AggFunc;
use wsmed_store::Value;

/// An argument expression inside an apply operator: a column of the
/// incoming tuple or a constant from the query.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgExpr {
    /// Column index into the incoming tuple.
    Col(usize),
    /// A constant.
    Const(Value),
}

impl fmt::Display for ArgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgExpr::Col(i) => write!(f, "#{i}"),
            ArgExpr::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Configuration of the adaptive `AFF_APPLYP` operator (paper §V.A).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Children added per *add stage* (the paper's `p`).
    pub add_step: usize,
    /// Relative improvement in per-tuple time required to rerun the add
    /// stage (the paper used 25%, i.e. `0.25`).
    pub threshold: f64,
    /// Whether the *drop stage* is enabled when per-tuple time worsens.
    pub drop_enabled: bool,
    /// Initial fanout of the binary tree (the paper always starts at 2).
    pub init_fanout: usize,
    /// Hard cap on children per node, bounding runaway growth.
    pub max_fanout: usize,
    /// Re-arm threshold for converged operators (`None` = the paper's
    /// one-shot convergence, byte-identical behavior). When set, a
    /// converged `AFF_APPLYP` keeps monitoring its per-tuple time: a
    /// relative deviation beyond this fraction of the converged baseline
    /// (either direction — a provider browned out, or freed capacity
    /// rejoined) resets the operator to `init_fanout` and restarts
    /// adaptation, so the fanout tracks a *moving* optimum.
    pub rearm_factor: Option<f64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        // The paper's best overall setting: p=2, 25% threshold, no drop.
        AdaptiveConfig {
            add_step: 2,
            threshold: 0.25,
            drop_enabled: false,
            init_fanout: 2,
            max_fanout: 16,
            rearm_factor: None,
        }
    }
}

/// What `AFF_APPLYP` does at a monitoring-cycle boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptDecision {
    /// Run an add stage: spawn this many children.
    Add(usize),
    /// Run a drop stage: remove one child and its subtree.
    DropOne,
    /// Converged: keep the current tree and stop monitoring decisions.
    Stop,
}

impl AdaptiveConfig {
    /// The §V.A decision rule, as a pure function of the monitoring state:
    ///
    /// * after the **first** cycle (`prev_t` is `None`), run an add stage;
    /// * if the per-tuple time `t` improved on `prev_t` by more than
    ///   `threshold`, rerun the add stage;
    /// * if `t` worsened, run a drop stage when enabled (but a second
    ///   worsening right after a drop stops adaptation), otherwise stop;
    /// * an improvement below the threshold means convergence: stop.
    ///
    /// `alive` is the current child count; add stages are clamped to
    /// `max_fanout` and an empty add stage converts to `Stop`.
    pub fn decide(
        &self,
        prev_t: Option<f64>,
        t: f64,
        alive: usize,
        last_was_drop: bool,
    ) -> AdaptDecision {
        let add = || {
            let room = self.max_fanout.saturating_sub(alive);
            match self.add_step.min(room) {
                0 => AdaptDecision::Stop,
                n => AdaptDecision::Add(n),
            }
        };
        match prev_t {
            None => add(),
            Some(prev) if t < prev * (1.0 - self.threshold) => add(),
            Some(prev) if t > prev => {
                if self.drop_enabled && alive > 1 && !last_was_drop {
                    AdaptDecision::DropOne
                } else {
                    AdaptDecision::Stop
                }
            }
            Some(_) => AdaptDecision::Stop,
        }
    }
}

/// Semi-join parameter pruning pushed into a plan function.
///
/// Attached by the cost-based planner ([`crate::Wsmed::annotate_prune`]):
/// the parent drops any parameter tuple whose wire encoding is in
/// `drop_params` *before* shipping it to children — those parameters were
/// observed to evaluate to the empty stream in an earlier run, and the
/// concatenated result stream is unchanged when deterministically-empty
/// parameters are skipped. `section_key` names the section stably across
/// fanout changes so child processes can keep feeding observations back.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruneSpec {
    /// Stable digest of the section's own stages (fanouts excluded), the
    /// key under which empty-parameter observations accumulate.
    pub section_key: String,
    /// Wire-encoded parameter tuples known to produce no rows.
    pub drop_params: Vec<bytes::Bytes>,
}

/// A parameterized sub-plan shipped to child query processes.
///
/// `PF1(Charstring st1) -> Stream of Charstring str` in the paper's
/// notation: the body references the parameter tuple through
/// [`PlanOp::Param`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFunction {
    /// Name, e.g. `"PF1"`.
    pub name: String,
    /// Arity of the parameter tuple.
    pub param_arity: usize,
    /// The body, evaluated once per parameter tuple.
    pub body: Box<PlanOp>,
    /// Arity of the tuples the body emits.
    pub output_arity: usize,
    /// Semi-join pruning annotation, `None` under the paper's heuristic
    /// plans (the default — zero overhead, byte-identical wire encoding
    /// aside from the presence flag).
    pub prune: Option<PruneSpec>,
}

/// One operator of the execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Produces a single empty tuple — the start of a chain.
    Unit,
    /// Produces the parameter tuple of the enclosing plan function.
    Param {
        /// Arity of the parameter tuple.
        arity: usize,
    },
    /// γ over an OWF: for each input tuple, call the web service operation
    /// and append each flattened result row (a dependent join step).
    ApplyOwf {
        /// Registered OWF name.
        owf: String,
        /// Input arguments, in the operation's parameter order.
        args: Vec<ArgExpr>,
        /// Number of columns the OWF appends.
        output_arity: usize,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// γ over a helping function (`concat`, `getzipcode`, `equal`).
    ApplyFunction {
        /// Function name in the store registry.
        function: String,
        /// Input arguments.
        args: Vec<ArgExpr>,
        /// Number of columns the function appends (0 for pure filters).
        output_arity: usize,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Appends computed columns (constants or copies) to each tuple.
    Extend {
        /// Expressions appended in order.
        exprs: Vec<ArgExpr>,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Projects to the given columns (the head of the query).
    Project {
        /// Columns to keep, in output order.
        columns: Vec<usize>,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Sorts the (materialized) stream — `ORDER BY`, coordinator-side.
    Sort {
        /// `(column, descending)` sort keys, most significant first.
        keys: Vec<(usize, bool)>,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Removes duplicate tuples — `SELECT DISTINCT`, coordinator-side.
    Distinct {
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Truncates the stream — `LIMIT`, coordinator-side.
    Limit {
        /// Maximum number of tuples to emit.
        count: usize,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Collapses the stream into its cardinality — `COUNT(*)`.
    Count {
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// Groups by the leading `key_count` columns and computes aggregates —
    /// `GROUP BY`, coordinator-side. Emits `keys ⊕ aggregate values`.
    /// With `key_count == 0` this is a global aggregate (always one row).
    GroupBy {
        /// Leading input columns that form the group key.
        key_count: usize,
        /// Aggregates: function plus the input column of its argument
        /// (`None` only for `COUNT(*)`).
        aggs: Vec<(AggFunc, Option<usize>)>,
        /// Upstream operator.
        input: Box<PlanOp>,
    },
    /// `FF_APPLYP(pf, fo, input)` — ship `pf` to `fanout` child processes
    /// and stream the input tuples to them as parameter tuples, first
    /// finished first served (§III.A).
    FfApply {
        /// The shipped plan function.
        pf: PlanFunction,
        /// Number of child query processes.
        fanout: usize,
        /// The parameter-tuple stream.
        input: Box<PlanOp>,
    },
    /// `AFF_APPLYP(pf, cfg, input)` — like `FfApply` but with adaptive,
    /// locally monitored fanout (§V.A).
    AffApply {
        /// The shipped plan function.
        pf: PlanFunction,
        /// Adaptation parameters.
        config: AdaptiveConfig,
        /// The parameter-tuple stream.
        input: Box<PlanOp>,
    },
}

impl PlanOp {
    /// The upstream operator, if any.
    pub fn input(&self) -> Option<&PlanOp> {
        match self {
            PlanOp::Unit | PlanOp::Param { .. } => None,
            PlanOp::ApplyOwf { input, .. }
            | PlanOp::ApplyFunction { input, .. }
            | PlanOp::Extend { input, .. }
            | PlanOp::Project { input, .. }
            | PlanOp::Sort { input, .. }
            | PlanOp::Distinct { input }
            | PlanOp::Limit { input, .. }
            | PlanOp::Count { input }
            | PlanOp::GroupBy { input, .. }
            | PlanOp::FfApply { input, .. }
            | PlanOp::AffApply { input, .. } => Some(input),
        }
    }

    /// The upstream operator, mutably, if any.
    pub fn input_mut(&mut self) -> Option<&mut PlanOp> {
        match self {
            PlanOp::Unit | PlanOp::Param { .. } => None,
            PlanOp::ApplyOwf { input, .. }
            | PlanOp::ApplyFunction { input, .. }
            | PlanOp::Extend { input, .. }
            | PlanOp::Project { input, .. }
            | PlanOp::Sort { input, .. }
            | PlanOp::Distinct { input }
            | PlanOp::Limit { input, .. }
            | PlanOp::Count { input }
            | PlanOp::GroupBy { input, .. }
            | PlanOp::FfApply { input, .. }
            | PlanOp::AffApply { input, .. } => Some(input),
        }
    }

    /// Arity of the tuples this operator produces.
    pub fn output_arity(&self) -> usize {
        match self {
            PlanOp::Unit => 0,
            PlanOp::Param { arity } => *arity,
            PlanOp::ApplyOwf {
                output_arity,
                input,
                ..
            }
            | PlanOp::ApplyFunction {
                output_arity,
                input,
                ..
            } => input.output_arity() + output_arity,
            PlanOp::Extend { exprs, input } => input.output_arity() + exprs.len(),
            PlanOp::Project { columns, .. } => columns.len(),
            PlanOp::Sort { input, .. }
            | PlanOp::Distinct { input }
            | PlanOp::Limit { input, .. } => input.output_arity(),
            PlanOp::Count { .. } => 1,
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => key_count + aggs.len(),
            PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => pf.output_arity,
        }
    }

    /// Number of operators in this plan (including plan-function bodies).
    pub fn size(&self) -> usize {
        let own = 1;
        let nested = match self {
            PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => pf.body.size(),
            _ => 0,
        };
        own + nested + self.input().map_or(0, PlanOp::size)
    }

    /// Depth of `FF_APPLYP`/`AFF_APPLYP` nesting: the number of process-tree
    /// levels below the coordinator.
    pub fn parallel_depth(&self) -> usize {
        let nested = match self {
            PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => {
                1 + pf.body.parallel_depth()
            }
            _ => 0,
        };
        nested.max(self.input().map_or(0, PlanOp::parallel_depth))
    }

    /// Web service operations invoked anywhere in this plan, in
    /// bottom-up order.
    pub fn owf_calls(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(op: &'a PlanOp, out: &mut Vec<&'a str>) {
            if let Some(input) = op.input() {
                walk(input, out);
            }
            match op {
                PlanOp::ApplyOwf { owf, .. } => out.push(owf),
                PlanOp::FfApply { pf, .. } | PlanOp::AffApply { pf, .. } => {
                    walk(&pf.body, out);
                }
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PlanOp::Unit => writeln!(f, "{pad}unit"),
            PlanOp::Param { arity } => writeln!(f, "{pad}param/{arity}"),
            PlanOp::ApplyOwf { owf, args, .. } => {
                writeln!(f, "{pad}γ {owf}({})", join_args(args))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::ApplyFunction { function, args, .. } => {
                writeln!(f, "{pad}γ {function}({})", join_args(args))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Extend { exprs, .. } => {
                writeln!(f, "{pad}extend({})", join_args(exprs))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Project { columns, .. } => {
                let cols: Vec<String> = columns.iter().map(|c| format!("#{c}")).collect();
                writeln!(f, "{pad}π [{}]", cols.join(", "))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Sort { keys, .. } => {
                let cols: Vec<String> = keys
                    .iter()
                    .map(|(c, desc)| format!("#{c}{}", if *desc { " desc" } else { "" }))
                    .collect();
                writeln!(f, "{pad}sort [{}]", cols.join(", "))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Distinct { .. } => {
                writeln!(f, "{pad}distinct")?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Limit { count, .. } => {
                writeln!(f, "{pad}limit {count}")?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::Count { .. } => {
                writeln!(f, "{pad}count")?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => {
                let parts: Vec<String> = aggs
                    .iter()
                    .map(|(func, arg)| match arg {
                        Some(col) => format!("{}(#{col})", func.sql()),
                        None => format!("{}(*)", func.sql()),
                    })
                    .collect();
                writeln!(f, "{pad}group by #0..#{key_count} [{}]", parts.join(", "))?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::FfApply { pf, fanout, .. } => {
                writeln!(f, "{pad}FF_γ {} fanout={fanout}", pf.name)?;
                writeln!(f, "{pad}  [{}(param/{}) ->]", pf.name, pf.param_arity)?;
                pf.body.fmt_indented(f, indent + 2)?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
            PlanOp::AffApply { pf, config, .. } => {
                writeln!(
                    f,
                    "{pad}AFF_γ {} p={} threshold={} drop={}",
                    pf.name, config.add_step, config.threshold, config.drop_enabled
                )?;
                writeln!(f, "{pad}  [{}(param/{}) ->]", pf.name, pf.param_arity)?;
                pf.body.fmt_indented(f, indent + 2)?;
                self.input().unwrap().fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

fn join_args(args: &[ArgExpr]) -> String {
    args.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// A compiled query: the root operator plus the output column names.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Root operator (executed in the coordinator process `q0`).
    pub root: PlanOp,
    /// Output column names, parallel to the projected columns.
    pub column_names: Vec<String>,
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "columns: [{}]", self.column_names.join(", "))?;
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chain() -> PlanOp {
        PlanOp::Project {
            columns: vec![1],
            input: Box::new(PlanOp::ApplyOwf {
                owf: "GetInfoByState".into(),
                args: vec![ArgExpr::Col(0)],
                output_arity: 1,
                input: Box::new(PlanOp::ApplyOwf {
                    owf: "GetAllStates".into(),
                    args: vec![],
                    output_arity: 1,
                    input: Box::new(PlanOp::Unit),
                }),
            }),
        }
    }

    #[test]
    fn arity_accumulates_through_applies() {
        let plan = sample_chain();
        assert_eq!(plan.output_arity(), 1);
        let inner = plan.input().unwrap();
        assert_eq!(inner.output_arity(), 2); // state ⊕ zipstr
    }

    #[test]
    fn owf_calls_bottom_up() {
        assert_eq!(
            sample_chain().owf_calls(),
            vec!["GetAllStates", "GetInfoByState"]
        );
    }

    #[test]
    fn size_and_depth() {
        let plan = sample_chain();
        assert_eq!(plan.size(), 4);
        assert_eq!(plan.parallel_depth(), 0);

        let pf = PlanFunction {
            name: "PF1".into(),
            param_arity: 1,
            body: Box::new(PlanOp::ApplyOwf {
                owf: "GetInfoByState".into(),
                args: vec![ArgExpr::Col(0)],
                output_arity: 1,
                input: Box::new(PlanOp::Param { arity: 1 }),
            }),
            output_arity: 2,
            prune: None,
        };
        let parallel = PlanOp::FfApply {
            pf,
            fanout: 3,
            input: Box::new(PlanOp::Unit),
        };
        assert_eq!(parallel.parallel_depth(), 1);
        assert_eq!(parallel.size(), 4); // FF + Unit + body's 2 ops
        assert_eq!(parallel.output_arity(), 2);
    }

    #[test]
    fn display_is_indented_and_mentions_operators() {
        let s = sample_chain().to_string();
        assert!(s.contains("π [#1]"));
        assert!(s.contains("γ GetInfoByState(#0)"));
        assert!(s.contains("unit"));
        // Lower operators are more indented.
        let pi = s.find('π').unwrap();
        let unit = s.find("unit").unwrap();
        assert!(pi < unit);
    }

    #[test]
    fn adaptive_config_default_matches_paper() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.add_step, 2);
        assert_eq!(c.threshold, 0.25);
        assert!(!c.drop_enabled);
        assert_eq!(c.init_fanout, 2);
    }

    #[test]
    fn decide_first_cycle_always_adds() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.decide(None, 1.0, 2, false), AdaptDecision::Add(2));
    }

    #[test]
    fn decide_improvement_beyond_threshold_adds_again() {
        let c = AdaptiveConfig::default(); // threshold 25%
                                           // 1.0 → 0.70 is a 30% improvement: add.
        assert_eq!(c.decide(Some(1.0), 0.70, 4, false), AdaptDecision::Add(2));
        // 1.0 → 0.80 is only 20%: converged.
        assert_eq!(c.decide(Some(1.0), 0.80, 4, false), AdaptDecision::Stop);
    }

    #[test]
    fn decide_worsening_stops_or_drops() {
        let no_drop = AdaptiveConfig::default();
        assert_eq!(
            no_drop.decide(Some(1.0), 1.2, 4, false),
            AdaptDecision::Stop
        );
        let with_drop = AdaptiveConfig {
            drop_enabled: true,
            ..Default::default()
        };
        assert_eq!(
            with_drop.decide(Some(1.0), 1.2, 4, false),
            AdaptDecision::DropOne
        );
        // A second worsening right after a drop stops adaptation.
        assert_eq!(
            with_drop.decide(Some(1.0), 1.2, 4, true),
            AdaptDecision::Stop
        );
        // Never drop the last child.
        assert_eq!(
            with_drop.decide(Some(1.0), 1.2, 1, false),
            AdaptDecision::Stop
        );
    }

    #[test]
    fn decide_respects_max_fanout() {
        let c = AdaptiveConfig {
            add_step: 4,
            max_fanout: 5,
            ..Default::default()
        };
        assert_eq!(c.decide(None, 1.0, 2, false), AdaptDecision::Add(3));
        assert_eq!(c.decide(None, 1.0, 5, false), AdaptDecision::Stop);
    }

    #[test]
    fn decide_equal_time_converges() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.decide(Some(1.0), 1.0, 4, false), AdaptDecision::Stop);
    }

    #[test]
    fn query_plan_display_lists_columns() {
        let plan = QueryPlan {
            root: sample_chain(),
            column_names: vec!["zipstr".into()],
        };
        assert!(plan.to_string().starts_with("columns: [zipstr]"));
    }
}
