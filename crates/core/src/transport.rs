//! The web-service transport abstraction.
//!
//! Operator code (γ apply, `FF_APPLYP`, `AFF_APPLYP`) never talks to a
//! concrete network; it calls a [`WsTransport`]. Production code uses
//! [`SimTransport`] over the simulated providers; operator unit tests use
//! [`MockTransport`] with scripted results and optional artificial delays.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use wsmed_services::ServiceRegistry;
use wsmed_store::{xml_to_value, Value};
use wsmed_wsdl::OwfDef;

use crate::obs::{self, TraceEventKind, TraceLog};
use crate::{CoreError, CoreResult};

/// How the mediator handles transient web-service faults
/// ([`wsmed_netsim::NetError::ServiceFault`]): each faulting call is
/// retried up to `max_attempts` total tries with a fixed model-time
/// backoff. Non-transient errors (bad requests, unknown operations) are
/// never retried. The default policy performs no retries, matching the
/// paper's behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: usize,
    /// Model seconds to wait between attempts.
    pub backoff_model_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_model_secs: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `attempts` total tries with a 0.5 model-s
    /// backoff. Zero attempts would mean "never call at all", which no
    /// caller can mean; it is clamped to a single attempt instead of
    /// panicking.
    pub fn attempts(attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            ..Default::default()
        }
    }
}

/// How `FF_APPLYP` assigns parameter tuples to child processes.
///
/// The paper's operator is *first finished*: whichever child reports
/// end-of-call first receives the next pending parameter, so slow calls
/// never block fast children. The round-robin alternative statically
/// pre-partitions the parameter stream across children — the classic
/// static-partitioning baseline the FF design improves on under skewed
/// per-call latency. Exposed as an execution-level knob for the ablation
/// bench; adaptive plans always use first-finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Paper semantics: next parameter to the first finished child.
    #[default]
    FirstFinished,
    /// Static pre-partitioning: parameter i goes to child i mod fanout.
    RoundRobin,
}

/// How parameter and result tuples are grouped into message frames
/// between a parallel operator and its child query processes.
///
/// The paper ships one tuple per message; that is the `Default` here
/// (`max_params = max_result_tuples = 1`), and it reproduces the paper's
/// behaviour exactly. Larger values amortize the per-message dispatch
/// overhead ([`wsmed_netsim::ClientCostModel::message_dispatch`]) over
/// many tuples at the price of latency: a child holds results back until
/// its flush buffer fills, the call ends, or `flush_model_secs` of model
/// time has accumulated since the buffer's first tuple — the time bound
/// keeps first-row latency honest under large `max_result_tuples`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum parameter tuples handed to an idle child in one frame.
    pub max_params: usize,
    /// Maximum result tuples a child buffers before flushing a frame.
    pub max_result_tuples: usize,
    /// Model seconds a child may hold a non-empty result buffer.
    pub flush_model_secs: f64,
    /// Capacity, in message frames, of each parent↔child mailbox.
    /// `None` derives it from `max_params` (see
    /// [`BatchPolicy::mailbox_capacity`]); `Some(n)` pins it (floored to 2
    /// so a control frame can never deadlock behind a lone data frame).
    pub mailbox_frames: Option<usize>,
    /// Ship Call/ResultBatch frames in the columnar wire format
    /// (`wire::encode_columnar_message`): whole-column encodes on the
    /// sender, zero-copy string decode on the receiver. Off by default —
    /// the row format is the paper's per-tuple semantics; either setting
    /// yields identical results and identical model-time accounting.
    pub columnar: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        // Paper semantics: every tuple is its own message.
        BatchPolicy {
            max_params: 1,
            max_result_tuples: 1,
            flush_model_secs: 0.05,
            mailbox_frames: None,
            columnar: false,
        }
    }
}

impl BatchPolicy {
    /// A symmetric policy batching up to `n` tuples in both directions.
    pub fn uniform(n: usize) -> Self {
        BatchPolicy {
            max_params: n.max(1),
            max_result_tuples: n.max(1),
            ..Default::default()
        }
    }

    /// [`BatchPolicy::uniform`] with the columnar wire format enabled.
    pub fn columnar(n: usize) -> Self {
        BatchPolicy {
            columnar: true,
            ..BatchPolicy::uniform(n)
        }
    }

    /// Capacity, in frames, of one parent→child (or child→parent) mailbox.
    ///
    /// Derived from `max_params` when unpinned: wider parameter frames mean
    /// fewer frames in flight carry the same tuple volume, so a small frame
    /// window suffices; the clamp keeps the window sane at both extremes.
    /// The floor of 2 guarantees a control frame (Install/Attach/Shutdown)
    /// plus one data frame always fit, which teardown relies on.
    pub fn mailbox_capacity(&self) -> usize {
        match self.mailbox_frames {
            Some(n) => n.max(2),
            None => self.max_params.clamp(2, 64),
        }
    }
}

/// Something that can invoke a data-providing web service operation.
pub trait WsTransport: Send + Sync {
    /// Invokes `owf`'s operation with typed argument values and returns the
    /// response converted into record/sequence values (the `cwo` built-in,
    /// paper Fig. 2 line 14).
    fn call_operation(&self, owf: &OwfDef, args: &[Value]) -> CoreResult<Value>;

    /// [`WsTransport::call_operation`] with an optional per-call model-time
    /// deadline: a call whose model latency would exceed the deadline
    /// charges exactly the deadline and fails with
    /// [`CoreError::DeadlineExceeded`]. The default (for mocks) ignores the
    /// deadline and delegates, so transports without a latency model keep
    /// their plain semantics.
    fn call_operation_ext(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
    ) -> CoreResult<Value> {
        let _ = deadline_model_secs;
        self.call_operation(owf, args)
    }

    /// [`WsTransport::call_operation_ext`] that also reports the wire
    /// bytes (request + response) the call moved, so each execution
    /// context can meter its own traffic without diffing global provider
    /// metrics (which double-counts under concurrent queries). The
    /// default (for mocks without a wire model) reports zero bytes.
    fn call_operation_metered(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
    ) -> CoreResult<(Value, u64)> {
        Ok((self.call_operation_ext(owf, args, deadline_model_secs)?, 0))
    }

    /// [`WsTransport::call_operation_metered`] pinned to a specific
    /// replica of the OWF's provider group (client-side routing). The
    /// default (for transports without a replica topology) ignores the
    /// replica name and delegates, so routing degrades to the plain call.
    fn call_operation_replica(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
        replica: &str,
    ) -> CoreResult<(Value, u64)> {
        let _ = replica;
        self.call_operation_metered(owf, args, deadline_model_secs)
    }

    /// The routable replica-group view for an OWF's provider, when the
    /// provider was scaled out into a [`wsmed_netsim::ReplicaGroup`].
    /// Building the view advances the group's topology scenario to the
    /// current model time, so the returned
    /// [`crate::router::GroupView::changes`] carries any membership events
    /// that just fired. The default (no topology) reports `None`, which
    /// keeps every non-replicated call on the historical single-provider
    /// path.
    fn group_view(&self, owf: &OwfDef) -> Option<crate::router::GroupView> {
        let _ = owf;
        None
    }

    /// The provider name an OWF's calls resolve to — the key the per-
    /// provider circuit breaker trips on. The default uses the OWF's
    /// service name; transports that know the real endpoint override it.
    fn provider_name(&self, owf: &OwfDef) -> String {
        owf.service.clone()
    }

    /// A monotone model-time clock for client-side policies (circuit-
    /// breaker cooldowns). The default (for mocks) is frozen at zero,
    /// which makes cooldowns elapse immediately.
    fn model_now(&self) -> f64 {
        0.0
    }

    /// Aggregate call metrics across all providers, for execution reports.
    /// The default (for mocks) reports nothing.
    fn metrics(&self) -> wsmed_netsim::MetricsSnapshot {
        wsmed_netsim::MetricsSnapshot::default()
    }

    /// Installs (or clears, with `None`) the trace log that provider-side
    /// events should be emitted into for the current run. The default (for
    /// mocks) ignores tracing entirely.
    fn install_trace(&self, _trace: Option<Arc<TraceLog>>) {}

    /// The calibrated planner profile for an OWF's provider — capacity and
    /// expected per-call latency at nominal request/response sizes — used
    /// to warm-start [`crate::costs::PlannerStats`] before anything has
    /// executed. The default (for mocks without a latency model) reports
    /// nothing, leaving the cost model on its own defaults.
    fn provider_profile(&self, owf: &OwfDef) -> Option<crate::costs::ProviderProfile> {
        let _ = owf;
        None
    }
}

/// Stable one-word class of a call error, carried on
/// [`TraceEventKind::WsCall`] and accepted by `trace_export --check`.
pub(crate) fn error_class(e: &CoreError) -> &'static str {
    use wsmed_netsim::NetError;
    match e {
        CoreError::Net(NetError::ServiceFault { .. }) => "fault",
        CoreError::Net(NetError::Timeout { .. }) | CoreError::DeadlineExceeded { .. } => "timeout",
        CoreError::Net(NetError::BadRequest { .. }) => "bad_request",
        CoreError::Net(NetError::UnknownOperation { .. }) => "unknown_op",
        _ => "other",
    }
}

/// Transport over the simulated service registry.
pub struct SimTransport {
    registry: ServiceRegistry,
    /// Run-scoped trace sink; [`WsTransport::install_trace`] swaps it.
    trace: RwLock<Option<Arc<TraceLog>>>,
    /// Mirrors `trace.is_some()` so the untraced hot path is one load.
    trace_on: AtomicBool,
}

impl SimTransport {
    /// Wraps a service registry.
    pub fn new(registry: ServiceRegistry) -> Self {
        SimTransport {
            registry,
            trace: RwLock::new(None),
            trace_on: AtomicBool::new(false),
        }
    }

    /// The underlying registry (for WSDL import and metrics).
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The metered call body shared by the plain and replica-pinned entry
    /// points: arity check, typed argument rendering, the registry call
    /// (optionally pinned to a replica provider), deadline mapping and the
    /// per-call trace event.
    fn dispatch_metered(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
        replica: Option<&std::sync::Arc<wsmed_netsim::Provider>>,
    ) -> CoreResult<(Value, u64)> {
        if args.len() != owf.inputs.len() {
            return Err(CoreError::InvalidPlan(format!(
                "OWF {} expects {} arguments, plan supplied {}",
                owf.name,
                owf.inputs.len(),
                args.len()
            )));
        }
        let mut rendered = Vec::with_capacity(args.len());
        for ((name, ty), value) in owf.inputs.iter().zip(args) {
            rendered.push((name.clone(), ty.value_to_text(value)?));
        }
        let response = self
            .registry
            .call_on_provider(
                &owf.wsdl_uri,
                &owf.service,
                &owf.operation,
                &rendered,
                deadline_model_secs,
                replica,
            )
            .map_err(|e| match e {
                wsmed_netsim::NetError::Timeout {
                    provider,
                    operation,
                    ..
                } => CoreError::DeadlineExceeded {
                    provider,
                    operation,
                    deadline_model_secs: deadline_model_secs.unwrap_or(f64::INFINITY),
                },
                other => CoreError::Net(other),
            });
        if self.trace_on.load(Ordering::Relaxed) {
            if let Some(tr) = self.trace.read().clone() {
                let (node, level, pf) = obs::current_proc();
                tr.emit(
                    node,
                    level,
                    &pf,
                    TraceEventKind::WsCall {
                        op: owf.operation.clone(),
                        ok: response.is_ok(),
                        err: response.as_ref().err().map(|e| error_class(e).to_owned()),
                    },
                );
            }
        }
        let (element, stats) = response?;
        let bytes = (stats.request_bytes + stats.response_bytes) as u64;
        Ok((xml_to_value(&element), bytes))
    }
}

impl WsTransport for SimTransport {
    fn call_operation(&self, owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
        self.call_operation_ext(owf, args, None)
    }

    fn call_operation_ext(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
    ) -> CoreResult<Value> {
        self.call_operation_metered(owf, args, deadline_model_secs)
            .map(|(value, _bytes)| value)
    }

    fn call_operation_metered(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
    ) -> CoreResult<(Value, u64)> {
        self.dispatch_metered(owf, args, deadline_model_secs, None)
    }

    fn call_operation_replica(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
        replica: &str,
    ) -> CoreResult<(Value, u64)> {
        let provider = self
            .registry
            .network()
            .provider(replica)
            .map_err(CoreError::Net)?;
        self.dispatch_metered(owf, args, deadline_model_secs, Some(&provider))
    }

    fn group_view(&self, owf: &OwfDef) -> Option<crate::router::GroupView> {
        let name = self.provider_name(owf);
        let group = self.registry.network().group(&name)?;
        // Advance the scripted topology to "now" and let sustained
        // saturation trigger autoscaling; both produce membership events
        // the caller traces and counts.
        let mut changes = group.poll(self.model_now());
        let saturated = {
            let active = group.active();
            !active.is_empty() && active.iter().all(|p| p.in_flight() >= p.capacity())
        };
        if let Some(change) = group.note_pressure(saturated) {
            changes.push(change);
        }
        let replicas: Vec<crate::router::ReplicaView> = group
            .active()
            .iter()
            .map(|p| crate::router::ReplicaView {
                name: p.name().to_owned(),
                in_flight: p.in_flight(),
                capacity: p.capacity(),
                latency_secs: p
                    .latency_model(&owf.operation)
                    .expected_latency(200, 1024, 1.0),
            })
            .collect();
        Some(crate::router::GroupView {
            group: name,
            replicas,
            changes,
        })
    }

    fn provider_name(&self, owf: &OwfDef) -> String {
        self.registry
            .endpoint(&owf.wsdl_uri)
            .map(|e| e.provider.name().to_owned())
            .unwrap_or_else(|_| owf.service.clone())
    }

    fn model_now(&self) -> f64 {
        self.registry.network().model_time()
    }

    fn metrics(&self) -> wsmed_netsim::MetricsSnapshot {
        self.registry.network().total_metrics()
    }

    fn install_trace(&self, trace: Option<Arc<TraceLog>>) {
        self.trace_on.store(trace.is_some(), Ordering::Relaxed);
        *self.trace.write() = trace;
    }

    fn provider_profile(&self, owf: &OwfDef) -> Option<crate::costs::ProviderProfile> {
        let endpoint = self.registry.endpoint(&owf.wsdl_uri).ok()?;
        let name = endpoint.provider.name().to_owned();
        // A replicated provider presents its *group-level* effective
        // capacity to the planner: the pooled capacity of the active
        // replicas and their capacity-weighted expected latency. The cost
        // model then prices fanout against the elastic pool, not just
        // replica 0.
        if let Some(group) = self.registry.network().group(&name) {
            let active = group.active();
            let capacity: usize = active.iter().map(|p| p.capacity()).sum();
            if capacity > 0 {
                let latency_secs = active
                    .iter()
                    .map(|p| {
                        p.capacity() as f64
                            * p.latency_model(&owf.operation)
                                .expected_latency(200, 1024, 1.0)
                    })
                    .sum::<f64>()
                    / capacity as f64;
                return Some(crate::costs::ProviderProfile {
                    provider: name,
                    capacity,
                    latency_secs,
                });
            }
        }
        // Nominal sizes: a small request and a ~1 KiB response at quiet
        // congestion — a warm-start estimate the stats layer refines from
        // observed calls.
        let latency_secs = endpoint
            .provider
            .latency_model(&owf.operation)
            .expected_latency(200, 1024, 1.0);
        Some(crate::costs::ProviderProfile {
            provider: name,
            capacity: endpoint.provider.capacity(),
            latency_secs,
        })
    }
}

/// The closure type a [`MockTransport`] dispatches to.
type Responder = Box<dyn Fn(&OwfDef, &[Value]) -> CoreResult<Value> + Send + Sync>;

/// Scripted transport for operator tests: a closure maps `(operation,
/// args)` to a response value, with an optional fixed wall-clock delay to
/// exercise concurrency.
pub struct MockTransport {
    respond: Responder,
    delay: Option<Duration>,
    calls: AtomicU64,
}

impl MockTransport {
    /// Creates a mock from a response function.
    pub fn new(
        respond: impl Fn(&OwfDef, &[Value]) -> CoreResult<Value> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(MockTransport {
            respond: Box::new(respond),
            delay: None,
            calls: AtomicU64::new(0),
        })
    }

    /// Creates a mock that also sleeps `delay` per call.
    pub fn with_delay(
        delay: Duration,
        respond: impl Fn(&OwfDef, &[Value]) -> CoreResult<Value> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(MockTransport {
            respond: Box::new(respond),
            delay: Some(delay),
            calls: AtomicU64::new(0),
        })
    }

    /// How many calls were made.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl WsTransport for MockTransport {
    fn call_operation(&self, owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        (self.respond)(owf, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use wsmed_netsim::{Network, SimConfig};
    use wsmed_services::{install_paper_services, Dataset, DatasetConfig};

    fn sim() -> SimTransport {
        let network = Network::new(SimConfig::default());
        let dataset = StdArc::new(Dataset::generate(DatasetConfig::tiny()));
        SimTransport::new(install_paper_services(network, dataset))
    }

    fn states_owf(transport: &SimTransport) -> OwfDef {
        let xml = transport
            .registry()
            .wsdl_xml(wsmed_services::GeoPlacesService::WSDL_URI)
            .unwrap();
        let doc = wsmed_wsdl::parse_wsdl(&xml).unwrap();
        OwfDef::derive(
            doc.operation("GetAllStates").unwrap(),
            &doc.service_name,
            wsmed_services::GeoPlacesService::WSDL_URI,
        )
        .unwrap()
    }

    #[test]
    fn sim_transport_calls_and_flattens() {
        let t = sim();
        let owf = states_owf(&t);
        let value = t.call_operation(&owf, &[]).unwrap();
        let rows = owf.flatten(&value).unwrap();
        assert_eq!(rows.len(), 51);
    }

    #[test]
    fn sim_transport_checks_arity() {
        let t = sim();
        let owf = states_owf(&t);
        let err = t.call_operation(&owf, &[Value::str("extra")]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPlan(_)));
    }

    #[test]
    fn sim_transport_renders_typed_args() {
        let t = sim();
        let xml = t
            .registry()
            .wsdl_xml(wsmed_services::TerraService::WSDL_URI)
            .unwrap();
        let doc = wsmed_wsdl::parse_wsdl(&xml).unwrap();
        let owf = OwfDef::derive(
            doc.operation("GetPlaceList").unwrap(),
            &doc.service_name,
            wsmed_services::TerraService::WSDL_URI,
        )
        .unwrap();
        // Int and Str-as-bool coerce correctly on the way out.
        let value = t
            .call_operation(
                &owf,
                &[
                    Value::str("Nowhere, ZZ"),
                    Value::Int(100),
                    Value::str("true"),
                ],
            )
            .unwrap();
        assert!(owf.flatten(&value).unwrap().is_empty());
    }

    #[test]
    fn sim_transport_reports_provider_profiles() {
        let t = sim();
        let owf = states_owf(&t);
        let profile = t.provider_profile(&owf).unwrap();
        assert_eq!(profile.provider, t.provider_name(&owf));
        assert!(profile.capacity >= 1);
        assert!(profile.latency_secs > 0.0);
        // Mocks report nothing.
        let mock = MockTransport::new(|_, _| Ok(Value::Sequence(vec![])));
        assert!(mock.provider_profile(&owf).is_none());
    }

    #[test]
    fn retry_attempts_zero_clamps_to_one() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::attempts(1).max_attempts, 1);
        assert_eq!(RetryPolicy::attempts(5).max_attempts, 5);
    }

    #[test]
    fn batch_policy_defaults_to_paper_semantics() {
        let p = BatchPolicy::default();
        assert_eq!((p.max_params, p.max_result_tuples), (1, 1));
        let u = BatchPolicy::uniform(0);
        assert_eq!((u.max_params, u.max_result_tuples), (1, 1));
        let u = BatchPolicy::uniform(64);
        assert_eq!((u.max_params, u.max_result_tuples), (64, 64));
    }

    #[test]
    fn mailbox_capacity_derivation() {
        // Derived: max_params clamped to [2, 64].
        assert_eq!(BatchPolicy::default().mailbox_capacity(), 2);
        assert_eq!(BatchPolicy::uniform(16).mailbox_capacity(), 16);
        assert_eq!(BatchPolicy::uniform(500).mailbox_capacity(), 64);
        // Pinned: floored to 2.
        let pinned = |n| BatchPolicy {
            mailbox_frames: Some(n),
            ..Default::default()
        };
        assert_eq!(pinned(1).mailbox_capacity(), 2);
        assert_eq!(pinned(8).mailbox_capacity(), 8);
    }

    #[test]
    fn mock_transport_counts_and_responds() {
        let mock = MockTransport::new(|_, args| Ok(Value::Sequence(vec![args[0].clone()])));
        let owf = OwfDef {
            name: "F".into(),
            service: "S".into(),
            wsdl_uri: "u".into(),
            operation: "F".into(),
            inputs: vec![("x".into(), wsmed_store::SqlType::Charstring)],
            columns: vec![("y".into(), wsmed_store::SqlType::Charstring)],
            flatten: wsmed_wsdl::FlattenSpec {
                path: vec![],
                leaf: wsmed_wsdl::LeafKind::Scalar("y".into(), wsmed_store::SqlType::Charstring),
            },
        };
        let v = mock.call_operation(&owf, &[Value::str("hello")]).unwrap();
        assert_eq!(v, Value::Sequence(vec![Value::str("hello")]));
        assert_eq!(mock.call_count(), 1);
    }
}
