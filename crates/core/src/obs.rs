//! Structured execution tracing in model time.
//!
//! The paper's adaptive controller (§V, Fig. 21) makes one greedy
//! add/drop/keep decision per monitoring cycle in every non-leaf query
//! process. Aggregate counters ([`crate::stats::TreeSnapshot`]) show the
//! end state of those decisions; this module records the *sequence* — a
//! bounded, per-run [`TraceLog`] of typed [`TraceEvent`]s covering run and
//! operator spans, monitoring-cycle measurements, child process lifecycle
//! (cold spawn, warm acquire, park, kill, join, requeue), per-call
//! provenance (cache hit/miss/single-flight wait, retry attempts, dedup
//! short-circuits), web-service calls, and mailbox blocked-send stalls.
//!
//! Design contract:
//!
//! * **Model time.** Event timestamps are wall seconds since the run epoch
//!   divided by the simulation time scale, i.e. the same unit as
//!   [`crate::ExecutionReport::model_elapsed_secs`]. At scale `0` (no
//!   modeled delays) raw wall seconds are recorded instead; timestamps are
//!   monotone either way because they are assigned under the log's mutex,
//!   in sequence order.
//! * **Lock-cheap.** With [`TracePolicy::enabled`]` == false` every hook
//!   site reduces to a single relaxed atomic load (see
//!   `ExecContext::tracer`). Enabled, each event takes one short mutex
//!   section on the shared log.
//! * **Bounded.** A log never grows past [`TracePolicy::capacity`] events;
//!   overflow increments a `dropped` counter instead of reallocating, and
//!   [`TraceLog::validate`] relaxes pairing checks when events were
//!   dropped.
//!
//! The JSONL exporter round-trips exactly ([`parse_jsonl`]): floats are
//! printed with Rust's shortest round-trip `Display`, so an adaptation
//! sequence reconstructed from an exported trace compares bit-for-bit
//! equal with [`crate::stats::TreeSnapshot::adapt_events`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::stats::AdaptEvent;

/// Bit set selecting which event groups a [`TraceLog`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindMask(pub u32);

impl KindMask {
    /// Run and operator begin/end spans.
    pub const SPANS: KindMask = KindMask(1 << 0);
    /// Per-monitoring-cycle adaptation records.
    pub const CYCLES: KindMask = KindMask(1 << 1);
    /// Child process lifecycle (spawn/park/kill/join/requeue).
    pub const LIFECYCLE: KindMask = KindMask(1 << 2);
    /// Parameter dispatch and dedup short-circuits.
    pub const CALLS: KindMask = KindMask(1 << 3);
    /// Call-cache provenance and retry attempts.
    pub const CACHE: KindMask = KindMask(1 << 4);
    /// Web-service invocations at the transport.
    pub const WS: KindMask = KindMask(1 << 5);
    /// Mailbox blocked-send stalls.
    pub const STALLS: KindMask = KindMask(1 << 6);
    /// Resilience events: circuit-breaker transitions and rejections,
    /// hedged calls, parameter skips under partial failure mode.
    pub const RESILIENCE: KindMask = KindMask(1 << 7);
    /// Replica routing: per-call routing decisions, group membership
    /// changes (topology scenarios, autoscaling) and breaker-driven
    /// replica skips.
    pub const ROUTING: KindMask = KindMask(1 << 8);
    /// Every event group.
    pub const ALL: KindMask = KindMask(0x1ff);

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: KindMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of the two masks.
    pub fn union(self, other: KindMask) -> KindMask {
        KindMask(self.0 | other.0)
    }
}

/// Trace configuration installed on [`crate::Wsmed`] /
/// `ExecContext::set_trace_policy`. Default: disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePolicy {
    /// Master switch. Off keeps every hook to one atomic load.
    pub enabled: bool,
    /// Maximum events buffered per run; overflow is counted, not stored.
    pub capacity: usize,
    /// Which event groups to record.
    pub kinds: KindMask,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy {
            enabled: false,
            capacity: 65_536,
            kinds: KindMask::ALL,
        }
    }
}

impl TracePolicy {
    /// An enabled policy with default capacity recording all event kinds.
    pub fn enabled() -> Self {
        TracePolicy {
            enabled: true,
            ..TracePolicy::default()
        }
    }
}

/// What happened. Every variant is an instant record except the four
/// span markers (`RunStart`/`RunEnd`, `OpRunStart`/`OpRunEnd`), which
/// nest strictly per node (checked by [`validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// Coordinator began executing a plan.
    RunStart,
    /// Coordinator finished the run (children already joined or parked).
    RunEnd {
        /// Whether the run produced a result (vs. a query error).
        ok: bool,
        /// Result rows produced (0 on error).
        rows: u64,
    },
    /// A parallel apply operator started processing a parameter set.
    OpRunStart {
        /// Parameter tuples the operator was invoked with.
        params: u64,
    },
    /// The matching end of [`TraceEventKind::OpRunStart`].
    OpRunEnd {
        /// Whether the operator completed without error.
        ok: bool,
        /// Result tuples produced (0 on error).
        results: u64,
    },
    /// One monitoring cycle completed and the §V.A controller decided.
    Cycle {
        /// 1-based cycle number within this operator's run.
        cycle: u64,
        /// End-of-call messages that closed the cycle.
        eocs: u64,
        /// Result tuples received during the cycle.
        tuples: u64,
        /// Average model seconds per tuple this cycle (the measured `t`).
        per_tuple_secs: f64,
        /// Previous cycle's `t`, if any (`None` on the first cycle).
        prev: Option<f64>,
        /// The improvement threshold the comparison used.
        threshold: f64,
        /// Child processes alive when the decision was taken.
        alive: usize,
        /// Rendered verdict: `add:N`, `drop`, `stop`, or `converged`.
        verdict: String,
    },
    /// A child process came up under this node id.
    ChildSpawn {
        /// True for a warm pool acquire, false for a cold spawn.
        warm: bool,
    },
    /// The child was parked into the warm pool (end of life this run).
    ChildPark,
    /// The child was shut down deliberately.
    ChildKill {
        /// True when the adaptive controller dropped the stage.
        adapt: bool,
    },
    /// The child was joined during teardown without park or kill.
    ChildJoin,
    /// Undelivered params of a dead child were requeued to survivors.
    Requeue {
        /// Node id of the dead child.
        from_child: u64,
        /// Parameter tuples returned to the pending queue.
        params: u64,
    },
    /// A parameter batch was shipped to the child under this node id.
    CallDispatched {
        /// Parameter tuples in the shipped batch.
        params: u64,
    },
    /// Dedup pre-screen answered params from the PF memo without dispatch.
    ShortCircuit {
        /// Parameter tuples short-circuited.
        params: u64,
    },
    /// Call cache returned a stored value.
    CacheHit {
        /// Operation name.
        op: String,
        /// True when this process waited on another in-flight caller
        /// (single-flight) rather than finding the value ready.
        waited: bool,
    },
    /// Call cache had no value; this process becomes the leader.
    CacheMiss {
        /// Operation name.
        op: String,
    },
    /// Single-flight leader failed; this waiter retries the lookup.
    CacheRetry {
        /// Operation name.
        op: String,
    },
    /// A failed web-service call is being retried.
    RetryAttempt {
        /// Operation name.
        op: String,
        /// 1-based attempt number about to be issued.
        attempt: u32,
    },
    /// The transport invoked a web-service operation.
    WsCall {
        /// Operation name.
        op: String,
        /// Whether the call succeeded.
        ok: bool,
        /// Error class on failure (`fault`, `timeout`, `bad_request`,
        /// `unknown_op`, or `other`); `None` when the call succeeded or
        /// the class is unknown (old exports).
        err: Option<String>,
    },
    /// A bounded mailbox send blocked until the receiver drained.
    BlockedSend {
        /// Model seconds the sender stalled.
        waited_secs: f64,
    },
    /// A provider's circuit breaker tripped closed → open.
    BreakerOpen {
        /// Provider whose breaker opened.
        provider: String,
    },
    /// An open breaker's cooldown elapsed; probe calls are admitted.
    BreakerHalfOpen {
        /// Provider whose breaker went half-open.
        provider: String,
    },
    /// A half-open probe succeeded; the breaker closed.
    BreakerClose {
        /// Provider whose breaker closed.
        provider: String,
    },
    /// A call was rejected without reaching the wire (breaker open).
    BreakerReject {
        /// Provider whose breaker rejected the call.
        provider: String,
        /// Operation that was rejected.
        op: String,
    },
    /// A call was rejected by admission control (tenant over its
    /// in-flight quota) without reaching the wire.
    AdmissionReject {
        /// Tenant whose quota rejected the call.
        tenant: String,
        /// Operation that was rejected.
        op: String,
    },
    /// The hedge delay elapsed with the primary still in flight; a backup
    /// call was launched.
    HedgeLaunch {
        /// Operation name.
        op: String,
    },
    /// The primary failed and the hedged backup's success was taken.
    HedgeWin {
        /// Operation name.
        op: String,
    },
    /// Under [`crate::FailureMode::Partial`], a parameter tuple whose call
    /// exhausted retries/deadline/breaker was dropped from the result.
    ParamSkipped {
        /// OWF name whose call failed terminally.
        op: String,
    },
    /// Parameter tuples dropped parent-side by semi-join pruning
    /// ([`crate::plan::PruneSpec`]) before any dependent call was issued.
    ParamsPruned {
        /// Plan-function digest of the operator whose parameters were pruned.
        pf: String,
        /// Number of parameter tuples dropped in this batch.
        count: u64,
    },
    /// The client-side router picked a replica for one call attempt.
    RouteDecision {
        /// Logical provider (replica group) name.
        group: String,
        /// Replica the attempt was routed to.
        replica: String,
        /// Other routable replicas that were passed over.
        alternatives: u64,
    },
    /// A replica joined or left its group (topology scenario event,
    /// graceful drain, or autoscale activation).
    Membership {
        /// Logical provider (replica group) name.
        group: String,
        /// Replica whose membership changed.
        replica: String,
        /// True for a join/rejoin, false for a leave.
        joined: bool,
    },
    /// The router skipped a selected replica and failed over to another
    /// (the skipped replica's breaker rejected the attempt).
    ReplicaSkipped {
        /// Logical provider (replica group) name.
        group: String,
        /// Replica that was skipped.
        replica: String,
        /// Why it was skipped (currently always `breaker_open`).
        reason: String,
    },
}

impl TraceEventKind {
    /// The [`KindMask`] group this event belongs to.
    pub fn mask(&self) -> KindMask {
        use TraceEventKind::*;
        match self {
            RunStart | RunEnd { .. } | OpRunStart { .. } | OpRunEnd { .. } => KindMask::SPANS,
            Cycle { .. } => KindMask::CYCLES,
            ChildSpawn { .. } | ChildPark | ChildKill { .. } | ChildJoin | Requeue { .. } => {
                KindMask::LIFECYCLE
            }
            CallDispatched { .. } | ShortCircuit { .. } => KindMask::CALLS,
            CacheHit { .. }
            | CacheMiss { .. }
            | CacheRetry { .. }
            | RetryAttempt { .. }
            | ParamsPruned { .. } => KindMask::CACHE,
            WsCall { .. } => KindMask::WS,
            BlockedSend { .. } => KindMask::STALLS,
            BreakerOpen { .. }
            | BreakerHalfOpen { .. }
            | BreakerClose { .. }
            | BreakerReject { .. }
            | AdmissionReject { .. }
            | HedgeLaunch { .. }
            | HedgeWin { .. }
            | ParamSkipped { .. } => KindMask::RESILIENCE,
            RouteDecision { .. } | Membership { .. } | ReplicaSkipped { .. } => KindMask::ROUTING,
        }
    }

    /// Stable kind name used by the JSONL/Chrome exporters.
    pub fn name(&self) -> &'static str {
        use TraceEventKind::*;
        match self {
            RunStart => "run_start",
            RunEnd { .. } => "run_end",
            OpRunStart { .. } => "op_start",
            OpRunEnd { .. } => "op_end",
            Cycle { .. } => "cycle",
            ChildSpawn { .. } => "child_spawn",
            ChildPark => "child_park",
            ChildKill { .. } => "child_kill",
            ChildJoin => "child_join",
            Requeue { .. } => "requeue",
            CallDispatched { .. } => "call_dispatched",
            ShortCircuit { .. } => "short_circuit",
            CacheHit { .. } => "cache_hit",
            CacheMiss { .. } => "cache_miss",
            CacheRetry { .. } => "cache_retry",
            RetryAttempt { .. } => "retry_attempt",
            WsCall { .. } => "ws_call",
            BlockedSend { .. } => "blocked_send",
            BreakerOpen { .. } => "breaker_open",
            BreakerHalfOpen { .. } => "breaker_half_open",
            BreakerClose { .. } => "breaker_close",
            BreakerReject { .. } => "breaker_reject",
            AdmissionReject { .. } => "admission_reject",
            HedgeLaunch { .. } => "hedge_launch",
            HedgeWin { .. } => "hedge_win",
            ParamSkipped { .. } => "param_skipped",
            ParamsPruned { .. } => "params_pruned",
            RouteDecision { .. } => "route_decision",
            Membership { .. } => "membership",
            ReplicaSkipped { .. } => "replica_skipped",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// 1-based global sequence number (total order over the run).
    pub seq: u64,
    /// Model time of the event (see module docs for the scale-0 case).
    pub t: f64,
    /// Process-tree node the event is about (0 = coordinator).
    pub node: u64,
    /// Tree level of that node (0 = coordinator).
    pub level: usize,
    /// Content digest of the plan function the node runs ("" for the
    /// coordinator).
    pub pf: Arc<str>,
    /// What happened.
    pub kind: TraceEventKind,
}

#[derive(Debug, Default)]
struct LogInner {
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// A bounded per-run buffer of [`TraceEvent`]s. Shared (`Arc`) between the
/// execution context, every child process, and the transport for the
/// duration of one run, then surfaced on [`crate::ExecutionReport::trace`].
#[derive(Debug)]
pub struct TraceLog {
    kinds: KindMask,
    capacity: usize,
    epoch: Instant,
    time_scale: f64,
    inner: Mutex<LogInner>,
}

impl TraceLog {
    /// Creates an empty log; `time_scale` is the simulation time scale
    /// model timestamps are measured against.
    pub fn new(policy: TracePolicy, time_scale: f64) -> Self {
        TraceLog {
            kinds: policy.kinds,
            capacity: policy.capacity,
            epoch: Instant::now(),
            time_scale,
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// Converts a wall-clock duration to the log's model-time unit.
    pub fn model_secs(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if self.time_scale > 0.0 {
            secs / self.time_scale
        } else {
            secs
        }
    }

    /// Records one event, assigning its sequence number and model
    /// timestamp under the log mutex so global sequence order equals
    /// timestamp order (per-node monotonicity follows for free).
    pub fn emit(&self, node: u64, level: usize, pf: &Arc<str>, kind: TraceEventKind) {
        if !self.kinds.contains(kind.mask()) {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.events.len() >= self.capacity {
            inner.dropped += 1;
            return;
        }
        let seq = inner.events.len() as u64 + 1;
        let t = self.model_secs(self.epoch.elapsed());
        inner.events.push(TraceEvent {
            seq,
            t,
            node,
            level,
            pf: Arc::clone(pf),
            kind,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the buffer hit capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Snapshot of the buffered events, in sequence order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Runs the invariant checker over the buffered events. When the
    /// buffer overflowed, lifecycle/span pairing cannot be checked (the
    /// tail was dropped), so only ordering invariants are enforced.
    pub fn validate(&self) -> Vec<String> {
        let inner = self.inner.lock();
        if inner.dropped > 0 {
            validate_ordering(&inner.events)
        } else {
            validate(&inner.events)
        }
    }

    /// Exports the buffered events as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for e in &inner.events {
            out.push_str(&event_to_jsonl(e));
            out.push('\n');
        }
        out
    }

    /// Exports the buffered events as Chrome `trace_event` JSON (load in
    /// `chrome://tracing` or Perfetto). Spans map to `B`/`E` phase pairs,
    /// everything else to thread-scoped instants; `ts` is model time in
    /// microseconds and `tid` is the tree node id.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_to_chrome(e));
        }
        out.push_str("]}");
        out
    }
}

thread_local! {
    static CURRENT_PROC: RefCell<(u64, usize, Arc<str>)> =
        RefCell::new((0, 0, Arc::from("")));
}

/// Binds the calling thread to a process-tree node so events recorded
/// deep inside `eval` (cache lookups, retries, WS calls) are attributed
/// to the right node. Called by `child_main` and at `run_plan` entry.
pub(crate) fn set_current_proc(id: u64, level: usize, pf: Arc<str>) {
    CURRENT_PROC.with(|c| *c.borrow_mut() = (id, level, pf));
}

/// The `(node, level, pf_digest)` the calling thread is bound to.
pub(crate) fn current_proc() -> (u64, usize, Arc<str>) {
    CURRENT_PROC.with(|c| c.borrow().clone())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest round-trip Display never uses exponents, so the
        // output parses back to the identical bits via `str::parse`.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes one event as a single JSONL line (no trailing newline).
pub fn event_to_jsonl(e: &TraceEvent) -> String {
    use TraceEventKind::*;
    let mut s = format!(
        "{{\"seq\":{},\"t\":{},\"node\":{},\"level\":{},\"pf\":\"{}\",\"kind\":\"{}\"",
        e.seq,
        fmt_f64(e.t),
        e.node,
        e.level,
        json_escape(&e.pf),
        e.kind.name()
    );
    match &e.kind {
        RunStart | ChildPark | ChildJoin => {}
        RunEnd { ok, rows } => s.push_str(&format!(",\"ok\":{ok},\"rows\":{rows}")),
        OpRunStart { params } => s.push_str(&format!(",\"params\":{params}")),
        OpRunEnd { ok, results } => s.push_str(&format!(",\"ok\":{ok},\"results\":{results}")),
        Cycle {
            cycle,
            eocs,
            tuples,
            per_tuple_secs,
            prev,
            threshold,
            alive,
            verdict,
        } => {
            s.push_str(&format!(
                ",\"cycle\":{cycle},\"eocs\":{eocs},\"tuples\":{tuples},\"per_tuple_secs\":{}",
                fmt_f64(*per_tuple_secs)
            ));
            match prev {
                Some(p) => s.push_str(&format!(",\"prev\":{}", fmt_f64(*p))),
                None => s.push_str(",\"prev\":null"),
            }
            s.push_str(&format!(
                ",\"threshold\":{},\"alive\":{alive},\"verdict\":\"{}\"",
                fmt_f64(*threshold),
                json_escape(verdict)
            ));
        }
        ChildSpawn { warm } => s.push_str(&format!(",\"warm\":{warm}")),
        ChildKill { adapt } => s.push_str(&format!(",\"adapt\":{adapt}")),
        Requeue { from_child, params } => {
            s.push_str(&format!(",\"from_child\":{from_child},\"params\":{params}"))
        }
        CallDispatched { params } | ShortCircuit { params } => {
            s.push_str(&format!(",\"params\":{params}"))
        }
        CacheHit { op, waited } => s.push_str(&format!(
            ",\"op\":\"{}\",\"waited\":{waited}",
            json_escape(op)
        )),
        CacheMiss { op } | CacheRetry { op } => {
            s.push_str(&format!(",\"op\":\"{}\"", json_escape(op)))
        }
        RetryAttempt { op, attempt } => s.push_str(&format!(
            ",\"op\":\"{}\",\"attempt\":{attempt}",
            json_escape(op)
        )),
        WsCall { op, ok, err } => {
            s.push_str(&format!(",\"op\":\"{}\",\"ok\":{ok}", json_escape(op)));
            if let Some(err) = err {
                s.push_str(&format!(",\"err\":\"{}\"", json_escape(err)));
            }
        }
        BlockedSend { waited_secs } => {
            s.push_str(&format!(",\"waited_secs\":{}", fmt_f64(*waited_secs)))
        }
        BreakerOpen { provider } | BreakerHalfOpen { provider } | BreakerClose { provider } => {
            s.push_str(&format!(",\"provider\":\"{}\"", json_escape(provider)))
        }
        BreakerReject { provider, op } => s.push_str(&format!(
            ",\"provider\":\"{}\",\"op\":\"{}\"",
            json_escape(provider),
            json_escape(op)
        )),
        AdmissionReject { tenant, op } => s.push_str(&format!(
            ",\"tenant\":\"{}\",\"op\":\"{}\"",
            json_escape(tenant),
            json_escape(op)
        )),
        HedgeLaunch { op } | HedgeWin { op } | ParamSkipped { op } => {
            s.push_str(&format!(",\"op\":\"{}\"", json_escape(op)))
        }
        ParamsPruned { pf, count } => s.push_str(&format!(
            ",\"pruned_pf\":\"{}\",\"count\":{count}",
            json_escape(pf)
        )),
        RouteDecision {
            group,
            replica,
            alternatives,
        } => s.push_str(&format!(
            ",\"group\":\"{}\",\"replica\":\"{}\",\"alternatives\":{alternatives}",
            json_escape(group),
            json_escape(replica)
        )),
        Membership {
            group,
            replica,
            joined,
        } => s.push_str(&format!(
            ",\"group\":\"{}\",\"replica\":\"{}\",\"joined\":{joined}",
            json_escape(group),
            json_escape(replica)
        )),
        ReplicaSkipped {
            group,
            replica,
            reason,
        } => s.push_str(&format!(
            ",\"group\":\"{}\",\"replica\":\"{}\",\"reason\":\"{}\"",
            json_escape(group),
            json_escape(replica),
            json_escape(reason)
        )),
    }
    s.push('}');
    s
}

fn event_to_chrome(e: &TraceEvent) -> String {
    use TraceEventKind::*;
    let ts = e.t * 1e6;
    let (ph, name) = match &e.kind {
        RunStart => ("B", "run".to_owned()),
        RunEnd { .. } => ("E", "run".to_owned()),
        OpRunStart { .. } => ("B", "op".to_owned()),
        OpRunEnd { .. } => ("E", "op".to_owned()),
        Cycle { verdict, .. } => ("i", format!("cycle {verdict}")),
        other => ("i", other.name().to_owned()),
    };
    let mut s = format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
        json_escape(&name),
        ph,
        fmt_f64(ts),
        e.node
    );
    if ph == "i" {
        s.push_str(",\"s\":\"t\"");
    }
    s.push_str(&format!(
        ",\"args\":{{\"seq\":{},\"level\":{},\"pf\":\"{}\"}}}}",
        e.seq,
        e.level,
        json_escape(&e.pf)
    ));
    s
}

#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parses one flat JSON object produced by [`event_to_jsonl`]. Only the
/// subset of JSON the exporter emits is supported: a single-level object
/// with string, number, boolean, and null values.
fn parse_flat_object(line: &str) -> Result<HashMap<String, Scalar>, String> {
    let mut map = HashMap::new();
    let bytes = line.trim();
    let inner = bytes
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line}"))?;
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => Scalar::Str(parse_string(&mut chars)?),
            Some(_) => {
                let mut tok = String::new();
                while matches!(chars.peek(), Some(c) if *c != ',' ) {
                    tok.push(chars.next().unwrap());
                }
                match tok.trim() {
                    "true" => Scalar::Bool(true),
                    "false" => Scalar::Bool(false),
                    "null" => Scalar::Null,
                    n => Scalar::Num(n.parse::<f64>().map_err(|_| format!("bad number {n:?}"))?),
                }
            }
            None => return Err(format!("missing value for key {key:?}")),
        };
        map.insert(key, value);
    }
    Ok(map)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_owned());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_owned()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).ok_or("bad codepoint")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn get_num(map: &HashMap<String, Scalar>, key: &str) -> Result<f64, String> {
    match map.get(key) {
        Some(Scalar::Num(n)) => Ok(*n),
        other => Err(format!("field {key:?}: expected number, got {other:?}")),
    }
}

fn get_str(map: &HashMap<String, Scalar>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(Scalar::Str(s)) => Ok(s.clone()),
        other => Err(format!("field {key:?}: expected string, got {other:?}")),
    }
}

fn get_bool(map: &HashMap<String, Scalar>, key: &str) -> Result<bool, String> {
    match map.get(key) {
        Some(Scalar::Bool(b)) => Ok(*b),
        other => Err(format!("field {key:?}: expected bool, got {other:?}")),
    }
}

/// Parses a JSONL trace export back into events. The inverse of
/// [`TraceLog::to_jsonl`]; floats round-trip exactly.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind_name = get_str(&map, "kind").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = parse_kind(&kind_name, &map).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(TraceEvent {
            seq: get_num(&map, "seq").map_err(|e| format!("line {}: {e}", lineno + 1))? as u64,
            t: get_num(&map, "t").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            node: get_num(&map, "node").map_err(|e| format!("line {}: {e}", lineno + 1))? as u64,
            level: get_num(&map, "level").map_err(|e| format!("line {}: {e}", lineno + 1))?
                as usize,
            pf: Arc::from(
                get_str(&map, "pf")
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?
                    .as_str(),
            ),
            kind,
        });
    }
    Ok(events)
}

fn parse_kind(name: &str, map: &HashMap<String, Scalar>) -> Result<TraceEventKind, String> {
    use TraceEventKind::*;
    Ok(match name {
        "run_start" => RunStart,
        "run_end" => RunEnd {
            ok: get_bool(map, "ok")?,
            rows: get_num(map, "rows")? as u64,
        },
        "op_start" => OpRunStart {
            params: get_num(map, "params")? as u64,
        },
        "op_end" => OpRunEnd {
            ok: get_bool(map, "ok")?,
            results: get_num(map, "results")? as u64,
        },
        "cycle" => Cycle {
            cycle: get_num(map, "cycle")? as u64,
            eocs: get_num(map, "eocs")? as u64,
            tuples: get_num(map, "tuples")? as u64,
            per_tuple_secs: get_num(map, "per_tuple_secs")?,
            prev: match map.get("prev") {
                Some(Scalar::Num(n)) => Some(*n),
                Some(Scalar::Null) | None => None,
                other => return Err(format!("field \"prev\": bad value {other:?}")),
            },
            threshold: get_num(map, "threshold")?,
            alive: get_num(map, "alive")? as usize,
            verdict: get_str(map, "verdict")?,
        },
        "child_spawn" => ChildSpawn {
            warm: get_bool(map, "warm")?,
        },
        "child_park" => ChildPark,
        "child_kill" => ChildKill {
            adapt: get_bool(map, "adapt")?,
        },
        "child_join" => ChildJoin,
        "requeue" => Requeue {
            from_child: get_num(map, "from_child")? as u64,
            params: get_num(map, "params")? as u64,
        },
        "call_dispatched" => CallDispatched {
            params: get_num(map, "params")? as u64,
        },
        "short_circuit" => ShortCircuit {
            params: get_num(map, "params")? as u64,
        },
        "cache_hit" => CacheHit {
            op: get_str(map, "op")?,
            waited: get_bool(map, "waited")?,
        },
        "cache_miss" => CacheMiss {
            op: get_str(map, "op")?,
        },
        "cache_retry" => CacheRetry {
            op: get_str(map, "op")?,
        },
        "retry_attempt" => RetryAttempt {
            op: get_str(map, "op")?,
            attempt: get_num(map, "attempt")? as u32,
        },
        "ws_call" => WsCall {
            op: get_str(map, "op")?,
            ok: get_bool(map, "ok")?,
            // Optional: absent in exports predating the error class.
            err: match map.get("err") {
                Some(Scalar::Str(s)) => Some(s.clone()),
                Some(Scalar::Null) | None => None,
                other => return Err(format!("field \"err\": bad value {other:?}")),
            },
        },
        "blocked_send" => BlockedSend {
            waited_secs: get_num(map, "waited_secs")?,
        },
        "breaker_open" => BreakerOpen {
            provider: get_str(map, "provider")?,
        },
        "breaker_half_open" => BreakerHalfOpen {
            provider: get_str(map, "provider")?,
        },
        "breaker_close" => BreakerClose {
            provider: get_str(map, "provider")?,
        },
        "breaker_reject" => BreakerReject {
            provider: get_str(map, "provider")?,
            op: get_str(map, "op")?,
        },
        "admission_reject" => AdmissionReject {
            tenant: get_str(map, "tenant")?,
            op: get_str(map, "op")?,
        },
        "hedge_launch" => HedgeLaunch {
            op: get_str(map, "op")?,
        },
        "hedge_win" => HedgeWin {
            op: get_str(map, "op")?,
        },
        "param_skipped" => ParamSkipped {
            op: get_str(map, "op")?,
        },
        "params_pruned" => ParamsPruned {
            pf: get_str(map, "pruned_pf")?,
            count: get_num(map, "count")? as u64,
        },
        "route_decision" => RouteDecision {
            group: get_str(map, "group")?,
            replica: get_str(map, "replica")?,
            alternatives: get_num(map, "alternatives")? as u64,
        },
        "membership" => Membership {
            group: get_str(map, "group")?,
            replica: get_str(map, "replica")?,
            joined: get_bool(map, "joined")?,
        },
        "replica_skipped" => ReplicaSkipped {
            group: get_str(map, "group")?,
            replica: get_str(map, "replica")?,
            reason: get_str(map, "reason")?,
        },
        other => return Err(format!("unknown kind {other:?}")),
    })
}

/// Parses and validates a JSONL export in one step; returns parse errors
/// as a single violation. Used by `trace_export --check` and the CI smoke.
pub fn validate_jsonl(text: &str) -> Vec<String> {
    match parse_jsonl(text) {
        Ok(events) => validate(&events),
        Err(e) => vec![format!("parse error: {e}")],
    }
}

/// Ordering-only invariants: sequence numbers strictly increase and model
/// timestamps are monotone (globally, hence per node).
fn validate_ordering(events: &[TraceEvent]) -> Vec<String> {
    let mut errs = Vec::new();
    let mut last_seq = 0u64;
    let mut last_t = f64::NEG_INFINITY;
    for e in events {
        if e.seq <= last_seq {
            errs.push(format!(
                "seq not strictly increasing: {} after {}",
                e.seq, last_seq
            ));
        }
        last_seq = e.seq;
        if e.t < last_t {
            errs.push(format!(
                "seq {}: timestamp {} before {}",
                e.seq, e.t, last_t
            ));
        }
        last_t = e.t;
    }
    errs
}

/// The trace invariant checker. Returns one message per violation (empty
/// means the stream is well-formed):
///
/// * sequence numbers strictly increase; timestamps are monotone per node;
/// * `run`/`op` spans strictly nest per node and all close;
/// * every child node alternates spawn → exactly one terminal
///   (park/kill/join); no terminal without a spawn, no double spawn
///   without an intervening terminal, no spawn left open.
pub fn validate(events: &[TraceEvent]) -> Vec<String> {
    use TraceEventKind::*;
    let mut errs = validate_ordering(events);
    let mut last_t: HashMap<u64, f64> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<&'static str>> = HashMap::new();
    // Child lifecycle: node -> currently alive? (absent = never spawned)
    let mut life: HashMap<u64, bool> = HashMap::new();
    for e in events {
        let t_prev = last_t.entry(e.node).or_insert(f64::NEG_INFINITY);
        if e.t < *t_prev {
            errs.push(format!(
                "seq {}: node {} timestamp {} before {}",
                e.seq, e.node, e.t, t_prev
            ));
        }
        *t_prev = e.t;
        match &e.kind {
            RunStart => stacks.entry(e.node).or_default().push("run"),
            OpRunStart { .. } => stacks.entry(e.node).or_default().push("op"),
            RunEnd { .. } => match stacks.entry(e.node).or_default().pop() {
                Some("run") => {}
                top => errs.push(format!(
                    "seq {}: node {} run_end closes {:?}",
                    e.seq, e.node, top
                )),
            },
            OpRunEnd { .. } => match stacks.entry(e.node).or_default().pop() {
                Some("op") => {}
                top => errs.push(format!(
                    "seq {}: node {} op_end closes {:?}",
                    e.seq, e.node, top
                )),
            },
            ChildSpawn { .. } => {
                let was_alive = life.insert(e.node, true);
                if was_alive == Some(true) {
                    errs.push(format!(
                        "seq {}: node {} spawned while already alive",
                        e.seq, e.node
                    ));
                }
            }
            ChildPark | ChildKill { .. } | ChildJoin => match life.insert(e.node, false) {
                Some(true) => {}
                Some(false) => errs.push(format!(
                    "seq {}: node {} second terminal event",
                    e.seq, e.node
                )),
                None => errs.push(format!(
                    "seq {}: node {} terminal without spawn",
                    e.seq, e.node
                )),
            },
            _ => {}
        }
    }
    for (node, stack) in &stacks {
        if !stack.is_empty() {
            errs.push(format!("node {node}: unclosed spans {stack:?}"));
        }
    }
    let mut leaked: Vec<u64> = life
        .iter()
        .filter(|(_, alive)| **alive)
        .map(|(n, _)| *n)
        .collect();
    leaked.sort_unstable();
    for node in leaked {
        errs.push(format!("node {node}: spawn without terminal event"));
    }
    errs
}

/// Rebuilds the §V.A adaptation decision sequence from a trace: one
/// [`AdaptEvent`] per [`TraceEventKind::Cycle`], in trace order. Grouped
/// per process this compares exactly (bit-for-bit after a JSONL
/// round-trip) with [`crate::stats::TreeSnapshot::adapt_events`].
pub fn cycle_decisions(events: &[TraceEvent]) -> Vec<AdaptEvent> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::Cycle {
                per_tuple_secs,
                alive,
                verdict,
                ..
            } => Some(AdaptEvent {
                process: e.node,
                level: e.level,
                per_tuple_secs: *per_tuple_secs,
                alive: *alive,
                decision: verdict.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// Number of live children at a tree level when the run ended, replayed
/// from lifecycle events (spawns minus terminals) up to the `run_end`
/// marker — the report snapshot is taken there, before teardown parks and
/// joins, so this matches `TreeSnapshot::levels[level].alive` of the run
/// that produced the trace.
pub fn final_alive_at_level(events: &[TraceEvent], level: usize) -> usize {
    let mut alive = 0usize;
    for e in events {
        if matches!(e.kind, TraceEventKind::RunEnd { .. }) {
            break;
        }
        if e.level != level {
            continue;
        }
        match e.kind {
            TraceEventKind::ChildSpawn { .. } => alive += 1,
            TraceEventKind::ChildPark
            | TraceEventKind::ChildKill { .. }
            | TraceEventKind::ChildJoin => alive = alive.saturating_sub(1),
            _ => {}
        }
    }
    alive
}

/// Renders the timing-independent projection of an adaptive run used by
/// the deterministic-replay suite: the coordinator's per-cycle
/// `alive`/`eocs`/verdict sequence plus the final level-1 fanout. Wall-
/// derived fields (per-tuple times, tuple counts) and the schedules of
/// levels ≥ 1 are deliberately excluded — first-finished dispatch makes
/// them scheduling-dependent even under a fixed seed.
pub fn replay_transcript(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let mut cycles = 0u64;
    for e in events {
        if e.node != 0 {
            continue;
        }
        if let TraceEventKind::Cycle {
            eocs,
            alive,
            verdict,
            ..
        } = &e.kind
        {
            cycles += 1;
            out.push_str(&format!(
                "cycle {cycles}: alive={alive} eocs={eocs} verdict={verdict}\n"
            ));
        }
    }
    out.push_str(&format!("coordinator_cycles={cycles}\n"));
    out.push_str(&format!(
        "level1_final_alive={}\n",
        final_alive_at_level(events, 1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Arc<str> {
        Arc::from("digest-a")
    }

    fn log() -> TraceLog {
        TraceLog::new(TracePolicy::enabled(), 0.0)
    }

    #[test]
    fn emit_assigns_monotone_seq_and_time() {
        let log = log();
        log.emit(0, 0, &pf(), TraceEventKind::RunStart);
        log.emit(1, 1, &pf(), TraceEventKind::ChildSpawn { warm: false });
        log.emit(0, 0, &pf(), TraceEventKind::RunEnd { ok: true, rows: 3 });
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let policy = TracePolicy {
            enabled: true,
            capacity: 2,
            kinds: KindMask::ALL,
        };
        let log = TraceLog::new(policy, 0.0);
        for _ in 0..5 {
            log.emit(0, 0, &pf(), TraceEventKind::RunStart);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        // Overflowed logs still pass the (ordering-only) validator.
        assert!(log.validate().is_empty());
    }

    #[test]
    fn kind_mask_filters_events() {
        let policy = TracePolicy {
            enabled: true,
            capacity: 100,
            kinds: KindMask::SPANS,
        };
        let log = TraceLog::new(policy, 0.0);
        log.emit(0, 0, &pf(), TraceEventKind::RunStart);
        log.emit(1, 1, &pf(), TraceEventKind::ChildSpawn { warm: true });
        log.emit(0, 0, &pf(), TraceEventKind::RunEnd { ok: true, rows: 0 });
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind.mask() == KindMask::SPANS));
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        use TraceEventKind::*;
        let kinds = vec![
            RunStart,
            RunEnd { ok: false, rows: 7 },
            OpRunStart { params: 51 },
            OpRunEnd {
                ok: true,
                results: 102,
            },
            Cycle {
                cycle: 3,
                eocs: 4,
                tuples: 17,
                per_tuple_secs: 0.1234567890123,
                prev: None,
                threshold: 0.25,
                alive: 4,
                verdict: "add:2".to_owned(),
            },
            Cycle {
                cycle: 4,
                eocs: 4,
                tuples: 9,
                per_tuple_secs: 1.0 / 3.0,
                prev: Some(0.1234567890123),
                threshold: 0.25,
                alive: 4,
                verdict: "stop".to_owned(),
            },
            ChildSpawn { warm: true },
            ChildPark,
            ChildKill { adapt: true },
            ChildJoin,
            Requeue {
                from_child: 9,
                params: 5,
            },
            CallDispatched { params: 8 },
            ShortCircuit { params: 2 },
            CacheHit {
                op: "get\"zip\"".to_owned(),
                waited: true,
            },
            CacheMiss {
                op: "GetInfoByState".to_owned(),
            },
            CacheRetry {
                op: "op\\with\nweird".to_owned(),
            },
            RetryAttempt {
                op: "GetPlacesInside".to_owned(),
                attempt: 2,
            },
            WsCall {
                op: "GetAllStates".to_owned(),
                ok: true,
                err: None,
            },
            WsCall {
                op: "GetPlacesInside".to_owned(),
                ok: false,
                err: Some("timeout".to_owned()),
            },
            BlockedSend {
                waited_secs: 0.0078125,
            },
            BreakerOpen {
                provider: "www.uszip.com".to_owned(),
            },
            BreakerHalfOpen {
                provider: "www.uszip.com".to_owned(),
            },
            BreakerClose {
                provider: "www.uszip.com".to_owned(),
            },
            BreakerReject {
                provider: "www.uszip.com".to_owned(),
                op: "GetInfoByState".to_owned(),
            },
            AdmissionReject {
                tenant: "default".to_owned(),
                op: "GetInfoByState".to_owned(),
            },
            HedgeLaunch {
                op: "GetPlaceList".to_owned(),
            },
            HedgeWin {
                op: "GetPlaceList".to_owned(),
            },
            ParamSkipped {
                op: "GetPlacesInside".to_owned(),
            },
            ParamsPruned {
                pf: "a1b2c3d4e5f60718".to_owned(),
                count: 5,
            },
            RouteDecision {
                group: "codebump.com/zip".to_owned(),
                replica: "codebump.com/zip#1".to_owned(),
                alternatives: 2,
            },
            Membership {
                group: "codebump.com/zip".to_owned(),
                replica: "codebump.com/zip#2".to_owned(),
                joined: false,
            },
            ReplicaSkipped {
                group: "codebump.com/zip".to_owned(),
                replica: "codebump.com/zip".to_owned(),
                reason: "breaker_open".to_owned(),
            },
        ];
        let events: Vec<TraceEvent> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                seq: i as u64 + 1,
                t: i as f64 * 0.1 + 1.0 / 7.0,
                node: i as u64 % 3,
                level: i % 2,
                pf: pf(),
                kind,
            })
            .collect();
        let jsonl: String = events.iter().map(|e| event_to_jsonl(e) + "\n").collect();
        let parsed = parse_jsonl(&jsonl).expect("round trip parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn validate_accepts_well_formed_stream() {
        use TraceEventKind::*;
        let mk = |seq: u64, node: u64, level: usize, kind: TraceEventKind| TraceEvent {
            seq,
            t: seq as f64,
            node,
            level,
            pf: pf(),
            kind,
        };
        let events = vec![
            mk(1, 0, 0, RunStart),
            mk(2, 1, 1, ChildSpawn { warm: false }),
            mk(3, 0, 0, OpRunStart { params: 2 }),
            mk(4, 1, 1, CallDispatched { params: 2 }),
            mk(
                5,
                0,
                0,
                OpRunEnd {
                    ok: true,
                    results: 4,
                },
            ),
            mk(6, 1, 1, ChildPark),
            // Re-acquire of the same node later in the run is legal.
            mk(7, 1, 1, ChildSpawn { warm: true }),
            mk(8, 1, 1, ChildJoin),
            mk(9, 0, 0, RunEnd { ok: true, rows: 4 }),
        ];
        assert_eq!(validate(&events), Vec::<String>::new());
    }

    #[test]
    fn validate_flags_violations() {
        use TraceEventKind::*;
        let mk = |seq: u64, node: u64, kind: TraceEventKind| TraceEvent {
            seq,
            t: seq as f64,
            node,
            level: usize::from(node != 0),
            pf: pf(),
            kind,
        };
        // Double terminal + terminal without spawn + unclosed span.
        let events = vec![
            mk(1, 0, RunStart),
            mk(2, 1, ChildSpawn { warm: false }),
            mk(3, 1, ChildPark),
            mk(4, 1, ChildJoin),
            mk(5, 2, ChildKill { adapt: false }),
        ];
        let errs = validate(&events);
        assert!(
            errs.iter().any(|e| e.contains("second terminal")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("terminal without spawn")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("unclosed spans")),
            "{errs:?}"
        );

        // Leaked spawn.
        let events = vec![mk(1, 1, ChildSpawn { warm: false })];
        let errs = validate(&events);
        assert!(
            errs.iter().any(|e| e.contains("spawn without terminal")),
            "{errs:?}"
        );

        // Mis-nested spans.
        let events = vec![
            mk(1, 0, RunStart),
            mk(
                2,
                0,
                OpRunEnd {
                    ok: true,
                    results: 0,
                },
            ),
        ];
        let errs = validate(&events);
        assert!(errs.iter().any(|e| e.contains("op_end closes")), "{errs:?}");

        // Non-monotone node time.
        let events = vec![
            TraceEvent {
                seq: 1,
                t: 5.0,
                node: 0,
                level: 0,
                pf: pf(),
                kind: RunStart,
            },
            TraceEvent {
                seq: 2,
                t: 4.0,
                node: 0,
                level: 0,
                pf: pf(),
                kind: RunEnd { ok: true, rows: 0 },
            },
        ];
        let errs = validate(&events);
        assert!(errs.iter().any(|e| e.contains("before")), "{errs:?}");
    }

    #[test]
    fn replay_helpers_reconstruct_decisions_and_fanout() {
        use TraceEventKind::*;
        let mk = |seq: u64, node: u64, level: usize, kind: TraceEventKind| TraceEvent {
            seq,
            t: seq as f64,
            node,
            level,
            pf: pf(),
            kind,
        };
        let cycle = |cycle: u64, alive: usize, verdict: &str, prev: Option<f64>| Cycle {
            cycle,
            eocs: alive as u64,
            tuples: 10,
            per_tuple_secs: 0.5,
            prev,
            threshold: 0.25,
            alive,
            verdict: verdict.to_owned(),
        };
        let events = vec![
            mk(1, 0, 0, RunStart),
            mk(2, 1, 1, ChildSpawn { warm: false }),
            mk(3, 2, 1, ChildSpawn { warm: false }),
            mk(4, 0, 0, cycle(1, 2, "add:2", None)),
            mk(5, 3, 1, ChildSpawn { warm: false }),
            mk(6, 4, 1, ChildSpawn { warm: false }),
            mk(7, 0, 0, cycle(2, 4, "stop", Some(0.5))),
            mk(8, 4, 1, ChildKill { adapt: true }),
            // run_end is emitted at snapshot time; teardown joins trail it.
            mk(9, 0, 0, RunEnd { ok: true, rows: 4 }),
            mk(10, 1, 1, ChildJoin),
            mk(11, 2, 1, ChildJoin),
            mk(12, 3, 1, ChildJoin),
        ];
        assert_eq!(validate(&events), Vec::<String>::new());
        let decisions = cycle_decisions(&events);
        assert_eq!(decisions.len(), 2);
        assert_eq!(decisions[0].decision, "add:2");
        assert_eq!(decisions[0].alive, 2);
        assert_eq!(decisions[1].decision, "stop");
        // 4 spawns, 1 adaptive kill before run_end -> fanout 3 at the
        // snapshot; the trailing teardown joins are not counted.
        assert_eq!(final_alive_at_level(&events, 1), 3);
        let transcript = replay_transcript(&events);
        assert!(transcript.contains("cycle 1: alive=2 eocs=2 verdict=add:2"));
        assert!(transcript.contains("cycle 2: alive=4 eocs=4 verdict=stop"));
        assert!(transcript.contains("coordinator_cycles=2"));
        assert!(transcript.ends_with("level1_final_alive=3\n"));
    }

    #[test]
    fn chrome_export_emits_span_pairs_and_instants() {
        let log = log();
        log.emit(0, 0, &pf(), TraceEventKind::RunStart);
        log.emit(1, 1, &pf(), TraceEventKind::ChildSpawn { warm: false });
        log.emit(1, 1, &pf(), TraceEventKind::ChildJoin);
        log.emit(0, 0, &pf(), TraceEventKind::RunEnd { ok: true, rows: 1 });
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn ws_call_without_err_field_still_parses() {
        // Exports written before the error class carried only op/ok.
        let line = "{\"seq\":1,\"t\":0.5,\"node\":0,\"level\":0,\"pf\":\"\",\
                    \"kind\":\"ws_call\",\"op\":\"GetAllStates\",\"ok\":true}";
        let events = parse_jsonl(line).expect("old ws_call line parses");
        assert_eq!(
            events[0].kind,
            TraceEventKind::WsCall {
                op: "GetAllStates".to_owned(),
                ok: true,
                err: None,
            }
        );
    }

    #[test]
    fn validate_jsonl_reports_parse_errors() {
        let errs = validate_jsonl("{\"seq\":1,not json");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("parse error"));
        assert!(validate_jsonl("").is_empty());
    }
}
