//! Client-side replica routing for elastic provider topologies.
//!
//! When a logical provider is scaled out into a [`wsmed_netsim::ReplicaGroup`],
//! the mediator — not the network — decides which replica serves each call.
//! The router sits between the resilience layer and the transport: retries,
//! hedges and circuit breakers become *per-replica* concerns (an open breaker
//! on one replica fails over instead of shedding the whole group), while the
//! planner keeps seeing one logical provider with the group's pooled capacity.
//!
//! Every policy is deterministic: selection depends only on the group view,
//! the policy's own per-group sequence counter and (for [`RouterPolicy::
//! Random`]) the seeded model RNG — never on wall time — so identically
//! seeded runs route identically.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use wsmed_netsim::{DetRng, MembershipChange};

/// How the mediator spreads calls across the replicas of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Capacity-weighted deterministic round-robin: a replica with twice
    /// the capacity receives twice the turns.
    #[default]
    Weighted,
    /// The replica with the fewest in-flight calls at selection time
    /// (ties break toward the lowest slot index) — the classic
    /// join-shortest-queue heuristic, which tracks heterogeneous and
    /// degraded replicas without knowing *why* they are slow.
    LeastInFlight,
    /// The fastest (lowest expected latency) replica until it saturates,
    /// then spill to the next fastest — a locality/affinity policy.
    LocalityAware,
    /// Uniform seeded-random choice. The ablation baseline the informed
    /// policies are measured against; not exposed through the shell.
    Random,
}

impl RouterPolicy {
    /// Stable lower-case name (shell output, bench config labels).
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::Weighted => "weighted",
            RouterPolicy::LeastInFlight => "least-in-flight",
            RouterPolicy::LocalityAware => "locality-aware",
            RouterPolicy::Random => "random",
        }
    }
}

/// A point-in-time, routable view of one replica group, built by the
/// transport (which owns the topology) for the router (which owns the
/// choice). `changes` carries any membership events the topology scenario
/// applied while building the view, so the caller can trace and count them.
#[derive(Debug, Clone)]
pub struct GroupView {
    /// Logical provider (group) name.
    pub group: String,
    /// Routable (active) replicas, in slot order.
    pub replicas: Vec<ReplicaView>,
    /// Membership events applied while this view was built.
    pub changes: Vec<MembershipChange>,
}

/// One routable replica inside a [`GroupView`].
#[derive(Debug, Clone)]
pub struct ReplicaView {
    /// Unique provider name of the replica (`"{group}"` for replica 0,
    /// `"{group}#i"` for scale-out replicas).
    pub name: String,
    /// Calls currently executing on the replica.
    pub in_flight: usize,
    /// Concurrent calls the replica serves at full speed.
    pub capacity: usize,
    /// Expected per-call model latency at nominal sizes.
    pub latency_secs: f64,
}

/// Per-run routing counters, surfaced on
/// [`crate::ExecutionReport::router`]. All zero — [`RouterStats::is_quiet`]
/// — when no router is installed or no call touched a replica group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterStats {
    /// Routing decisions made (one per routed call attempt).
    pub decisions: u64,
    /// Attempts rerouted to a different replica because the selected
    /// replica's breaker rejected it.
    pub failovers: u64,
    /// Hedged backup calls sent to a *different* replica than the primary.
    pub hedge_reroutes: u64,
    /// Replica join/leave events observed while routing (topology
    /// scenarios and autoscaling).
    pub membership_events: u64,
    /// Routed call attempts per `(group, replica)`, sorted by key.
    pub per_replica: Vec<((String, String), u64)>,
}

impl RouterStats {
    /// True when nothing was routed (single-provider topologies).
    pub fn is_quiet(&self) -> bool {
        self.decisions == 0
            && self.failovers == 0
            && self.hedge_reroutes == 0
            && self.membership_events == 0
            && self.per_replica.is_empty()
    }
}

/// Run-scoped routing counters (the collector behind [`RouterStats`]).
#[derive(Debug, Default)]
pub(crate) struct RouterCollector {
    decisions: AtomicU64,
    failovers: AtomicU64,
    hedge_reroutes: AtomicU64,
    membership_events: AtomicU64,
    per_replica: Mutex<BTreeMap<(String, String), u64>>,
}

impl RouterCollector {
    pub(crate) fn note_decision(&self, group: &str, replica: &str) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        *self
            .per_replica
            .lock()
            .entry((group.to_owned(), replica.to_owned()))
            .or_insert(0) += 1;
    }

    pub(crate) fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_hedge_reroute(&self) {
        self.hedge_reroutes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_membership(&self) {
        self.membership_events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        self.decisions.store(0, Ordering::Relaxed);
        self.failovers.store(0, Ordering::Relaxed);
        self.hedge_reroutes.store(0, Ordering::Relaxed);
        self.membership_events.store(0, Ordering::Relaxed);
        self.per_replica.lock().clear();
    }

    pub(crate) fn snapshot(&self) -> RouterStats {
        RouterStats {
            decisions: self.decisions.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            hedge_reroutes: self.hedge_reroutes.load(Ordering::Relaxed),
            membership_events: self.membership_events.load(Ordering::Relaxed),
            per_replica: self
                .per_replica
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// The deterministic replica selector. One instance per mediator; its only
/// mutable state is a per-group sequence counter (round-robin position /
/// random-stream index), so concurrent queries share a coherent rotation.
#[derive(Debug)]
pub(crate) struct Router {
    policy: RouterPolicy,
    seed: u64,
    seqs: Mutex<HashMap<String, u64>>,
}

impl Router {
    pub(crate) fn new(policy: RouterPolicy, seed: u64) -> Self {
        Router {
            policy,
            seed,
            seqs: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn policy(&self) -> RouterPolicy {
        self.policy
    }

    fn next_seq(&self, group: &str) -> u64 {
        let mut seqs = self.seqs.lock();
        let seq = seqs.entry(group.to_owned()).or_insert(0);
        let current = *seq;
        *seq += 1;
        current
    }

    /// Picks a replica from the view, never one named in `exclude`
    /// (replicas that already failed or were rejected for this logical
    /// call). `None` when the exclusions cover every routable replica.
    pub(crate) fn select(&self, view: &GroupView, exclude: &[&str]) -> Option<String> {
        let candidates: Vec<&ReplicaView> = view
            .replicas
            .iter()
            .filter(|r| !exclude.contains(&r.name.as_str()))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            RouterPolicy::Weighted => {
                // Deterministic weighted round-robin: lay the candidates'
                // capacities end to end and walk the strip one slot per
                // decision.
                let total: u64 = candidates.iter().map(|r| r.capacity.max(1) as u64).sum();
                let mut slot = self.next_seq(&view.group) % total;
                let mut pick = candidates[0];
                for r in &candidates {
                    let weight = r.capacity.max(1) as u64;
                    if slot < weight {
                        pick = r;
                        break;
                    }
                    slot -= weight;
                }
                pick
            }
            RouterPolicy::LeastInFlight => candidates
                .iter()
                .min_by_key(|r| r.in_flight)
                .expect("candidates checked non-empty"),
            RouterPolicy::LocalityAware => {
                // Fastest replica with headroom; when everything is at
                // capacity, fall back to the fastest outright.
                let mut by_latency = candidates.clone();
                by_latency.sort_by(|a, b| a.latency_secs.total_cmp(&b.latency_secs));
                by_latency
                    .iter()
                    .find(|r| r.in_flight < r.capacity.max(1))
                    .copied()
                    .unwrap_or(by_latency[0])
            }
            RouterPolicy::Random => {
                let seq = self.next_seq(&view.group);
                let roll =
                    DetRng::keyed(self.seed, &format!("router/{}", view.group), seq).next_f64();
                let idx = ((roll * candidates.len() as f64) as usize).min(candidates.len() - 1);
                candidates[idx]
            }
        };
        Some(chosen.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(replicas: &[(&str, usize, usize, f64)]) -> GroupView {
        GroupView {
            group: "svc".into(),
            replicas: replicas
                .iter()
                .map(|&(name, in_flight, capacity, latency_secs)| ReplicaView {
                    name: name.into(),
                    in_flight,
                    capacity,
                    latency_secs,
                })
                .collect(),
            changes: Vec::new(),
        }
    }

    #[test]
    fn weighted_follows_capacity_ratios() {
        let router = Router::new(RouterPolicy::Weighted, 1);
        let v = view(&[("svc", 0, 1, 0.5), ("svc#1", 0, 3, 0.5)]);
        let picks: Vec<String> = (0..8).map(|_| router.select(&v, &[]).unwrap()).collect();
        let heavy = picks.iter().filter(|p| *p == "svc#1").count();
        assert_eq!(heavy, 6, "3:1 capacity split over 8 turns: {picks:?}");
    }

    #[test]
    fn least_in_flight_picks_idle_replica_and_breaks_ties_low() {
        let router = Router::new(RouterPolicy::LeastInFlight, 1);
        let v = view(&[
            ("svc", 2, 4, 0.5),
            ("svc#1", 0, 4, 0.5),
            ("svc#2", 0, 4, 0.5),
        ]);
        assert_eq!(router.select(&v, &[]).unwrap(), "svc#1");
        let all_equal = view(&[("svc", 1, 4, 0.5), ("svc#1", 1, 4, 0.5)]);
        assert_eq!(router.select(&all_equal, &[]).unwrap(), "svc");
    }

    #[test]
    fn locality_prefers_fast_replica_until_saturated() {
        let router = Router::new(RouterPolicy::LocalityAware, 1);
        let idle = view(&[("svc", 0, 2, 0.9), ("svc#1", 0, 2, 0.2)]);
        assert_eq!(router.select(&idle, &[]).unwrap(), "svc#1");
        let fast_full = view(&[("svc", 0, 2, 0.9), ("svc#1", 2, 2, 0.2)]);
        assert_eq!(router.select(&fast_full, &[]).unwrap(), "svc");
        let all_full = view(&[("svc", 2, 2, 0.9), ("svc#1", 2, 2, 0.2)]);
        assert_eq!(router.select(&all_full, &[]).unwrap(), "svc#1");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Router::new(RouterPolicy::Random, 42);
        let b = Router::new(RouterPolicy::Random, 42);
        let v = view(&[
            ("svc", 0, 2, 0.5),
            ("svc#1", 0, 2, 0.5),
            ("svc#2", 0, 2, 0.5),
        ]);
        let pa: Vec<String> = (0..16).map(|_| a.select(&v, &[]).unwrap()).collect();
        let pb: Vec<String> = (0..16).map(|_| b.select(&v, &[]).unwrap()).collect();
        assert_eq!(pa, pb);
        // And it actually spreads across replicas.
        assert!(pa.iter().any(|p| p != &pa[0]), "all 16 picks identical");
    }

    #[test]
    fn exclusions_are_honored_and_exhaustion_returns_none() {
        let router = Router::new(RouterPolicy::LeastInFlight, 1);
        let v = view(&[("svc", 0, 2, 0.5), ("svc#1", 1, 2, 0.5)]);
        assert_eq!(router.select(&v, &["svc"]).unwrap(), "svc#1");
        assert_eq!(router.select(&v, &["svc", "svc#1"]), None);
    }

    #[test]
    fn collector_counts_and_resets() {
        let c = RouterCollector::default();
        c.note_decision("g", "g");
        c.note_decision("g", "g#1");
        c.note_decision("g", "g#1");
        c.note_failover();
        c.note_hedge_reroute();
        c.note_membership();
        let s = c.snapshot();
        assert_eq!(s.decisions, 3);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.hedge_reroutes, 1);
        assert_eq!(s.membership_events, 1);
        assert_eq!(
            s.per_replica,
            vec![
                (("g".to_owned(), "g".to_owned()), 1),
                (("g".to_owned(), "g#1".to_owned()), 2),
            ]
        );
        assert!(!s.is_quiet());
        c.reset();
        assert!(c.snapshot().is_quiet());
        assert!(RouterStats::default().is_quiet());
    }
}
