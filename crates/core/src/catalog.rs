//! The mediator's OWF catalog: what WSDL import produces.

use std::collections::HashMap;

use wsmed_sql::{MapCatalog, ViewDef, ViewKind};
use wsmed_wsdl::{OwfDef, WsdlDocument};

use crate::{CoreError, CoreResult};

/// All operation wrapper functions known to the mediator, by name.
///
/// Importing a WSDL document generates one OWF per operation (paper §II.A)
/// and registers an SQL view with the same name.
#[derive(Debug, Clone, Default)]
pub struct OwfCatalog {
    owfs: HashMap<String, OwfDef>,
}

impl OwfCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        OwfCatalog::default()
    }

    /// Imports every operation of a WSDL document, returning the generated
    /// OWF names. Operations whose result shape cannot be flattened are
    /// reported as errors.
    pub fn import(&mut self, doc: &WsdlDocument, wsdl_uri: &str) -> CoreResult<Vec<String>> {
        let mut names = Vec::with_capacity(doc.operations.len());
        for op in &doc.operations {
            let owf = OwfDef::derive(op, &doc.service_name, wsdl_uri)?;
            names.push(owf.name.clone());
            self.owfs.insert(owf.name.clone(), owf);
        }
        Ok(names)
    }

    /// Looks up an OWF by name.
    pub fn get(&self, name: &str) -> CoreResult<&OwfDef> {
        self.owfs
            .get(name)
            .ok_or_else(|| CoreError::UnknownOwf(name.to_owned()))
    }

    /// True if an OWF with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.owfs.contains_key(name)
    }

    /// All OWF names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.owfs.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    /// Builds the SQL view catalog: every OWF becomes a view (inputs ⊕
    /// outputs as columns) plus the built-in helping-function views.
    pub fn sql_catalog(&self) -> MapCatalog {
        let mut catalog = MapCatalog::with_helping_functions();
        for owf in self.owfs.values() {
            catalog.add(ViewDef {
                name: owf.name.clone(),
                kind: ViewKind::Owf,
                inputs: owf.inputs.clone(),
                outputs: owf.columns.clone(),
            });
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_sql::Catalog;
    use wsmed_store::SqlType;
    use wsmed_wsdl::{OperationDef, TypeNode};

    fn doc() -> WsdlDocument {
        WsdlDocument {
            service_name: "USZip".into(),
            target_namespace: "urn:zip".into(),
            operations: vec![OperationDef {
                name: "GetInfoByState".into(),
                inputs: vec![("USState".into(), SqlType::Charstring)],
                output: TypeNode::Record {
                    name: "GetInfoByStateResponse".into(),
                    fields: vec![TypeNode::Scalar {
                        name: "GetInfoByStateResult".into(),
                        ty: SqlType::Charstring,
                    }],
                },
                doc: None,
            }],
        }
    }

    #[test]
    fn import_and_lookup() {
        let mut cat = OwfCatalog::new();
        let names = cat.import(&doc(), "urn:zip.wsdl").unwrap();
        assert_eq!(names, vec!["GetInfoByState"]);
        assert!(cat.contains("GetInfoByState"));
        let owf = cat.get("GetInfoByState").unwrap();
        assert_eq!(owf.wsdl_uri, "urn:zip.wsdl");
        assert_eq!(owf.service, "USZip");
        assert!(matches!(
            cat.get("Nope").unwrap_err(),
            CoreError::UnknownOwf(_)
        ));
    }

    #[test]
    fn sql_catalog_has_views_and_helpers() {
        let mut cat = OwfCatalog::new();
        cat.import(&doc(), "urn:zip.wsdl").unwrap();
        let sql = cat.sql_catalog();
        let view = sql.view("GetInfoByState").unwrap();
        assert_eq!(view.kind, ViewKind::Owf);
        assert_eq!(view.inputs.len(), 1);
        assert_eq!(view.outputs.len(), 1);
        assert!(sql.view("getzipcode").is_some());
    }

    #[test]
    fn reimport_replaces() {
        let mut cat = OwfCatalog::new();
        cat.import(&doc(), "urn:first.wsdl").unwrap();
        cat.import(&doc(), "urn:second.wsdl").unwrap();
        assert_eq!(
            cat.get("GetInfoByState").unwrap().wsdl_uri,
            "urn:second.wsdl"
        );
        assert_eq!(cat.names(), vec!["GetInfoByState"]);
    }
}
