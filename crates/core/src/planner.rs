//! The cost-based parallel planner.
//!
//! The paper's plan creator is a fixed heuristic: atoms stay in the
//! calculus generator's order, every parallelizable OWF gets its own
//! process-tree level, and the caller picks fanouts by hand (the shell
//! defaults to binary). This module replaces those three decisions with a
//! search over the space the heuristic never explores, scored by
//! [`CostModel::estimate`] against calibrated [`PlannerStats`]:
//!
//! 1. **Join ordering** — [`enumerate_orderings`] walks every atom
//!    permutation that keeps binding patterns satisfied (inputs bound
//!    before use), attaching cheap local functions greedily and branching
//!    only on OWF placement so the search stays small.
//! 2. **Section splits** — a merge mask folds adjacent sections into one
//!    plan function (the `{fo, 0}` flat tree of Fig. 14), traded against
//!    separate levels by estimated cost instead of always splitting.
//! 3. **Fanouts** — per level, the planner considers the heuristic binary
//!    fanout plus capacity-greedy candidates, so the chosen vector's
//!    estimated makespan is never worse than the heuristic's.
//!
//! [`PlannerPolicy::Heuristic`] (the default) bypasses all of this and
//! reproduces the paper's plans byte-for-byte; semi-join parameter
//! pruning ([`annotate_prune`]) is a separate, optional annotation pass
//! over an already-chosen plan.

use std::collections::HashMap;
use std::fmt;

use wsmed_sql::{CalculusExpr, VarId};
use wsmed_store::FunctionRegistry;

use crate::catalog::OwfCatalog;
use crate::central::{create_central_plan, create_central_plan_for_order};
use crate::costs::{CostModel, CostStage, PlanCost, PlannerStats};
use crate::parallel::{parallelize, plan_sections, SectionStage};
use crate::plan::{PlanFunction, PlanOp, PruneSpec, QueryPlan};
use crate::{CoreError, CoreResult};

/// Which planner builds parallel plans for a mediator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerPolicy {
    /// The paper's heuristic: calculus order, one level per parallelizable
    /// OWF, binary fanouts. Produces byte-identical plans to the seed.
    #[default]
    Heuristic,
    /// Cost-based search over orderings, section merges, and fanouts.
    CostBased {
        /// Also annotate plans with learned semi-join parameter pruning.
        prune: bool,
    },
}

impl PlannerPolicy {
    /// Short display name (`heuristic` / `cost` / `cost+prune`).
    pub fn name(&self) -> &'static str {
        match self {
            PlannerPolicy::Heuristic => "heuristic",
            PlannerPolicy::CostBased { prune: false } => "cost",
            PlannerPolicy::CostBased { prune: true } => "cost+prune",
        }
    }
}

/// Caps the ordering enumeration; generous for the paper's 3–5 atom
/// queries, a hard stop for adversarial conjunctions.
const MAX_ORDERINGS: usize = 256;
/// Sections beyond this keep the no-merge split (2^(k-1) masks otherwise).
const MAX_MASKED_SECTIONS: usize = 7;
/// Fanout candidates never exceed this per level.
const MAX_FANOUT: usize = 16;

/// Enumerates atom orderings of `calc` that satisfy its binding-pattern
/// constraints, up to `cap` results.
///
/// Local (non-OWF) atoms are attached greedily as soon as their inputs
/// are bound — filters first, so selections sit as early as possible —
/// and the search branches only on which *OWF* to call next. Every
/// returned ordering is a permutation of `0..calc.atoms.len()` with all
/// inputs bound before use; binding-invalid orderings are never produced.
pub fn enumerate_orderings(calc: &CalculusExpr, cap: usize) -> Vec<Vec<usize>> {
    let n = calc.atoms.len();
    let mut results: Vec<Vec<usize>> = Vec::new();
    // The calculus generator's own order goes first so ties during the
    // cost search resolve toward the paper's plan shape.
    if calc.first_ordering_violation().is_none() {
        results.push((0..n).collect());
    }
    let mut state = OrderSearch {
        calc,
        placed: Vec::with_capacity(n),
        used: vec![false; n],
        bound: HashMap::new(),
        results: &mut results,
        cap,
    };
    state.dfs();
    results
}

struct OrderSearch<'a> {
    calc: &'a CalculusExpr,
    placed: Vec<usize>,
    used: Vec<bool>,
    /// Bound-variable reference counts (a variable may be produced by
    /// more than one placed atom).
    bound: HashMap<VarId, usize>,
    results: &'a mut Vec<Vec<usize>>,
    cap: usize,
}

impl OrderSearch<'_> {
    fn valid(&self, i: usize) -> bool {
        self.calc.atoms[i]
            .input_vars()
            .all(|v| self.bound.contains_key(&v))
    }

    fn place(&mut self, i: usize) {
        self.used[i] = true;
        self.placed.push(i);
        for &v in &self.calc.atoms[i].outputs {
            *self.bound.entry(v).or_insert(0) += 1;
        }
    }

    fn unplace(&mut self, i: usize) {
        self.used[i] = false;
        self.placed.pop();
        for &v in &self.calc.atoms[i].outputs {
            if let Some(count) = self.bound.get_mut(&v) {
                *count -= 1;
                if *count == 0 {
                    self.bound.remove(&v);
                }
            }
        }
    }

    /// First unused valid non-OWF atom, filters (zero outputs) preferred.
    fn next_local(&self) -> Option<usize> {
        let candidates = (0..self.calc.atoms.len())
            .filter(|&i| !self.used[i] && !self.calc.atoms[i].is_owf() && self.valid(i));
        candidates
            .clone()
            .find(|&i| self.calc.atoms[i].outputs.is_empty())
            .or_else(|| candidates.clone().next())
    }

    fn dfs(&mut self) {
        if self.results.len() >= self.cap {
            return;
        }
        let mut attached = Vec::new();
        while let Some(i) = self.next_local() {
            self.place(i);
            attached.push(i);
        }
        if self.placed.len() == self.calc.atoms.len() {
            if !self.results.contains(&self.placed) {
                self.results.push(self.placed.clone());
            }
        } else {
            let owfs: Vec<usize> = (0..self.calc.atoms.len())
                .filter(|&i| !self.used[i] && self.calc.atoms[i].is_owf() && self.valid(i))
                .collect();
            for i in owfs {
                self.place(i);
                self.dfs();
                self.unplace(i);
            }
        }
        for &i in attached.iter().rev() {
            self.unplace(i);
        }
    }
}

/// One process-tree level of a chosen plan, as the explanation prints it.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelExplanation {
    /// OWFs fused into this level's plan function, call order.
    pub owfs: Vec<String>,
    /// Chosen per-parent fanout.
    pub fanout: usize,
    /// Worker processes at this level.
    pub workers: usize,
    /// Estimated busy model-seconds.
    pub est_secs: f64,
}

/// Why the planner chose the plan it chose.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplanation {
    /// Policy that produced the plan (`heuristic` / `cost` / `cost+prune`).
    pub policy: &'static str,
    /// Atom function names in the chosen execution order.
    pub ordering: Vec<String>,
    /// Whether the chosen order differs from the calculus generator's.
    pub reordered: bool,
    /// OWFs that stay in the coordinator (no stream-dependent inputs).
    pub coordinator_owfs: Vec<String>,
    /// Per-level split/fanout decisions.
    pub levels: Vec<LevelExplanation>,
    /// Estimated cost of the chosen plan.
    pub cost: PlanCost,
    /// Estimated cost of the heuristic plan (calculus order, no merges,
    /// binary fanouts) under the same statistics, for comparison.
    pub heuristic_cost: PlanCost,
    /// Binding-valid orderings examined.
    pub orderings_considered: usize,
    /// (ordering, merge mask, fanout vector) candidates costed.
    pub candidates_considered: usize,
    /// Semi-join pruning annotations: `(section key, dropped params)` per
    /// annotated plan function. Empty until [`annotate_prune`] runs.
    pub prune_sections: Vec<(String, usize)>,
}

impl fmt::Display for PlanExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy: {}", self.policy)?;
        writeln!(
            f,
            "join order: {}{}",
            self.ordering.join(" -> "),
            if self.reordered { "  (reordered)" } else { "" }
        )?;
        if !self.coordinator_owfs.is_empty() {
            writeln!(
                f,
                "coordinator: {} (est {:.2}s)",
                self.coordinator_owfs.join(", "),
                self.cost.coordinator_secs
            )?;
        }
        for (i, level) in self.levels.iter().enumerate() {
            writeln!(
                f,
                "level {}: {} | fanout {} -> {} workers, est {:.2}s",
                i + 1,
                level.owfs.join(" + "),
                level.fanout,
                level.workers,
                level.est_secs
            )?;
        }
        writeln!(
            f,
            "startup est {:.2}s | makespan est {:.2}s (heuristic {:.2}s)",
            self.cost.startup_secs,
            self.cost.makespan_est(),
            self.heuristic_cost.makespan_est()
        )?;
        writeln!(
            f,
            "searched {} orderings, {} plan candidates",
            self.orderings_considered, self.candidates_considered
        )?;
        if self.prune_sections.is_empty() {
            write!(f, "semi-join pruning: none")?;
        } else {
            let total: usize = self.prune_sections.iter().map(|(_, n)| n).sum();
            write!(f, "semi-join pruning: {total} params dropped parent-side (")?;
            for (i, (key, n)) in self.prune_sections.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}:{n}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A chosen parallel plan plus the reasoning behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The parallel plan, ready to execute.
    pub parallel: QueryPlan,
    /// The fanout vector the plan realizes (0 = merged level).
    pub fanouts: Vec<usize>,
    /// The decision record.
    pub explanation: PlanExplanation,
}

/// Plans `calc` under `policy`.
///
/// `Heuristic` reproduces the paper's plan exactly — calculus atom order,
/// one level per parallelizable OWF, binary fanouts — and only *costs* it
/// for the explanation. `CostBased` searches orderings × merges × fanouts
/// and returns the estimated-makespan argmin; the heuristic plan is
/// always in the candidate set, so the chosen estimate is never worse.
pub fn plan_with_policy(
    policy: PlannerPolicy,
    calc: &CalculusExpr,
    owfs: &OwfCatalog,
    functions: &FunctionRegistry,
    stats: &PlannerStats,
    model: &CostModel,
) -> CoreResult<PlannedQuery> {
    let identity_central = create_central_plan(calc, owfs, functions)?;
    let (id_coord, id_sections) = plan_sections(&identity_central);
    if id_sections.is_empty() {
        return Err(CoreError::InvalidPlan(
            "plan has no parallelizable web service calls \
             (every OWF lacks stream-dependent inputs)"
                .into(),
        ));
    }
    let heuristic_fanouts = vec![2usize; id_sections.len()];
    let heuristic_cost = model.estimate(
        &cost_stages(&id_coord, stats, model),
        &id_sections
            .iter()
            .map(|s| cost_stages(s, stats, model))
            .collect::<Vec<_>>(),
        &heuristic_fanouts,
    );
    let atom_names = |order: &[usize]| -> Vec<String> {
        order
            .iter()
            .map(|&i| calc.atoms[i].function.clone())
            .collect()
    };
    let identity: Vec<usize> = (0..calc.atoms.len()).collect();

    if policy == PlannerPolicy::Heuristic {
        let parallel = parallelize(&identity_central, &heuristic_fanouts)?;
        let levels = id_sections
            .iter()
            .zip(&heuristic_cost.levels)
            .map(|(stages, cost)| LevelExplanation {
                owfs: owf_names(stages),
                fanout: 2,
                workers: cost.workers,
                est_secs: cost.secs,
            })
            .collect();
        return Ok(PlannedQuery {
            parallel,
            fanouts: heuristic_fanouts,
            explanation: PlanExplanation {
                policy: policy.name(),
                ordering: atom_names(&identity),
                reordered: false,
                coordinator_owfs: owf_names(&id_coord),
                levels,
                cost: heuristic_cost.clone(),
                heuristic_cost,
                orderings_considered: 1,
                candidates_considered: 1,
                prune_sections: Vec::new(),
            },
        });
    }

    // ---- cost-based search -------------------------------------------------
    let orderings = enumerate_orderings(calc, MAX_ORDERINGS);
    let mut candidates_considered = 0usize;
    let mut best: Option<Best> = None;
    for order in &orderings {
        let central = if *order == identity {
            identity_central.clone()
        } else {
            match create_central_plan_for_order(calc, order, owfs, functions) {
                Ok(plan) => plan,
                // Enumerated orderings are binding-valid by construction;
                // skip defensively rather than fail the whole search.
                Err(_) => continue,
            }
        };
        let (coord, sections) = plan_sections(&central);
        if sections.is_empty() {
            continue;
        }
        let coord_stages = cost_stages(&coord, stats, model);
        let section_stages: Vec<Vec<CostStage>> = sections
            .iter()
            .map(|s| cost_stages(s, stats, model))
            .collect();

        let k = sections.len();
        let mask_count = if k <= MAX_MASKED_SECTIONS {
            1usize << (k - 1)
        } else {
            1
        };
        for mask_bits in 0..mask_count {
            let mask: Vec<bool> = (0..k)
                .map(|i| i > 0 && (mask_bits >> (i - 1)) & 1 == 1)
                .collect();
            let merged = merge_stages(&section_stages, &mask);
            let mut chosen = Vec::with_capacity(merged.len());
            search_fanouts(
                model,
                &coord_stages,
                &merged,
                &mut chosen,
                1,
                &mut candidates_considered,
                &mut |fanouts, cost| {
                    let better = best
                        .as_ref()
                        .is_none_or(|b| cost.makespan_est() < b.cost.makespan_est());
                    if better {
                        best = Some(Best {
                            order: order.clone(),
                            central: central.clone(),
                            sections: sections.clone(),
                            coord: coord.clone(),
                            mask: mask.clone(),
                            fanouts: fanouts.to_vec(),
                            cost,
                        });
                    }
                },
            );
        }
    }
    let best = best.ok_or_else(|| {
        CoreError::InvalidPlan("cost-based search produced no candidate plan".into())
    })?;

    // Realize the winner: merged levels become 0 entries in the vector.
    let mut full_fanouts = Vec::with_capacity(best.sections.len());
    let mut kept = best.fanouts.iter();
    for &merge in &best.mask {
        full_fanouts.push(if merge {
            0
        } else {
            *kept.next().expect("one fanout per kept level")
        });
    }
    let parallel = parallelize(&best.central, &full_fanouts)?;

    let merged_sections = merge_stages(&best.sections, &best.mask);
    let levels = merged_sections
        .iter()
        .zip(&best.cost.levels)
        .zip(&best.fanouts)
        .map(|((stages, cost), &fanout)| LevelExplanation {
            owfs: owf_names(stages),
            fanout,
            workers: cost.workers,
            est_secs: cost.secs,
        })
        .collect();
    Ok(PlannedQuery {
        parallel,
        fanouts: full_fanouts,
        explanation: PlanExplanation {
            policy: policy.name(),
            reordered: best.order != identity,
            ordering: atom_names(&best.order),
            coordinator_owfs: owf_names(&best.coord),
            levels,
            cost: best.cost,
            heuristic_cost,
            orderings_considered: orderings.len(),
            candidates_considered,
            prune_sections: Vec::new(),
        },
    })
}

struct Best {
    order: Vec<usize>,
    central: QueryPlan,
    sections: Vec<Vec<SectionStage>>,
    coord: Vec<SectionStage>,
    mask: Vec<bool>,
    fanouts: Vec<usize>,
    cost: PlanCost,
}

fn owf_names<T: StageLike>(stages: &[T]) -> Vec<String> {
    stages.iter().filter_map(StageLike::owf_name).collect()
}

trait StageLike {
    fn owf_name(&self) -> Option<String>;
}

impl StageLike for SectionStage {
    fn owf_name(&self) -> Option<String> {
        match self {
            SectionStage::Owf(name) => Some(name.clone()),
            SectionStage::Function(_) => None,
        }
    }
}

impl StageLike for CostStage {
    fn owf_name(&self) -> Option<String> {
        match self {
            CostStage::Owf { name, .. } => Some(name.clone()),
            CostStage::Function { .. } => None,
        }
    }
}

/// Resolves section stages against the statistics layer.
fn cost_stages(stages: &[SectionStage], stats: &PlannerStats, model: &CostModel) -> Vec<CostStage> {
    stages
        .iter()
        .map(|stage| match stage {
            SectionStage::Owf(name) => {
                let (latency_secs, capacity) = match stats.profile(name) {
                    Some(p) => (p.latency_secs, p.capacity),
                    None => (model.default_latency_secs, model.default_capacity),
                };
                CostStage::Owf {
                    name: name.clone(),
                    latency_secs,
                    capacity,
                    rows_per_call: stats.rows_per_call(name, model.default_rows_per_call),
                }
            }
            SectionStage::Function(name) => CostStage::Function {
                name: name.clone(),
                rows_per_call: stats.rows_per_call(name, 1.0),
            },
        })
        .collect()
}

/// Folds masked sections into their predecessors (`mask[i]` merges section
/// `i` into the level before it; `mask[0]` is always false).
fn merge_stages<T: Clone>(sections: &[Vec<T>], mask: &[bool]) -> Vec<Vec<T>> {
    let mut merged: Vec<Vec<T>> = Vec::new();
    for (section, &merge) in sections.iter().zip(mask) {
        if merge {
            merged
                .last_mut()
                .expect("mask[0] is never set")
                .extend(section.iter().cloned());
        } else {
            merged.push(section.clone());
        }
    }
    merged
}

/// Enumerates fanout vectors level by level — the heuristic binary fanout
/// plus capacity-greedy candidates — invoking `visit` on each complete
/// vector with its estimated cost.
fn search_fanouts(
    model: &CostModel,
    coordinator: &[CostStage],
    levels: &[Vec<CostStage>],
    chosen: &mut Vec<usize>,
    workers_above: usize,
    evaluated: &mut usize,
    visit: &mut dyn FnMut(&[usize], PlanCost),
) {
    if chosen.len() == levels.len() {
        let cost = model.estimate(coordinator, levels, chosen);
        *evaluated += 1;
        visit(chosen, cost);
        return;
    }
    let level = &levels[chosen.len()];
    let capacity = level
        .iter()
        .filter_map(|s| match s {
            CostStage::Owf { capacity, .. } => Some(*capacity),
            CostStage::Function { .. } => None,
        })
        .min()
        .unwrap_or(model.default_capacity)
        .max(1);
    let greedy = capacity.div_ceil(workers_above).clamp(1, MAX_FANOUT);
    let mut candidates = vec![2, greedy, (greedy + 1).min(MAX_FANOUT)];
    candidates.sort_unstable();
    candidates.dedup();
    for fanout in candidates {
        chosen.push(fanout);
        search_fanouts(
            model,
            coordinator,
            levels,
            chosen,
            workers_above * fanout,
            evaluated,
            visit,
        );
        chosen.pop();
    }
}

// ---------------------------------------------------------------------------
// Semi-join pruning annotation
// ---------------------------------------------------------------------------

/// Stable identity of a plan function's *own* section: an FNV-1a digest
/// over its parameter arity and stage structure, excluding nested
/// parallel operators and their fanouts/configs — so the key survives
/// fanout re-tuning between runs and empty-parameter observations keep
/// accumulating under it.
pub fn section_key(pf: &PlanFunction) -> String {
    let mut desc = format!("arity:{};", pf.param_arity);
    let mut op: &PlanOp = &pf.body;
    loop {
        match op {
            // Exclude the nested section entirely — only this pf's stages.
            PlanOp::FfApply { input, .. } | PlanOp::AffApply { input, .. } => {
                op = input;
                continue;
            }
            PlanOp::ApplyOwf { owf, args, .. } => {
                desc.push_str(&format!("owf:{owf}{args:?};"));
            }
            PlanOp::ApplyFunction { function, args, .. } => {
                desc.push_str(&format!("fn:{function}{args:?};"));
            }
            PlanOp::Extend { exprs, .. } => desc.push_str(&format!("ext:{exprs:?};")),
            PlanOp::Project { columns, .. } => desc.push_str(&format!("proj:{columns:?};")),
            PlanOp::Sort { keys, .. } => desc.push_str(&format!("sort:{keys:?};")),
            PlanOp::Distinct { .. } => desc.push_str("distinct;"),
            PlanOp::Limit { count, .. } => desc.push_str(&format!("limit:{count};")),
            PlanOp::Count { .. } => desc.push_str("count;"),
            PlanOp::GroupBy {
                key_count, aggs, ..
            } => desc.push_str(&format!("group:{key_count}:{aggs:?};")),
            PlanOp::Unit | PlanOp::Param { .. } => break,
        }
        match op.input() {
            Some(input) => op = input,
            None => break,
        }
    }
    format!("{:016x}", fnv1a64(desc.as_bytes()))
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Annotates every plan function in `plan` with a [`PruneSpec`]: its
/// stable section key plus the wire-encoded parameters `stats` has
/// observed to evaluate to the empty stream. Returns
/// `(section key, dropped param count)` per annotated function.
///
/// Sound because dropping a parameter whose evaluation is
/// deterministically empty cannot change the concatenated result stream;
/// parameters are only recorded after an evaluation produced zero rows
/// with no skipped (failed/degraded) calls.
pub fn annotate_prune(plan: &mut QueryPlan, stats: &PlannerStats) -> Vec<(String, usize)> {
    let mut annotated = Vec::new();
    walk_prune(&mut plan.root, stats, &mut annotated);
    annotated
}

fn walk_prune(op: &mut PlanOp, stats: &PlannerStats, annotated: &mut Vec<(String, usize)>) {
    match op {
        PlanOp::FfApply { pf, input, .. } | PlanOp::AffApply { pf, input, .. } => {
            let key = section_key(pf);
            let drop_params = stats.empty_params(&key);
            annotated.push((key.clone(), drop_params.len()));
            pf.prune = Some(PruneSpec {
                section_key: key,
                drop_params,
            });
            walk_prune(&mut pf.body, stats, annotated);
            walk_prune(input, stats, annotated);
        }
        other => {
            if let Some(input) = other.input_mut() {
                walk_prune(input, stats, annotated);
            }
        }
    }
}

/// Strips every [`PruneSpec`] from `plan` (the inverse of
/// [`annotate_prune`]), restoring heuristic-identical bytes.
pub fn strip_prune(plan: &mut QueryPlan) {
    fn walk(op: &mut PlanOp) {
        match op {
            PlanOp::FfApply { pf, input, .. } | PlanOp::AffApply { pf, input, .. } => {
                pf.prune = None;
                walk(&mut pf.body);
                walk(input);
            }
            other => {
                if let Some(input) = other.input_mut() {
                    walk(input);
                }
            }
        }
    }
    walk(&mut plan.root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::ProviderProfile;
    use bytes::Bytes;
    use wsmed_sql::{generate_calculus, parse_select};
    use wsmed_store::SqlType;
    use wsmed_wsdl::{OperationDef, TypeNode, WsdlDocument};

    /// A three-OWF chain catalog: states -> airports -> departures, plus
    /// an independent second root `GetAllRegions` so reordering has room.
    fn catalog() -> OwfCatalog {
        let mut cat = OwfCatalog::new();
        let mut add = |name: &str, inputs: Vec<(&str, SqlType)>, cols: Vec<(&str, SqlType)>| {
            let op = OperationDef {
                name: name.into(),
                inputs: inputs.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
                output: TypeNode::Record {
                    name: format!("{name}Response"),
                    fields: cols
                        .iter()
                        .map(|(n, t)| TypeNode::Scalar {
                            name: (*n).to_owned(),
                            ty: *t,
                        })
                        .collect(),
                },
                doc: None,
            };
            let doc = WsdlDocument {
                service_name: "Test".into(),
                target_namespace: "urn:t".into(),
                operations: vec![op],
            };
            cat.import(&doc, "urn:t.wsdl").unwrap();
        };
        add("GetAllStates", vec![], vec![("State", SqlType::Charstring)]);
        add(
            "GetAirports",
            vec![("State", SqlType::Charstring)],
            vec![("Airport", SqlType::Charstring)],
        );
        add(
            "GetDepartures",
            vec![("Airport", SqlType::Charstring)],
            vec![
                ("FlightNo", SqlType::Charstring),
                ("Status", SqlType::Charstring),
            ],
        );
        cat
    }

    fn chain_calc(owfs: &OwfCatalog) -> CalculusExpr {
        let stmt = parse_select(
            "select d.FlightNo from GetAllStates s, GetAirports a, GetDepartures d \
             where s.State = a.State and a.Airport = d.Airport \
             and d.Status = 'Delayed'",
        )
        .unwrap();
        generate_calculus(&stmt, &owfs.sql_catalog()).unwrap()
    }

    fn seeded_stats() -> std::sync::Arc<PlannerStats> {
        let stats = PlannerStats::new();
        for (owf, capacity, latency) in [
            ("GetAllStates", 3usize, 0.6),
            ("GetAirports", 4, 0.8),
            ("GetDepartures", 5, 0.7),
        ] {
            stats.seed_profile(
                owf,
                ProviderProfile {
                    provider: "test".into(),
                    capacity,
                    latency_secs: latency,
                },
            );
        }
        stats
    }

    #[test]
    fn enumerated_orderings_are_all_binding_valid() {
        let owfs = catalog();
        let calc = chain_calc(&owfs);
        let orderings = enumerate_orderings(&calc, 256);
        assert!(!orderings.is_empty());
        let funcs = FunctionRegistry::with_builtins();
        for order in &orderings {
            // Every enumerated ordering must plan cleanly — the binding
            // check inside create_central_plan would reject invalid ones.
            create_central_plan_for_order(&calc, order, &owfs, &funcs).unwrap();
        }
        // The identity ordering is always the first candidate.
        assert_eq!(orderings[0], (0..calc.atoms.len()).collect::<Vec<_>>());
        // No duplicates.
        for (i, a) in orderings.iter().enumerate() {
            assert!(!orderings[i + 1..].contains(a), "duplicate ordering {a:?}");
        }
    }

    #[test]
    fn cost_search_never_beats_itself_with_heuristic() {
        let owfs = catalog();
        let calc = chain_calc(&owfs);
        let stats = seeded_stats();
        let model = CostModel::default();
        let funcs = FunctionRegistry::with_builtins();
        let planned = plan_with_policy(
            PlannerPolicy::CostBased { prune: false },
            &calc,
            &owfs,
            &funcs,
            &stats,
            &model,
        )
        .unwrap();
        // The heuristic candidate is always in the search space.
        assert!(
            planned.explanation.cost.makespan_est()
                <= planned.explanation.heuristic_cost.makespan_est() + 1e-9
        );
        assert!(planned.explanation.candidates_considered >= 1);
        // And for this capacity-rich chain it is strictly better.
        assert!(
            planned.explanation.cost.makespan_est()
                < planned.explanation.heuristic_cost.makespan_est()
        );
    }

    #[test]
    fn heuristic_policy_is_binary_fanout_calculus_order() {
        let owfs = catalog();
        let calc = chain_calc(&owfs);
        let stats = PlannerStats::new();
        let model = CostModel::default();
        let funcs = FunctionRegistry::with_builtins();
        let planned = plan_with_policy(
            PlannerPolicy::Heuristic,
            &calc,
            &owfs,
            &funcs,
            &stats,
            &model,
        )
        .unwrap();
        let central = create_central_plan(&calc, &owfs, &funcs).unwrap();
        let reference = parallelize(&central, &vec![2, 2]).unwrap();
        assert_eq!(planned.parallel, reference);
        assert_eq!(planned.fanouts, vec![2, 2]);
        assert!(!planned.explanation.reordered);
    }

    #[test]
    fn section_key_is_stable_across_fanouts_and_distinct_across_sections() {
        let owfs = catalog();
        let calc = chain_calc(&owfs);
        let funcs = FunctionRegistry::with_builtins();
        let central = create_central_plan(&calc, &owfs, &funcs).unwrap();
        let keys_of = |plan: &QueryPlan| {
            let mut plan = plan.clone();
            annotate_prune(&mut plan, &PlannerStats::new())
                .into_iter()
                .map(|(k, _)| k)
                .collect::<Vec<_>>()
        };
        let a = keys_of(&parallelize(&central, &vec![2, 2]).unwrap());
        let b = keys_of(&parallelize(&central, &vec![5, 3]).unwrap());
        assert_eq!(a, b, "keys must survive fanout changes");
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1], "distinct sections get distinct keys");
    }

    #[test]
    fn annotate_prune_attaches_observed_empties_and_strips_clean() {
        let owfs = catalog();
        let calc = chain_calc(&owfs);
        let funcs = FunctionRegistry::with_builtins();
        let central = create_central_plan(&calc, &owfs, &funcs).unwrap();
        let plan = parallelize(&central, &vec![2, 2]).unwrap();
        let stats = PlannerStats::new();
        // Learn the keys, then feed one empty under the first key.
        let mut probe = plan.clone();
        let keys = annotate_prune(&mut probe, &stats);
        stats.observe_empty(&keys[0].0, Bytes::copy_from_slice(b"param"));
        let mut annotated = plan.clone();
        let info = annotate_prune(&mut annotated, &stats);
        assert_eq!(info[0].1, 1);
        assert_eq!(info[1].1, 0);
        // Stripping restores the original (heuristic-identical) bytes.
        let mut stripped = annotated.clone();
        strip_prune(&mut stripped);
        assert_eq!(stripped, plan);
        let root_pf = |p: &QueryPlan| {
            let PlanOp::Project { input, .. } = &p.root else {
                panic!()
            };
            let PlanOp::FfApply { pf, .. } = &**input else {
                panic!()
            };
            pf.clone()
        };
        assert_eq!(
            crate::wire::encode_plan_function(&root_pf(&stripped)),
            crate::wire::encode_plan_function(&root_pf(&plan))
        );
    }
}
