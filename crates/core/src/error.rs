//! Unified error type for the query processor.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised while compiling or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// SQL frontend error.
    Sql(wsmed_sql::SqlError),
    /// WSDL import error.
    Wsdl(wsmed_wsdl::WsdlError),
    /// Store / helping-function error.
    Store(wsmed_store::StoreError),
    /// Network / web-service error.
    Net(wsmed_netsim::NetError),
    /// An OWF referenced by a plan is not registered.
    UnknownOwf(String),
    /// Plan deserialization failed (corrupt shipped bytes).
    Wire(String),
    /// A query process died or a channel closed unexpectedly.
    ProcessFailure(String),
    /// A malformed plan (internal invariant violation).
    InvalidPlan(String),
    /// A web service call exceeded its per-call model-time deadline (the
    /// caller was charged exactly the deadline).
    DeadlineExceeded {
        /// Provider whose call timed out.
        provider: String,
        /// Operation being invoked.
        operation: String,
        /// The deadline that was charged, in model seconds.
        deadline_model_secs: f64,
    },
    /// The per-provider circuit breaker is open: the call was rejected
    /// without reaching the wire.
    CircuitOpen {
        /// Provider whose breaker is open.
        provider: String,
        /// Operation that was rejected.
        operation: String,
    },
    /// Admission control shed the work before it ran: a query or call
    /// exceeded the mediator's [`crate::QuotaPolicy`].
    Admission {
        /// Tenant whose quota was exhausted.
        tenant: String,
        /// Which budget rejected the work.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sql(e) => write!(f, "SQL error: {e}"),
            CoreError::Wsdl(e) => write!(f, "WSDL error: {e}"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Net(e) => write!(f, "web service error: {e}"),
            CoreError::UnknownOwf(name) => write!(f, "no OWF registered for {name:?}"),
            CoreError::Wire(msg) => write!(f, "wire format error: {msg}"),
            CoreError::ProcessFailure(msg) => write!(f, "query process failure: {msg}"),
            CoreError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            CoreError::DeadlineExceeded {
                provider,
                operation,
                deadline_model_secs,
            } => write!(
                f,
                "deadline of {deadline_model_secs} model s exceeded calling \
                 {provider:?}/{operation:?}"
            ),
            CoreError::CircuitOpen {
                provider,
                operation,
            } => write!(
                f,
                "circuit breaker open for {provider:?}: {operation:?} rejected"
            ),
            CoreError::Admission { tenant, reason } => {
                write!(f, "admission control rejected tenant {tenant:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<wsmed_sql::SqlError> for CoreError {
    fn from(e: wsmed_sql::SqlError) -> Self {
        CoreError::Sql(e)
    }
}

impl From<wsmed_wsdl::WsdlError> for CoreError {
    fn from(e: wsmed_wsdl::WsdlError) -> Self {
        CoreError::Wsdl(e)
    }
}

impl From<wsmed_store::StoreError> for CoreError {
    fn from(e: wsmed_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<wsmed_netsim::NetError> for CoreError {
    fn from(e: wsmed_netsim::NetError) -> Self {
        CoreError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = wsmed_sql::SqlError::UnknownName("v".into()).into();
        assert!(e.to_string().contains("SQL error"));
        let e: CoreError = wsmed_netsim::NetError::UnknownProvider("p".into()).into();
        assert!(e.to_string().contains("web service error"));
        let e: CoreError = wsmed_store::StoreError::UnknownFunction("f".into()).into();
        assert!(e.to_string().contains("store error"));
        assert!(CoreError::UnknownOwf("X".into()).to_string().contains("X"));
        assert!(CoreError::Wire("truncated".into())
            .to_string()
            .contains("truncated"));
    }
}
