//! The central plan creator (paper §IV, Fig. 6 and Fig. 10).
//!
//! Translates an ordered calculus expression into the naïve central
//! execution plan: a chain of γ (apply) operators over a unit input, one
//! per atom, with a final projection to the query head. Directly
//! interpretable — "but with very bad performance since many web service
//! operations are applied in sequence" — which is exactly the baseline the
//! parallelizer improves on.

use std::collections::HashMap;

use wsmed_sql::{CalculusExpr, Term, VarId};
use wsmed_store::FunctionRegistry;

use crate::catalog::OwfCatalog;
use crate::plan::{ArgExpr, PlanOp, QueryPlan};
use crate::{CoreError, CoreResult};

/// Builds the central plan for a calculus expression.
pub fn create_central_plan(
    calc: &CalculusExpr,
    owfs: &OwfCatalog,
    functions: &FunctionRegistry,
) -> CoreResult<QueryPlan> {
    if let Some(i) = calc.first_ordering_violation() {
        return Err(CoreError::InvalidPlan(format!(
            "calculus atom #{i} ({}) consumes unbound variables",
            calc.atoms[i].function
        )));
    }

    let mut columns: HashMap<VarId, usize> = HashMap::new();
    let mut arity = 0usize;
    let mut plan = PlanOp::Unit;

    for atom in &calc.atoms {
        let args = atom
            .inputs
            .iter()
            .map(|term| term_to_arg(term, &columns))
            .collect::<CoreResult<Vec<ArgExpr>>>()?;

        let output_arity = if atom.is_owf() {
            let owf = owfs.get(&atom.function)?;
            if owf.columns.len() != atom.outputs.len() {
                return Err(CoreError::InvalidPlan(format!(
                    "OWF {} yields {} columns but the calculus expects {}",
                    atom.function,
                    owf.columns.len(),
                    atom.outputs.len()
                )));
            }
            let n = owf.columns.len();
            plan = PlanOp::ApplyOwf {
                owf: atom.function.clone(),
                args,
                output_arity: n,
                input: Box::new(plan),
            };
            n
        } else {
            let signature = functions.signature(&atom.function)?;
            if signature.outputs.len() != atom.outputs.len() {
                return Err(CoreError::InvalidPlan(format!(
                    "function {} yields {} columns but the calculus expects {}",
                    atom.function,
                    signature.outputs.len(),
                    atom.outputs.len()
                )));
            }
            let n = signature.outputs.len();
            plan = PlanOp::ApplyFunction {
                function: atom.function.clone(),
                args,
                output_arity: n,
                input: Box::new(plan),
            };
            n
        };

        for (i, &var) in atom.outputs.iter().enumerate() {
            columns.insert(var, arity + i);
        }
        arity += output_arity;
    }

    // ---- head: constants are attached via Extend, then projected ---------
    let mut const_exprs = Vec::new();
    let mut head_columns = Vec::with_capacity(calc.head.len());
    for term in &calc.head {
        match term {
            Term::Var(v) => {
                let col = columns.get(v).copied().ok_or_else(|| {
                    CoreError::InvalidPlan(format!(
                        "projected variable {} is never produced",
                        calc.var_names
                            .get(*v)
                            .cloned()
                            .unwrap_or_else(|| format!("v{v}"))
                    ))
                })?;
                head_columns.push(col);
            }
            Term::Const(c) => {
                head_columns.push(arity + const_exprs.len());
                const_exprs.push(ArgExpr::Const(c.clone()));
            }
        }
    }
    if !const_exprs.is_empty() {
        plan = PlanOp::Extend {
            exprs: const_exprs,
            input: Box::new(plan),
        };
    }
    plan = PlanOp::Project {
        columns: head_columns,
        input: Box::new(plan),
    };
    // Grouped aggregation: the head is keys ⊕ aggregate arguments; GroupBy
    // emits keys ⊕ aggregate values, and a final projection restores the
    // SELECT order.
    if let Some(group) = &calc.group {
        plan = PlanOp::GroupBy {
            key_count: group.key_count,
            aggs: group.aggs.clone(),
            input: Box::new(plan),
        };
        let out_cols: Vec<usize> = group
            .output
            .iter()
            .map(|r| match r {
                wsmed_sql::OutputRef::Key(i) => *i,
                wsmed_sql::OutputRef::Agg(j) => group.key_count + j,
            })
            .collect();
        if out_cols != (0..group.key_count + group.aggs.len()).collect::<Vec<_>>() {
            plan = PlanOp::Project {
                columns: out_cols,
                input: Box::new(plan),
            };
        }
        // HAVING: filters over the SELECT-order output, reusing the same
        // filter functions WHERE predicates compile to.
        for (position, function, literal) in &group.having {
            plan = PlanOp::ApplyFunction {
                function: function.clone(),
                args: vec![ArgExpr::Col(*position), ArgExpr::Const(literal.clone())],
                output_arity: 0,
                input: Box::new(plan),
            };
        }
    }
    // Post-processing, applied to the projected head tuples in SQL order:
    // DISTINCT, then ORDER BY, then LIMIT. All coordinator-side.
    if calc.distinct {
        plan = PlanOp::Distinct {
            input: Box::new(plan),
        };
    }
    if calc.count {
        plan = PlanOp::Count {
            input: Box::new(plan),
        };
    }
    if !calc.order_by.is_empty() {
        plan = PlanOp::Sort {
            keys: calc.order_by.clone(),
            input: Box::new(plan),
        };
    }
    if let Some(count) = calc.limit {
        plan = PlanOp::Limit {
            count,
            input: Box::new(plan),
        };
    }

    let column_names = if calc.count {
        vec!["count".to_owned()]
    } else if let Some(group) = &calc.group {
        group.output_names.clone()
    } else {
        calc.head
            .iter()
            .map(|term| match term {
                Term::Var(v) => calc
                    .var_names
                    .get(*v)
                    .cloned()
                    .unwrap_or_else(|| format!("v{v}")),
                Term::Const(c) => c.render(),
            })
            .collect()
    };

    Ok(QueryPlan {
        root: plan,
        column_names,
    })
}

/// Builds the central plan for `calc` with its atoms re-ordered by
/// `order`, a permutation of `0..calc.atoms.len()`.
///
/// Used by the cost-based planner ([`crate::planner`]) to realize an
/// alternative join ordering: atom permutation leaves every `VarId` (and
/// hence the head, `ORDER BY`, and grouping references) valid, so the
/// reordered expression plans exactly like the original — provided it
/// still satisfies the binding-pattern constraints, which
/// [`create_central_plan`] re-checks.
pub fn create_central_plan_for_order(
    calc: &CalculusExpr,
    order: &[usize],
    owfs: &OwfCatalog,
    functions: &FunctionRegistry,
) -> CoreResult<QueryPlan> {
    if order.len() != calc.atoms.len() {
        return Err(CoreError::InvalidPlan(format!(
            "ordering has {} entries but the calculus has {} atoms",
            order.len(),
            calc.atoms.len()
        )));
    }
    let mut seen = vec![false; calc.atoms.len()];
    for &i in order {
        if i >= calc.atoms.len() || seen[i] {
            return Err(CoreError::InvalidPlan(format!(
                "ordering is not a permutation of the atom indices: {order:?}"
            )));
        }
        seen[i] = true;
    }
    let mut reordered = calc.clone();
    reordered.atoms = order.iter().map(|&i| calc.atoms[i].clone()).collect();
    create_central_plan(&reordered, owfs, functions)
}

fn term_to_arg(term: &Term, columns: &HashMap<VarId, usize>) -> CoreResult<ArgExpr> {
    match term {
        Term::Const(c) => Ok(ArgExpr::Const(c.clone())),
        Term::Var(v) => columns
            .get(v)
            .map(|&c| ArgExpr::Col(c))
            .ok_or_else(|| CoreError::InvalidPlan(format!("variable v{v} consumed before bound"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsmed_sql::{generate_calculus, parse_select, MapCatalog, ViewDef, ViewKind};
    use wsmed_store::{SqlType, Value};
    use wsmed_wsdl::{FlattenSpec, LeafKind, OwfDef};

    /// A two-OWF catalog shaped like the paper's Query2 chain.
    fn owf_catalog() -> OwfCatalog {
        let mut cat = OwfCatalog::new();
        let doc = wsmed_wsdl::WsdlDocument {
            service_name: "Test".into(),
            target_namespace: "urn:t".into(),
            operations: vec![],
        };
        // Bypass import: insert OWFs directly via import of tailored docs is
        // clunky here, so construct defs and push through a tiny helper.
        let mut add = |name: &str, inputs: Vec<(&str, SqlType)>, cols: Vec<(&str, SqlType)>| {
            let owf = OwfDef {
                name: name.into(),
                service: "Test".into(),
                wsdl_uri: "urn:t.wsdl".into(),
                operation: name.into(),
                inputs: inputs.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
                columns: cols.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
                flatten: FlattenSpec {
                    path: vec![],
                    leaf: LeafKind::Row(cols.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect()),
                },
            };
            cat_insert(&mut cat, owf);
        };
        add("GetAllStates", vec![], vec![("State", SqlType::Charstring)]);
        add(
            "GetInfoByState",
            vec![("USState", SqlType::Charstring)],
            vec![("GetInfoByStateResult", SqlType::Charstring)],
        );
        let _ = doc;
        cat
    }

    /// Inserts an OwfDef by round-tripping through import of a synthetic
    /// one-operation document (keeps `OwfCatalog`'s API surface small).
    fn cat_insert(cat: &mut OwfCatalog, owf: OwfDef) {
        use wsmed_wsdl::{OperationDef, TypeNode, WsdlDocument};
        let op = OperationDef {
            name: owf.name.clone(),
            inputs: owf.inputs.clone(),
            output: TypeNode::Record {
                name: format!("{}Response", owf.name),
                fields: owf
                    .columns
                    .iter()
                    .map(|(n, t)| TypeNode::Scalar {
                        name: n.clone(),
                        ty: *t,
                    })
                    .collect(),
            },
            doc: None,
        };
        let doc = WsdlDocument {
            service_name: owf.service.clone(),
            target_namespace: "urn:t".into(),
            operations: vec![op],
        };
        cat.import(&doc, &owf.wsdl_uri).unwrap();
    }

    fn sql_catalog(cat: &OwfCatalog) -> MapCatalog {
        cat.sql_catalog()
    }

    fn compile(sql: &str) -> (QueryPlan, OwfCatalog) {
        let owfs = owf_catalog();
        let stmt = parse_select(sql).unwrap();
        let calc = generate_calculus(&stmt, &sql_catalog(&owfs)).unwrap();
        let plan = create_central_plan(&calc, &owfs, &FunctionRegistry::with_builtins()).unwrap();
        (plan, owfs)
    }

    #[test]
    fn chain_matches_dependency_order() {
        let (plan, _) = compile(
            "select gi.GetInfoByStateResult from GetAllStates gs, GetInfoByState gi \
             where gs.State=gi.USState",
        );
        assert_eq!(
            plan.root.owf_calls(),
            vec!["GetAllStates", "GetInfoByState"]
        );
        // Root is a projection of the one head column.
        match &plan.root {
            PlanOp::Project { columns, .. } => assert_eq!(columns, &vec![1]),
            other => panic!("expected projection, got {other:?}"),
        }
        assert_eq!(plan.column_names, vec!["getinfobystateresult"]);
    }

    #[test]
    fn owf_args_reference_upstream_columns() {
        let (plan, _) = compile(
            "select gi.GetInfoByStateResult from GetAllStates gs, GetInfoByState gi \
             where gs.State=gi.USState",
        );
        let inner = plan.root.input().unwrap();
        match inner {
            PlanOp::ApplyOwf { owf, args, .. } => {
                assert_eq!(owf, "GetInfoByState");
                assert_eq!(args, &vec![ArgExpr::Col(0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_head_terms_are_extended() {
        let (plan, _) = compile(
            "select gi.USState, gi.GetInfoByStateResult from GetInfoByState gi \
             where gi.USState='CO'",
        );
        // gi.USState resolved to the constant 'CO'; an Extend supplies it.
        let mut found_extend = false;
        let mut op = &plan.root;
        while let Some(input) = op.input() {
            if let PlanOp::Extend { exprs, .. } = op {
                assert_eq!(exprs, &vec![ArgExpr::Const(Value::str("CO"))]);
                found_extend = true;
            }
            op = input;
        }
        assert!(found_extend, "no Extend found in {plan}");
        assert_eq!(plan.column_names, vec!["CO", "getinfobystateresult"]);
    }

    #[test]
    fn filter_atoms_have_zero_output_arity() {
        let (plan, _) = compile(
            "select gs.State from GetAllStates gs, GetInfoByState gi \
             where gs.State=gi.USState and gi.GetInfoByStateResult='80840'",
        );
        let mut found_filter = false;
        let mut op = &plan.root;
        loop {
            if let PlanOp::ApplyFunction {
                function,
                output_arity,
                ..
            } = op
            {
                if function == "equal" {
                    assert_eq!(*output_arity, 0);
                    found_filter = true;
                }
            }
            match op.input() {
                Some(i) => op = i,
                None => break,
            }
        }
        assert!(found_filter, "no equal filter in {plan}");
    }

    #[test]
    fn unknown_owf_is_error() {
        let owfs = OwfCatalog::new(); // empty: GetAllStates not registered
        let mut sqlcat = MapCatalog::with_helping_functions();
        sqlcat.add(ViewDef {
            name: "GetAllStates".into(),
            kind: ViewKind::Owf,
            inputs: vec![],
            outputs: vec![("State".into(), SqlType::Charstring)],
        });
        let stmt = parse_select("select gs.State from GetAllStates gs").unwrap();
        let calc = generate_calculus(&stmt, &sqlcat).unwrap();
        let err =
            create_central_plan(&calc, &owfs, &FunctionRegistry::with_builtins()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownOwf(_)));
    }

    #[test]
    fn reordering_preserves_head_and_rejects_bad_permutations() {
        let owfs = owf_catalog();
        let stmt = parse_select(
            "select gi.GetInfoByStateResult from GetAllStates gs, GetInfoByState gi \
             where gs.State=gi.USState",
        )
        .unwrap();
        let calc = generate_calculus(&stmt, &sql_catalog(&owfs)).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        // The identity ordering reproduces the original plan exactly.
        let base = create_central_plan(&calc, &owfs, &funcs).unwrap();
        let same = create_central_plan_for_order(&calc, &[0, 1], &owfs, &funcs).unwrap();
        assert_eq!(base, same);
        // Swapping the atoms makes GetInfoByState consume an unbound
        // variable — the binding check rejects it.
        let err = create_central_plan_for_order(&calc, &[1, 0], &owfs, &funcs).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPlan(_)));
        // Non-permutations are rejected outright.
        for bad in [vec![0], vec![0, 0], vec![0, 2]] {
            let err = create_central_plan_for_order(&calc, &bad, &owfs, &funcs).unwrap_err();
            assert!(matches!(err, CoreError::InvalidPlan(_)));
        }
    }

    #[test]
    fn plan_arity_is_consistent() {
        let (plan, _) = compile(
            "select gi.GetInfoByStateResult from GetAllStates gs, GetInfoByState gi \
             where gs.State=gi.USState",
        );
        assert_eq!(plan.root.output_arity(), 1);
    }
}
