//! The `FF_APPLYP` and `AFF_APPLYP` operators (paper §III.A and §V.A).
//!
//! Both share one dispatch engine: ship the plan function to a pool of
//! child query processes, then stream parameter tuples to whichever child
//! is idle — *first finished, first served*. Results are merged as they
//! arrive. The adaptive variant additionally monitors the average time per
//! incoming result tuple over *monitoring cycles* and grows (add stage) or
//! shrinks (drop stage) its pool of children, each of which adapts its own
//! subtree the same way — purely local, greedy decisions.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use wsmed_store::Tuple;

use crate::cache::{self, CacheKey, CallCache};
use crate::exec::process::{ChildProc, FromChild};
use crate::exec::{ExecContext, ProcEnv};
use crate::plan::{AdaptDecision, AdaptiveConfig, PlanFunction};
use crate::transport::DispatchPolicy;
use crate::wire;
use crate::{CoreError, CoreResult};

/// How long the dispatch loop waits for any child message before declaring
/// the subtree wedged. Generously above any modeled latency at the time
/// scales used in tests and benches.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    /// Spawned; plan function not yet confirmed installed.
    Installing,
    /// Ready for a parameter tuple.
    Idle,
    /// Processing a call.
    Busy,
    /// Processing a call, marked for removal once it finishes.
    Draining,
    /// Shut down (dropped by adaptation or failed to install).
    Dead,
}

struct Slot {
    proc: Option<ChildProc>,
    status: SlotStatus,
    /// The call id this slot is currently processing, for protocol checks.
    current_call: Option<u64>,
}

struct AdaptState {
    config: AdaptiveConfig,
    /// End-of-call messages seen in the current monitoring cycle.
    eoc_in_cycle: usize,
    /// Result tuples received in the current monitoring cycle.
    tuples_in_cycle: u64,
    /// Active (in-dispatch-loop) time accumulated in the current cycle.
    cycle_active: Duration,
    /// Average per-tuple time of the previous cycle.
    prev_t: Option<f64>,
    /// Adaptation has converged; no more add/drop stages.
    stopped: bool,
    /// The previous stage was a drop (a second worsening stops adaptation).
    last_was_drop: bool,
}

/// A pool of child query processes executing one plan function.
pub(crate) struct ParallelApply {
    pf_name: String,
    pf_bytes: Bytes,
    /// Content address of `pf_bytes` — the memo namespace for this plan
    /// function's per-parameter result rows (see [`crate::cache`]).
    pf_digest: String,
    env: ProcEnv,
    slots: Vec<Slot>,
    idle: VecDeque<usize>,
    results_tx: Sender<FromChild>,
    results_rx: Receiver<FromChild>,
    next_call_id: u64,
    adapt: Option<AdaptState>,
}

impl ParallelApply {
    /// `FF_APPLYP`: a fixed fanout, set manually in the plan.
    pub fn fixed(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        fanout: usize,
    ) -> CoreResult<Self> {
        Self::new(ctx, env, pf, fanout, None)
    }

    /// `AFF_APPLYP`: starts from a binary tree and adapts.
    pub fn adaptive(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        config: AdaptiveConfig,
    ) -> CoreResult<Self> {
        let init = config.init_fanout.max(1);
        let adapt = AdaptState {
            config,
            eoc_in_cycle: 0,
            tuples_in_cycle: 0,
            cycle_active: Duration::ZERO,
            prev_t: None,
            stopped: false,
            last_was_drop: false,
        };
        Self::new(ctx, env, pf, init, Some(adapt))
    }

    fn new(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        fanout: usize,
        adapt: Option<AdaptState>,
    ) -> CoreResult<Self> {
        let (results_tx, results_rx) = unbounded();
        // Encoded once from a reference; children get refcounted
        // clones of these bytes, never a deep copy of the plan.
        let pf_bytes = wire::encode_plan_function(pf);
        let pf_digest = cache::pf_digest(&pf.name, &pf_bytes);
        let mut this = ParallelApply {
            pf_name: pf.name.clone(),
            pf_bytes,
            pf_digest,
            env: *env,
            slots: Vec::new(),
            idle: VecDeque::new(),
            results_tx,
            results_rx,
            next_call_id: 0,
            adapt,
        };
        for _ in 0..fanout {
            this.spawn_child(ctx);
        }
        Ok(this)
    }

    /// Children currently alive.
    pub fn alive_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.status != SlotStatus::Dead)
            .count()
    }

    fn spawn_child(&mut self, ctx: &Arc<ExecContext>) {
        let slot_index = self.slots.len();
        let proc = ChildProc::spawn(
            ctx,
            &self.env,
            slot_index,
            &self.pf_name,
            self.pf_bytes.clone(),
            self.results_tx.clone(),
        );
        self.slots.push(Slot {
            proc: Some(proc),
            status: SlotStatus::Installing,
            current_call: None,
        });
    }

    fn busy_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.status, SlotStatus::Busy | SlotStatus::Draining))
            .count()
    }

    /// Streams `params` through the pool and returns the merged results.
    pub fn run(&mut self, ctx: &Arc<ExecContext>, params: Vec<Tuple>) -> CoreResult<Vec<Tuple>> {
        // Adaptive pools always use the paper's first-finished dispatch;
        // the round-robin ablation only applies to fixed fanouts.
        let policy = if self.adapt.is_some() {
            DispatchPolicy::FirstFinished
        } else {
            ctx.dispatch_policy()
        };
        let cache = ctx.call_cache();
        let mut out: Vec<Tuple> = Vec::new();
        // Dedup-aware dispatch: answer parameters whose plan-function rows
        // are already memoized parent-side, without shipping them to a
        // child — no frame, no child round-trip, no repeated OWF call.
        let mut to_ship: Vec<Bytes> = Vec::with_capacity(params.len());
        for param in &params {
            let encoded = wire::encode_tuple(param);
            if !self.screen_param(ctx, &cache, &encoded, &mut out) {
                to_ship.push(encoded);
            }
        }
        let mut pending = PendingParams::new(policy, self.slots.len(), to_ship);
        let mut first_error: Option<CoreError> = None;
        let mut segment_start = Instant::now();

        self.dispatch_pending(ctx, &cache, &mut pending, &mut out);

        while self.busy_count() > 0 || !pending.is_empty() {
            if !pending.is_empty() && self.alive_count() == 0 {
                return Err(CoreError::ProcessFailure(format!(
                    "all children of {} are dead with {} parameters pending",
                    self.pf_name,
                    pending.len()
                )));
            }
            let msg = match self.results_rx.recv_timeout(RECV_TIMEOUT) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::ProcessFailure(format!(
                        "no message from children of {} within {RECV_TIMEOUT:?}",
                        self.pf_name
                    )))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::ProcessFailure(format!(
                        "result channel of {} disconnected",
                        self.pf_name
                    )))
                }
            };
            // Receiving a message costs the parent dispatch time, which is
            // what makes an over-wide tree hurt on a single-core client.
            ctx.sim().sleep_model(ctx.sim().client.message_dispatch);

            match msg {
                FromChild::Installed { slot, error: None } => {
                    if self.slots[slot].status == SlotStatus::Installing {
                        self.slots[slot].status = SlotStatus::Idle;
                        self.idle.push_back(slot);
                    }
                }
                FromChild::Installed {
                    slot,
                    error: Some(e),
                } => {
                    self.kill_slot(slot, false);
                    if first_error.is_none() {
                        first_error = Some(CoreError::ProcessFailure(format!(
                            "child of {} failed to install: {e}",
                            self.pf_name
                        )));
                        pending.clear();
                    }
                }
                FromChild::ResultBatch {
                    slot,
                    call_id,
                    tuples,
                } => {
                    if self.slots[slot].current_call != Some(call_id) {
                        return Err(CoreError::ProcessFailure(format!(
                            "{}: result batch for call {call_id} from slot {slot} which is \
                             processing {:?}",
                            self.pf_name, self.slots[slot].current_call
                        )));
                    }
                    let batch = wire::decode_tuple_batch(tuples)?;
                    // The marginal per-tuple cost of unpacking the frame
                    // (the per-frame share was paid above on receipt).
                    ctx.sim()
                        .sleep_model(ctx.sim().client.tuple_dispatch * batch.len() as f64);
                    if !batch.is_empty() && self.env.level == 0 {
                        ctx.record_first_result();
                    }
                    if let Some(adapt) = &mut self.adapt {
                        adapt.tuples_in_cycle += batch.len() as u64;
                    }
                    out.extend(batch);
                }
                FromChild::EndOfCall {
                    slot,
                    call_id,
                    error,
                } => {
                    if self.slots[slot].current_call != Some(call_id) {
                        return Err(CoreError::ProcessFailure(format!(
                            "{}: end-of-call {call_id} from slot {slot} which is \
                             processing {:?}",
                            self.pf_name, self.slots[slot].current_call
                        )));
                    }
                    self.slots[slot].current_call = None;
                    if let Some(e) = error {
                        if first_error.is_none() {
                            first_error = Some(CoreError::ProcessFailure(format!(
                                "{} call failed: {e}",
                                self.pf_name
                            )));
                            pending.clear();
                        }
                    }
                    match self.slots[slot].status {
                        SlotStatus::Draining => self.kill_slot(slot, true),
                        SlotStatus::Busy => {
                            self.slots[slot].status = SlotStatus::Idle;
                            self.idle.push_back(slot);
                        }
                        _ => {}
                    }
                    self.monitoring_step(ctx, &mut segment_start);
                }
            }
            self.dispatch_pending(ctx, &cache, &mut pending, &mut out);
        }

        // Account trailing active time to the current monitoring cycle.
        if let Some(adapt) = &mut self.adapt {
            adapt.cycle_active += segment_start.elapsed();
        }

        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Answers `encoded` from the plan-function row memo if possible,
    /// appending its memoized result rows to `out`. Returns `true` when the
    /// parameter was short-circuited and must not be shipped.
    fn screen_param(
        &self,
        ctx: &Arc<ExecContext>,
        cache: &Option<Arc<CallCache>>,
        encoded: &Bytes,
        out: &mut Vec<Tuple>,
    ) -> bool {
        let Some(cache) = cache else {
            return false;
        };
        let key = CacheKey::for_rows(&self.pf_digest, encoded);
        let Some(rows) = cache.peek_rows(&key) else {
            return false;
        };
        if !rows.is_empty() && self.env.level == 0 {
            ctx.record_first_result();
        }
        out.extend(rows.iter().cloned());
        cache.note_short_circuits(1);
        ctx.tree().note_short_circuits(self.env.id, 1);
        true
    }

    fn dispatch_pending(
        &mut self,
        ctx: &Arc<ExecContext>,
        cache: &Option<Arc<CallCache>>,
        pending: &mut PendingParams,
        out: &mut Vec<Tuple>,
    ) {
        let max_params = ctx.batch_policy().max_params.max(1);
        while !pending.is_empty() {
            let Some(slot) = self.idle.pop_front() else {
                break;
            };
            if self.slots[slot].status != SlotStatus::Idle {
                continue; // stale queue entry (slot was drained/killed)
            }
            // Guided self-scheduling: cap each batch at the slot's fair
            // share of the remaining queue so one child cannot swallow the
            // whole parameter stream and serialize the pool — handing out
            // equal upfront partitions would disable the first-finished
            // rebalancing the paper's dispatch exists for. The chunk floor
            // trims the geometric tail (…, 2, 1, 1, 1) that would otherwise
            // spend a frame per tuple at the end of every queue drain.
            let share = pending.len().div_ceil(self.alive_count().max(1));
            let floor = max_params.div_ceil(16);
            let mut batch = pending.take_batch_for(slot, max_params.min(share.max(floor)));
            let had_work = !batch.is_empty();
            // Second screening pass: a duplicate of this parameter may have
            // completed (and been memoized) since the run started.
            batch.retain(|encoded| !self.screen_param(ctx, cache, encoded, out));
            if batch.is_empty() {
                if had_work {
                    // Everything taken was answered from the memo; the slot
                    // is still idle and the queue may hold more work.
                    self.idle.push_back(slot);
                    continue;
                }
                // Round-robin: this slot's static share is exhausted; it
                // stays idle even though other slots still have work — the
                // straggler cost FF dispatch avoids.
                self.idle.push_back(slot);
                // Avoid spinning when every idle slot is drained.
                if self.idle.iter().all(|&s| pending.take_peek(s).is_none()) {
                    break;
                }
                continue;
            }
            let call_id = self.next_call_id;
            self.next_call_id += 1;
            let proc = self.slots[slot]
                .proc
                .as_ref()
                .expect("idle slot has a process");
            ctx.tree().note_calls(proc.id, batch.len() as u64);
            let frame = wire::frame_encoded_batch(&batch);
            proc.send_call(ctx, call_id, frame, batch.len());
            self.slots[slot].status = SlotStatus::Busy;
            self.slots[slot].current_call = Some(call_id);
        }
    }

    fn kill_slot(&mut self, slot: usize, dropped_by_adaptation: bool) {
        if let Some(proc) = self.slots[slot].proc.take() {
            proc.shutdown(dropped_by_adaptation);
        }
        self.slots[slot].status = SlotStatus::Dead;
    }

    /// The heart of `AFF_APPLYP` (§V.A): a monitoring cycle completes when
    /// as many end-of-call messages arrived as there are children; the
    /// operator then compares the average time per incoming tuple with the
    /// previous cycle and adds or drops children.
    fn monitoring_step(&mut self, ctx: &Arc<ExecContext>, segment_start: &mut Instant) {
        let alive = self.alive_count();
        let action = {
            let Some(adapt) = &mut self.adapt else { return };
            adapt.eoc_in_cycle += 1;
            if alive == 0 || adapt.eoc_in_cycle < alive {
                return;
            }

            // ---- cycle boundary ---------------------------------------------
            adapt.cycle_active += segment_start.elapsed();
            *segment_start = Instant::now();
            let t = adapt.cycle_active.as_secs_f64() / adapt.tuples_in_cycle.max(1) as f64;
            let decision = if adapt.stopped {
                None
            } else {
                Some(
                    adapt
                        .config
                        .decide(adapt.prev_t, t, alive, adapt.last_was_drop),
                )
            };
            adapt.prev_t = Some(t);
            adapt.eoc_in_cycle = 0;
            adapt.tuples_in_cycle = 0;
            adapt.cycle_active = Duration::ZERO;
            let described = match &decision {
                Some(AdaptDecision::Add(n)) => format!("add:{n}"),
                Some(AdaptDecision::DropOne) => "drop".to_owned(),
                Some(AdaptDecision::Stop) => "stop".to_owned(),
                None => "converged".to_owned(),
            };
            ctx.tree().record_adapt_event(crate::stats::AdaptEvent {
                process: self.env.id,
                level: self.env.level,
                per_tuple_secs: t,
                alive,
                decision: described,
            });
            match decision {
                Some(AdaptDecision::Add(n)) => {
                    adapt.last_was_drop = false;
                    Some(AdaptDecision::Add(n))
                }
                Some(AdaptDecision::DropOne) => {
                    adapt.last_was_drop = true;
                    Some(AdaptDecision::DropOne)
                }
                Some(AdaptDecision::Stop) => {
                    adapt.stopped = true;
                    None
                }
                None => None,
            }
        };
        match action {
            Some(AdaptDecision::Add(n)) => {
                for _ in 0..n {
                    self.spawn_child(ctx);
                }
            }
            Some(AdaptDecision::DropOne) => self.drop_one_child(),
            _ => {}
        }
    }

    /// Drops one child and its subtree (paper Fig. 20). Prefers an idle
    /// child (killed immediately); otherwise marks the newest busy child to
    /// drain away after its current call.
    fn drop_one_child(&mut self) {
        if let Some(slot) = self
            .slots
            .iter()
            .rposition(|s| s.status == SlotStatus::Idle)
        {
            self.kill_slot(slot, true);
            return;
        }
        if let Some(slot) = self
            .slots
            .iter()
            .rposition(|s| s.status == SlotStatus::Busy)
        {
            self.slots[slot].status = SlotStatus::Draining;
        }
    }
}

/// The undispatched parameter tuples of one `run`, organized per the
/// dispatch policy.
enum PendingParams {
    /// One shared queue: next parameter to the first finished child.
    Shared(VecDeque<Bytes>),
    /// One queue per slot: parameter i pre-assigned to slot i mod fanout.
    PerSlot(Vec<VecDeque<Bytes>>),
}

impl PendingParams {
    fn new(policy: DispatchPolicy, slot_count: usize, params: Vec<Bytes>) -> Self {
        match policy {
            DispatchPolicy::FirstFinished => PendingParams::Shared(params.into()),
            DispatchPolicy::RoundRobin => {
                let n = slot_count.max(1);
                let mut queues = vec![VecDeque::new(); n];
                for (i, param) in params.into_iter().enumerate() {
                    queues[i % n].push_back(param);
                }
                PendingParams::PerSlot(queues)
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn len(&self) -> usize {
        match self {
            PendingParams::Shared(q) => q.len(),
            PendingParams::PerSlot(queues) => queues.iter().map(VecDeque::len).sum(),
        }
    }

    /// Takes up to `max` next parameters for `slot`, honoring the policy.
    /// An empty result means the slot has no work available.
    fn take_batch_for(&mut self, slot: usize, max: usize) -> Vec<Bytes> {
        let queue = match self {
            PendingParams::Shared(q) => q,
            PendingParams::PerSlot(queues) => match queues.get_mut(slot) {
                Some(q) => q,
                None => return Vec::new(),
            },
        };
        let n = queue.len().min(max);
        queue.drain(..n).collect()
    }

    /// Whether `slot` has any parameter available, without taking it.
    fn take_peek(&self, slot: usize) -> Option<&Bytes> {
        match self {
            PendingParams::Shared(q) => q.front(),
            PendingParams::PerSlot(queues) => queues.get(slot)?.front(),
        }
    }

    fn clear(&mut self) {
        match self {
            PendingParams::Shared(q) => q.clear(),
            PendingParams::PerSlot(queues) => queues.iter_mut().for_each(VecDeque::clear),
        }
    }
}

impl Drop for ParallelApply {
    fn drop(&mut self) {
        // Tear the subtree down; ChildProc::drop joins each thread.
        for slot in &mut self.slots {
            slot.proc.take();
        }
    }
}
