//! The `FF_APPLYP` and `AFF_APPLYP` operators (paper §III.A and §V.A).
//!
//! Both share one dispatch engine: ship the plan function to a pool of
//! child query processes, then stream parameter tuples to whichever child
//! is idle — *first finished, first served*. Results are merged as they
//! arrive. The adaptive variant additionally monitors the average time per
//! incoming result tuple over *monitoring cycles* and grows (add stage) or
//! shrinks (drop stage) its pool of children, each of which adapts its own
//! subtree the same way — purely local, greedy decisions.
//!
//! When a warm process pool ([`crate::exec::pool`]) is installed, child
//! processes are acquired warm when a parked process with the same plan
//! function and tree level exists, and idle children are parked back at
//! end of run (or at an adaptive drop stage) instead of being joined.
//!
//! Results of an in-flight call are buffered per slot and committed only
//! at a successful `EndOfCall`, so a child that dies mid-call can have its
//! undelivered parameters requeued to surviving siblings without
//! duplicating the partial results it already shipped.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use wsmed_store::Tuple;

use crate::cache::{self, CacheKey, CallCache};
use crate::exec::process::{ChildProc, FromChild};
use crate::exec::{ExecContext, ProcEnv};
use crate::obs::TraceEventKind;
use crate::plan::{AdaptDecision, AdaptiveConfig, PlanFunction};
use crate::transport::DispatchPolicy;
use crate::wire;
use crate::{CoreError, CoreResult};

/// How long the dispatch loop waits for any child message before declaring
/// the subtree wedged. Generously above any modeled latency at the time
/// scales used in tests and benches.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    /// Spawned; plan function not yet confirmed installed.
    Installing,
    /// Ready for a parameter tuple.
    Idle,
    /// Processing a call.
    Busy,
    /// Processing a call, marked for removal once it finishes.
    Draining,
    /// Shut down (dropped by adaptation, parked, or failed).
    Dead,
}

/// One parameter tuple staged for shipping: the row itself (source of
/// columnar Call frames — whole-column encode without re-decoding) and
/// its row encoding (memo screening key, and the row-format frame body).
#[derive(Debug, Clone)]
struct ShipParam {
    encoded: Bytes,
    row: Tuple,
}

struct Slot {
    proc: Option<ChildProc>,
    status: SlotStatus,
    /// The call id this slot is currently processing, for protocol checks.
    current_call: Option<u64>,
    /// Parameters of the in-flight call — requeued to surviving
    /// siblings if this child dies before its `EndOfCall`.
    in_flight: Vec<ShipParam>,
    /// Result tuples of the in-flight call, committed at `EndOfCall`.
    call_buf: Vec<Tuple>,
}

impl Slot {
    fn new(proc: ChildProc, status: SlotStatus) -> Self {
        Slot {
            proc: Some(proc),
            status,
            current_call: None,
            in_flight: Vec::new(),
            call_buf: Vec::new(),
        }
    }
}

struct AdaptState {
    config: AdaptiveConfig,
    /// End-of-call messages seen in the current monitoring cycle.
    eoc_in_cycle: usize,
    /// Result tuples received in the current monitoring cycle.
    tuples_in_cycle: u64,
    /// Active (in-dispatch-loop) time accumulated in the current cycle.
    cycle_active: Duration,
    /// Average per-tuple time of the previous cycle.
    prev_t: Option<f64>,
    /// Adaptation has converged; no more add/drop stages.
    stopped: bool,
    /// The previous stage was a drop (a second worsening stops adaptation).
    last_was_drop: bool,
    /// Per-tuple time at the convergence cycle — the baseline the re-arm
    /// check ([`AdaptiveConfig::rearm_factor`]) measures deviation against.
    converged_t: Option<f64>,
    /// Completed monitoring cycles this run (trace record numbering).
    cycles: u64,
}

impl AdaptState {
    /// Clears the per-run monitoring state (park-time `Reset`), so a warm
    /// subtree re-adapts from scratch in its next run.
    fn reset(&mut self) {
        self.eoc_in_cycle = 0;
        self.tuples_in_cycle = 0;
        self.cycle_active = Duration::ZERO;
        self.prev_t = None;
        self.stopped = false;
        self.last_was_drop = false;
        self.converged_t = None;
        self.cycles = 0;
    }
}

/// A pool of child query processes executing one plan function.
pub(crate) struct ParallelApply {
    pf_name: String,
    pf_bytes: Bytes,
    /// Content address of `pf_bytes` — the memo namespace for this plan
    /// function's per-parameter result rows (see [`crate::cache`]), the
    /// warm-pool key for its processes, and the `pf` identity stamped on
    /// this operator's child-side trace events.
    pf_digest: Arc<str>,
    env: ProcEnv,
    /// Semi-join prune set: wire-encoded parameter tuples learned to
    /// evaluate empty, dropped before shipping ([`PlanFunction::prune`]).
    /// `None` when the plan carries no drop list — the common case, and
    /// zero overhead per parameter.
    prune: Option<std::collections::HashSet<Bytes>>,
    slots: Vec<Slot>,
    idle: VecDeque<usize>,
    results_tx: Sender<FromChild>,
    results_rx: Receiver<FromChild>,
    next_call_id: u64,
    adapt: Option<AdaptState>,
    /// Children shut down without joining (they may be blocked sending
    /// into `results_rx`); joined at drop, after the receiver is gone.
    reaping: Vec<ChildProc>,
}

impl ParallelApply {
    /// `FF_APPLYP`: a fixed fanout, set manually in the plan.
    pub fn fixed(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        fanout: usize,
    ) -> CoreResult<Self> {
        Self::new(ctx, env, pf, fanout, None)
    }

    /// `AFF_APPLYP`: starts from a binary tree and adapts.
    pub fn adaptive(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        config: AdaptiveConfig,
    ) -> CoreResult<Self> {
        let init = config.init_fanout.max(1);
        let adapt = AdaptState {
            config,
            eoc_in_cycle: 0,
            tuples_in_cycle: 0,
            cycle_active: Duration::ZERO,
            prev_t: None,
            stopped: false,
            last_was_drop: false,
            converged_t: None,
            cycles: 0,
        };
        Self::new(ctx, env, pf, init, Some(adapt))
    }

    fn new(
        ctx: &Arc<ExecContext>,
        env: &ProcEnv,
        pf: &PlanFunction,
        fanout: usize,
        adapt: Option<AdaptState>,
    ) -> CoreResult<Self> {
        // Bounded results channel: capacity scales with the initial fanout
        // so each child gets a mailbox's worth of frames in flight. An
        // adaptive add stage does not grow the channel — extra children
        // just see backpressure sooner (counted in `blocked_send`).
        let cap = ctx.batch_policy().mailbox_capacity() * fanout.max(1);
        let (results_tx, results_rx) = bounded(cap);
        // Encoded once from a reference; children get refcounted
        // clones of these bytes, never a deep copy of the plan.
        let pf_bytes = wire::encode_plan_function(pf);
        let pf_digest: Arc<str> = Arc::from(cache::pf_digest(&pf.name, &pf_bytes));
        let prune = pf
            .prune
            .as_ref()
            .filter(|spec| !spec.drop_params.is_empty())
            .map(|spec| spec.drop_params.iter().cloned().collect());
        let mut this = ParallelApply {
            pf_name: pf.name.clone(),
            pf_bytes,
            pf_digest,
            env: *env,
            prune,
            slots: Vec::new(),
            idle: VecDeque::new(),
            results_tx,
            results_rx,
            next_call_id: 0,
            adapt,
            reaping: Vec::new(),
        };
        for _ in 0..fanout {
            this.spawn_child(ctx)?;
        }
        Ok(this)
    }

    /// Children currently alive.
    pub fn alive_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.status != SlotStatus::Dead)
            .count()
    }

    /// Adds one child: warm from the process pool when a parked process
    /// with this plan function and level exists, else a cold spawn.
    fn spawn_child(&mut self, ctx: &Arc<ExecContext>) -> CoreResult<()> {
        let slot_index = self.slots.len();
        if let Some(pool) = ctx.process_pool() {
            let scope = Some(ctx.pool_scope());
            while let Some(warm) = pool.acquire(&self.pf_digest, self.env.level + 1, scope) {
                let mut proc = warm.proc;
                if proc.attach(
                    ctx,
                    &self.env,
                    slot_index,
                    &self.pf_name,
                    self.results_tx.clone(),
                ) {
                    pool.note_warm_acquire(warm.saved_model_secs, scope);
                    // A warm process is installed and idle immediately —
                    // Attach is processed before any later Call (FIFO), so
                    // no installation round-trip is needed.
                    self.slots.push(Slot::new(proc, SlotStatus::Idle));
                    self.idle.push_back(slot_index);
                    return Ok(());
                }
                // The parked thread died while idle; reap it and retry.
                pool.note_dead_on_acquire(scope);
            }
        }
        let proc = ChildProc::spawn(
            ctx,
            &self.env,
            slot_index,
            &self.pf_name,
            &self.pf_digest,
            self.pf_bytes.clone(),
            self.results_tx.clone(),
        )?;
        self.slots.push(Slot::new(proc, SlotStatus::Installing));
        Ok(())
    }

    fn busy_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.status, SlotStatus::Busy | SlotStatus::Draining))
            .count()
    }

    /// The modeled cost a warm acquire of one of this operator's children
    /// skips: process startup plus shipping this plan function.
    fn saved_model_secs(&self, ctx: &ExecContext) -> f64 {
        let client = &ctx.sim().client;
        client.process_startup + client.plan_ship_per_kib * self.pf_bytes.len() as f64 / 1024.0
    }

    /// Streams `params` through the pool and returns the merged results,
    /// recording an operator span around the dispatch loop.
    pub fn run(&mut self, ctx: &Arc<ExecContext>, params: Vec<Tuple>) -> CoreResult<Vec<Tuple>> {
        ctx.trace_here(TraceEventKind::OpRunStart {
            params: params.len() as u64,
        });
        let result = self.run_inner(ctx, params);
        ctx.trace_here(TraceEventKind::OpRunEnd {
            ok: result.is_ok(),
            results: result.as_ref().map_or(0, |r| r.len() as u64),
        });
        result
    }

    fn run_inner(&mut self, ctx: &Arc<ExecContext>, params: Vec<Tuple>) -> CoreResult<Vec<Tuple>> {
        // Adaptive pools always use the paper's first-finished dispatch;
        // the round-robin ablation only applies to fixed fanouts.
        let policy = if self.adapt.is_some() {
            DispatchPolicy::FirstFinished
        } else {
            ctx.dispatch_policy()
        };
        let cache = ctx.call_cache();
        let mut out: Vec<Tuple> = Vec::new();
        // Dedup-aware dispatch: answer parameters whose plan-function rows
        // are already memoized parent-side, without shipping them to a
        // child — no frame, no child round-trip, no repeated OWF call.
        let mut to_ship: Vec<ShipParam> = Vec::with_capacity(params.len());
        let mut pruned: u64 = 0;
        for row in params {
            let encoded = wire::encode_tuple(&row);
            // Semi-join pruning first: a parameter learned to evaluate
            // empty contributes nothing to the result stream, so it is
            // dropped before the memo screen and before any child sees it.
            if let Some(prune) = &self.prune {
                if prune.contains(&encoded) {
                    pruned += 1;
                    continue;
                }
            }
            if !self.screen_param(ctx, &cache, &encoded, &mut out) {
                to_ship.push(ShipParam { encoded, row });
            }
        }
        if pruned > 0 {
            ctx.note_pruned_params(pruned);
            if ctx.tracing() {
                ctx.trace_here(TraceEventKind::ParamsPruned {
                    pf: self.pf_name.clone(),
                    count: pruned,
                });
            }
        }
        let mut pending = PendingParams::new(policy, self.slots.len(), to_ship);
        let mut first_error: Option<CoreError> = None;
        let mut segment_start = Instant::now();

        self.dispatch_pending(ctx, &cache, &mut pending, &mut out);

        while self.busy_count() > 0 || !pending.is_empty() {
            if !pending.is_empty() && self.alive_count() == 0 {
                return Err(CoreError::ProcessFailure(format!(
                    "all children of {} are dead with {} parameters pending",
                    self.pf_name,
                    pending.len()
                )));
            }
            let msg = match self.results_rx.recv_timeout(RECV_TIMEOUT) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CoreError::ProcessFailure(format!(
                        "no message from children of {} within {RECV_TIMEOUT:?}",
                        self.pf_name
                    )))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::ProcessFailure(format!(
                        "result channel of {} disconnected",
                        self.pf_name
                    )))
                }
            };
            // Receiving a message costs the parent dispatch time, which is
            // what makes an over-wide tree hurt on a single-core client.
            ctx.sim().sleep_model(ctx.sim().client.message_dispatch);

            match msg {
                FromChild::Installed { slot, error: None } => {
                    if self.slots[slot].status == SlotStatus::Installing {
                        self.slots[slot].status = SlotStatus::Idle;
                        self.idle.push_back(slot);
                    }
                }
                FromChild::Installed {
                    slot,
                    error: Some(e),
                } => {
                    if self.slots[slot].status != SlotStatus::Dead {
                        self.kill_slot(slot, false);
                        if first_error.is_none() {
                            first_error = Some(CoreError::ProcessFailure(format!(
                                "child of {} failed to install: {e}",
                                self.pf_name
                            )));
                            pending.clear();
                        }
                    }
                }
                FromChild::ResultBatch {
                    slot,
                    call_id,
                    tuples,
                } => {
                    if self.slots[slot].status == SlotStatus::Dead {
                        // Stale frame from a killed child whose parameters
                        // were requeued; committing it would duplicate rows.
                        continue;
                    }
                    if self.slots[slot].current_call != Some(call_id) {
                        return Err(CoreError::ProcessFailure(format!(
                            "{}: result batch for call {call_id} from slot {slot} which is \
                             processing {:?}",
                            self.pf_name, self.slots[slot].current_call
                        )));
                    }
                    let batch = wire::decode_message(tuples)?.into_tuples()?;
                    // The marginal per-tuple cost of unpacking the frame
                    // (the per-frame share was paid above on receipt).
                    ctx.sim()
                        .sleep_model(ctx.sim().client.tuple_dispatch * batch.len() as f64);
                    if !batch.is_empty() && self.env.level == 0 {
                        ctx.record_first_result();
                    }
                    if let Some(adapt) = &mut self.adapt {
                        adapt.tuples_in_cycle += batch.len() as u64;
                    }
                    self.slots[slot].call_buf.extend(batch);
                }
                FromChild::EndOfCall {
                    slot,
                    call_id,
                    error,
                    skipped,
                } => {
                    if self.slots[slot].status == SlotStatus::Dead {
                        continue; // stale notice from a killed child
                    }
                    if self.slots[slot].current_call != Some(call_id) {
                        return Err(CoreError::ProcessFailure(format!(
                            "{}: end-of-call {call_id} from slot {slot} which is \
                             processing {:?}",
                            self.pf_name, self.slots[slot].current_call
                        )));
                    }
                    self.slots[slot].current_call = None;
                    self.slots[slot].in_flight.clear();
                    match error {
                        None => {
                            // Commit the call's buffered results, and the
                            // skips recorded alongside them. Skips of a
                            // dead or failed call are discarded with its
                            // rows: the requeued parameters are
                            // re-evaluated (and re-counted) elsewhere.
                            out.append(&mut self.slots[slot].call_buf);
                            ctx.commit_skips(&skipped);
                        }
                        Some(e) => {
                            // Deterministic evaluation failure: the query
                            // aborts; requeueing would fail the same way.
                            self.slots[slot].call_buf.clear();
                            if first_error.is_none() {
                                first_error = Some(CoreError::ProcessFailure(format!(
                                    "{} call failed: {e}",
                                    self.pf_name
                                )));
                                pending.clear();
                            }
                        }
                    }
                    match self.slots[slot].status {
                        SlotStatus::Draining => self.kill_slot(slot, true),
                        SlotStatus::Busy => {
                            self.slots[slot].status = SlotStatus::Idle;
                            self.idle.push_back(slot);
                        }
                        _ => {}
                    }
                    // Failure-injection knob (tests): abruptly kill one
                    // busy child to exercise the requeue path.
                    if self.env.level == 0 && ctx.take_child_failure_trigger() {
                        if let Some(victim) = self
                            .slots
                            .iter()
                            .position(|s| {
                                matches!(s.status, SlotStatus::Busy | SlotStatus::Draining)
                            })
                            .or_else(|| {
                                self.slots.iter().position(|s| s.status == SlotStatus::Idle)
                            })
                        {
                            self.fail_slot(ctx, victim, &mut pending);
                        }
                    }
                    self.monitoring_step(ctx, &mut segment_start);
                }
            }
            self.dispatch_pending(ctx, &cache, &mut pending, &mut out);
        }

        // Account trailing active time to the current monitoring cycle.
        if let Some(adapt) = &mut self.adapt {
            adapt.cycle_active += segment_start.elapsed();
        }

        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Answers `encoded` from the plan-function row memo if possible,
    /// appending its memoized result rows to `out`. Returns `true` when the
    /// parameter was short-circuited and must not be shipped.
    fn screen_param(
        &self,
        ctx: &Arc<ExecContext>,
        cache: &Option<Arc<CallCache>>,
        encoded: &Bytes,
        out: &mut Vec<Tuple>,
    ) -> bool {
        let Some(cache) = cache else {
            return false;
        };
        let key = CacheKey::for_rows(&self.pf_digest, encoded);
        let Some(rows) = cache.peek_rows(&key, Some(ctx.cache_scope())) else {
            return false;
        };
        if !rows.is_empty() && self.env.level == 0 {
            ctx.record_first_result();
        }
        out.extend(rows.iter().cloned());
        cache.note_short_circuits(1, Some(ctx.cache_scope()));
        ctx.tree().note_short_circuits(self.env.id, 1);
        ctx.trace_here(TraceEventKind::ShortCircuit { params: 1 });
        true
    }

    fn dispatch_pending(
        &mut self,
        ctx: &Arc<ExecContext>,
        cache: &Option<Arc<CallCache>>,
        pending: &mut PendingParams,
        out: &mut Vec<Tuple>,
    ) {
        let policy = ctx.batch_policy();
        let max_params = policy.max_params.max(1);
        while !pending.is_empty() {
            let Some(slot) = self.idle.pop_front() else {
                break;
            };
            if self.slots[slot].status != SlotStatus::Idle {
                continue; // stale queue entry (slot was drained/killed)
            }
            // Guided self-scheduling: cap each batch at the slot's fair
            // share of the remaining queue so one child cannot swallow the
            // whole parameter stream and serialize the pool — handing out
            // equal upfront partitions would disable the first-finished
            // rebalancing the paper's dispatch exists for. The chunk floor
            // trims the geometric tail (…, 2, 1, 1, 1) that would otherwise
            // spend a frame per tuple at the end of every queue drain.
            let share = pending.len().div_ceil(self.alive_count().max(1));
            let floor = max_params.div_ceil(16);
            let mut batch = pending.take_batch_for(slot, max_params.min(share.max(floor)));
            let had_work = !batch.is_empty();
            // Second screening pass: a duplicate of this parameter may have
            // completed (and been memoized) since the run started.
            batch.retain(|p| !self.screen_param(ctx, cache, &p.encoded, out));
            if batch.is_empty() {
                if had_work {
                    // Everything taken was answered from the memo; the slot
                    // is still idle and the queue may hold more work.
                    self.idle.push_back(slot);
                    continue;
                }
                // Round-robin: this slot's static share is exhausted; it
                // stays idle even though other slots still have work — the
                // straggler cost FF dispatch avoids.
                self.idle.push_back(slot);
                // Avoid spinning when every idle slot is drained.
                if self.idle.iter().all(|&s| pending.take_peek(s).is_none()) {
                    break;
                }
                continue;
            }
            let call_id = self.next_call_id;
            self.next_call_id += 1;
            let proc = self.slots[slot]
                .proc
                .as_ref()
                .expect("idle slot has a process");
            ctx.tree().note_calls(proc.id, batch.len() as u64);
            if let Some(tr) = ctx.tracer() {
                tr.emit(
                    proc.id,
                    self.env.level + 1,
                    &self.pf_digest,
                    TraceEventKind::CallDispatched {
                        params: batch.len() as u64,
                    },
                );
            }
            let frame = if policy.columnar {
                // Whole-column encode straight from the staged rows; falls
                // back to the row format on non-uniform arity.
                let rows: Vec<Tuple> = batch.iter().map(|p| p.row.clone()).collect();
                wire::encode_columnar_message(&rows)
            } else {
                wire::encode_rows_message(batch.iter().map(|p| &p.encoded))
            };
            let sent = proc.send_call(ctx, call_id, frame, batch.len());
            match sent {
                Ok(()) => {
                    self.slots[slot].status = SlotStatus::Busy;
                    self.slots[slot].current_call = Some(call_id);
                    self.slots[slot].in_flight = batch;
                }
                Err(_) => {
                    // The child died before taking the call: requeue its
                    // batch and fail the slot over to its siblings.
                    self.slots[slot].in_flight = batch;
                    self.fail_slot(ctx, slot, pending);
                }
            }
        }
    }

    /// Tears one slot down synchronously (join included). Only safe when
    /// the child cannot be blocked sending results — i.e. after its
    /// `EndOfCall` was processed, or before it ever got a call.
    fn kill_slot(&mut self, slot: usize, dropped_by_adaptation: bool) {
        let s = &mut self.slots[slot];
        s.in_flight.clear();
        s.call_buf.clear();
        s.current_call = None;
        if let Some(proc) = s.proc.take() {
            proc.shutdown(dropped_by_adaptation);
        }
        s.status = SlotStatus::Dead;
    }

    /// Handles an abrupt child death mid-stream: discards the call's
    /// partial results, requeues its undelivered parameters to surviving
    /// siblings (including any per-slot round-robin backlog), and defers
    /// the join to drop time (the child may be blocked sending into the
    /// results channel this loop is reading).
    fn fail_slot(&mut self, ctx: &Arc<ExecContext>, slot: usize, pending: &mut PendingParams) {
        let s = &mut self.slots[slot];
        let requeued = std::mem::take(&mut s.in_flight);
        s.call_buf.clear();
        s.current_call = None;
        s.status = SlotStatus::Dead;
        let mut dead_id = 0;
        if let Some(proc) = s.proc.take() {
            dead_id = proc.id;
            self.reaping.push(proc.begin_shutdown());
        }
        ctx.trace_here(TraceEventKind::Requeue {
            from_child: dead_id,
            params: requeued.len() as u64,
        });
        pending.requeue(requeued);
        let survivors: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status != SlotStatus::Dead)
            .map(|(i, _)| i)
            .collect();
        pending.migrate_slot(slot, &survivors);
    }

    /// The heart of `AFF_APPLYP` (§V.A): a monitoring cycle completes when
    /// as many end-of-call messages arrived as there are children; the
    /// operator then compares the average time per incoming tuple with the
    /// previous cycle and adds or drops children.
    fn monitoring_step(&mut self, ctx: &Arc<ExecContext>, segment_start: &mut Instant) {
        /// What the cycle boundary asks the pool to do structurally.
        enum Action {
            Add(usize),
            DropOne,
            /// Re-arm: reset the tree to this width and restart adaptation.
            Rearm(usize),
        }
        let alive = self.alive_count();
        let action = {
            let Some(adapt) = &mut self.adapt else { return };
            adapt.eoc_in_cycle += 1;
            if alive == 0 || adapt.eoc_in_cycle < alive {
                return;
            }

            // ---- cycle boundary ---------------------------------------------
            adapt.cycle_active += segment_start.elapsed();
            *segment_start = Instant::now();
            let t = adapt.cycle_active.as_secs_f64() / adapt.tuples_in_cycle.max(1) as f64;
            let prev = adapt.prev_t;
            let eocs = adapt.eoc_in_cycle as u64;
            let tuples = adapt.tuples_in_cycle;
            adapt.cycles += 1;
            // A converged operator under a re-arm policy keeps watching t:
            // drifting beyond the configured fraction of the converged
            // baseline — in either direction — restarts adaptation, so the
            // fanout tracks a moving optimum (topology churn, brownouts).
            let rearmed = adapt.stopped
                && match (adapt.config.rearm_factor, adapt.converged_t) {
                    (Some(factor), Some(base)) => (t - base).abs() > base * factor,
                    _ => false,
                };
            let decision = if adapt.stopped {
                None
            } else {
                Some(
                    adapt
                        .config
                        .decide(adapt.prev_t, t, alive, adapt.last_was_drop),
                )
            };
            adapt.prev_t = Some(t);
            adapt.eoc_in_cycle = 0;
            adapt.tuples_in_cycle = 0;
            adapt.cycle_active = Duration::ZERO;
            let described = match &decision {
                Some(AdaptDecision::Add(n)) => format!("add:{n}"),
                Some(AdaptDecision::DropOne) => "drop".to_owned(),
                Some(AdaptDecision::Stop) => "stop".to_owned(),
                None if rearmed => "rearm".to_owned(),
                None => "converged".to_owned(),
            };
            if ctx.tracing() {
                ctx.trace_here(TraceEventKind::Cycle {
                    cycle: adapt.cycles,
                    eocs,
                    tuples,
                    per_tuple_secs: t,
                    prev,
                    threshold: adapt.config.threshold,
                    alive,
                    verdict: described.clone(),
                });
            }
            ctx.tree().record_adapt_event(crate::stats::AdaptEvent {
                process: self.env.id,
                level: self.env.level,
                per_tuple_secs: t,
                alive,
                decision: described,
            });
            match decision {
                Some(AdaptDecision::Add(n)) => {
                    adapt.last_was_drop = false;
                    Some(Action::Add(n))
                }
                Some(AdaptDecision::DropOne) => {
                    adapt.last_was_drop = true;
                    Some(Action::DropOne)
                }
                Some(AdaptDecision::Stop) => {
                    adapt.stopped = true;
                    adapt.converged_t = Some(t);
                    None
                }
                None if rearmed => {
                    adapt.stopped = false;
                    adapt.prev_t = None;
                    adapt.last_was_drop = false;
                    adapt.converged_t = None;
                    Some(Action::Rearm(adapt.config.init_fanout.max(1)))
                }
                None => None,
            }
        };
        match action {
            Some(Action::Add(n)) => {
                for _ in 0..n {
                    // An add-stage spawn failure is not fatal: the pool
                    // keeps running at its current width.
                    if self.spawn_child(ctx).is_err() {
                        break;
                    }
                }
            }
            Some(Action::DropOne) => self.drop_one_child(ctx),
            Some(Action::Rearm(target)) => {
                // Reset the tree to the initial width; the next cycles'
                // add (or drop) stages walk toward the new optimum.
                let alive = self.alive_count();
                if alive > target {
                    for _ in 0..(alive - target) {
                        self.drop_one_child(ctx);
                    }
                } else {
                    for _ in 0..(target - alive) {
                        if self.spawn_child(ctx).is_err() {
                            break;
                        }
                    }
                }
            }
            None => {}
        }
    }

    /// Drops one child and its subtree (paper Fig. 20). Prefers an idle
    /// child (parked warm or killed immediately); otherwise marks the
    /// newest busy child to drain away after its current call.
    fn drop_one_child(&mut self, ctx: &Arc<ExecContext>) {
        if let Some(slot) = self
            .slots
            .iter()
            .rposition(|s| s.status == SlotStatus::Idle)
        {
            self.retire_slot(ctx, slot);
            return;
        }
        if let Some(slot) = self
            .slots
            .iter()
            .rposition(|s| s.status == SlotStatus::Busy)
        {
            self.slots[slot].status = SlotStatus::Draining;
        }
    }

    /// Removes one idle child: parked warm (with its whole subtree) when
    /// the process pool is on, joined cold otherwise.
    fn retire_slot(&mut self, ctx: &Arc<ExecContext>, slot: usize) {
        let pool = ctx.process_pool().filter(|p| p.policy().enabled);
        let Some(pool) = pool else {
            self.kill_slot(slot, true);
            return;
        };
        let saved = self.saved_model_secs(ctx);
        if let Some(proc) = self.slots[slot].proc.take() {
            if let Some(parked) = proc.park(true) {
                pool.release(
                    &self.pf_digest,
                    self.env.level + 1,
                    parked,
                    saved,
                    Some(ctx.pool_scope()),
                );
            }
        }
        self.slots[slot].status = SlotStatus::Dead;
    }

    /// Parks every idle child into the process pool at end of a successful
    /// run, keyed by plan-function digest and level. Called by the run
    /// driver after the final tree snapshot, before teardown.
    pub fn park_children(&mut self, ctx: &Arc<ExecContext>) {
        let pool = ctx.process_pool().filter(|p| p.policy().enabled);
        let Some(pool) = pool else { return };
        // Absorb late installation acks: a child that never got work may
        // still be `Installing` here even though it is warm and parkable.
        while let Ok(msg) = self.results_rx.try_recv() {
            if let FromChild::Installed { slot, error: None } = msg {
                if self.slots[slot].status == SlotStatus::Installing {
                    self.slots[slot].status = SlotStatus::Idle;
                }
            }
        }
        let saved = self.saved_model_secs(ctx);
        for slot in &mut self.slots {
            if slot.status != SlotStatus::Idle {
                continue;
            }
            if let Some(proc) = slot.proc.take() {
                if let Some(parked) = proc.park(false) {
                    pool.release(
                        &self.pf_digest,
                        self.env.level + 1,
                        parked,
                        saved,
                        Some(ctx.pool_scope()),
                    );
                }
            }
            slot.status = SlotStatus::Dead;
        }
    }

    /// Park-time `Reset`, applied recursively down a warm subtree: clears
    /// this operator's per-run adaptation state and forwards the reset to
    /// every live child so the whole tree parks clean.
    pub fn reset_children(&mut self) {
        if let Some(adapt) = &mut self.adapt {
            adapt.reset();
        }
        for slot in &mut self.slots {
            if slot.status == SlotStatus::Dead {
                continue;
            }
            if let Some(proc) = slot.proc.as_mut() {
                proc.forward_reset();
            }
        }
    }

    /// Attach-time re-registration, applied recursively when a warm
    /// subtree joins a new run: the run has a fresh tree registry (and,
    /// under a mediator-global pool, possibly a different execution
    /// context), so this operator re-homes to its hosting process's new
    /// identity and every child re-registers under a freshly allocated id,
    /// with the walk forwarded down the tree.
    pub fn reattach_children(&mut self, ctx: &Arc<ExecContext>, env: &ProcEnv) {
        // The hosting process got a new id in the acquiring run's tree;
        // children below must register against it, not the parked one.
        self.env = *env;
        let saved = self.saved_model_secs(ctx);
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.status == SlotStatus::Dead {
                continue;
            }
            let Some(proc) = slot.proc.as_mut() else {
                continue;
            };
            if proc.attach(
                ctx,
                &self.env,
                index,
                &self.pf_name,
                self.results_tx.clone(),
            ) {
                // This subtree process rode along with a warm acquire
                // above it — its skipped spawn cost counts as saved.
                if let Some(pool) = ctx.process_pool() {
                    pool.note_saved(saved, Some(ctx.pool_scope()));
                }
            } else {
                // Died while parked: the slot is gone for this run.
                slot.proc.take();
                slot.status = SlotStatus::Dead;
            }
        }
    }
}

/// The undispatched parameter tuples of one `run`, organized per the
/// dispatch policy.
enum PendingParams {
    /// One shared queue: next parameter to the first finished child.
    Shared(VecDeque<ShipParam>),
    /// One queue per slot: parameter i pre-assigned to slot i mod fanout.
    PerSlot(Vec<VecDeque<ShipParam>>),
}

impl PendingParams {
    fn new(policy: DispatchPolicy, slot_count: usize, params: Vec<ShipParam>) -> Self {
        match policy {
            DispatchPolicy::FirstFinished => PendingParams::Shared(params.into()),
            DispatchPolicy::RoundRobin => {
                let n = slot_count.max(1);
                let mut queues = vec![VecDeque::new(); n];
                for (i, param) in params.into_iter().enumerate() {
                    queues[i % n].push_back(param);
                }
                PendingParams::PerSlot(queues)
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn len(&self) -> usize {
        match self {
            PendingParams::Shared(q) => q.len(),
            PendingParams::PerSlot(queues) => queues.iter().map(VecDeque::len).sum(),
        }
    }

    /// Takes up to `max` next parameters for `slot`, honoring the policy.
    /// An empty result means the slot has no work available.
    fn take_batch_for(&mut self, slot: usize, max: usize) -> Vec<ShipParam> {
        let queue = match self {
            PendingParams::Shared(q) => q,
            PendingParams::PerSlot(queues) => match queues.get_mut(slot) {
                Some(q) => q,
                None => return Vec::new(),
            },
        };
        let n = queue.len().min(max);
        queue.drain(..n).collect()
    }

    /// Whether `slot` has any parameter available, without taking it.
    fn take_peek(&self, slot: usize) -> Option<&ShipParam> {
        match self {
            PendingParams::Shared(q) => q.front(),
            PendingParams::PerSlot(queues) => queues.get(slot)?.front(),
        }
    }

    /// Puts a dead child's undelivered in-flight parameters back at the
    /// head of the queue (shared policy) or lets `migrate_slot` place them
    /// (they re-enter via the dead slot's queue first).
    fn requeue(&mut self, params: Vec<ShipParam>) {
        match self {
            PendingParams::Shared(q) => {
                for param in params.into_iter().rev() {
                    q.push_front(param);
                }
            }
            PendingParams::PerSlot(queues) => {
                // Temporarily park them on queue 0; `migrate_slot` is not
                // guaranteed to run for queue 0, so distribute directly.
                if let Some(first) = queues.first_mut() {
                    for param in params.into_iter().rev() {
                        first.push_front(param);
                    }
                }
            }
        }
    }

    /// Migrates a dead slot's per-slot backlog to the surviving slots,
    /// round-robin, so round-robin dispatch cannot strand parameters on a
    /// killed child. A no-op under the shared queue.
    fn migrate_slot(&mut self, dead: usize, survivors: &[usize]) {
        let PendingParams::PerSlot(queues) = self else {
            return;
        };
        if survivors.is_empty() {
            return; // the all-dead error path reports the loss
        }
        let Some(queue) = queues.get_mut(dead) else {
            return;
        };
        let stranded: Vec<ShipParam> = queue.drain(..).collect();
        for (i, param) in stranded.into_iter().enumerate() {
            let target = survivors[i % survivors.len()];
            if let Some(q) = queues.get_mut(target) {
                q.push_back(param);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            PendingParams::Shared(q) => q.clear(),
            PendingParams::PerSlot(queues) => queues.iter_mut().for_each(VecDeque::clear),
        }
    }
}

impl Drop for ParallelApply {
    fn drop(&mut self) {
        // Drop the results receiver FIRST: with bounded channels a child
        // can be blocked mid-`send`, and joining it while the receiver is
        // alive but unread would deadlock. Disconnecting the channel makes
        // every blocked send fail fast, so the joins below terminate.
        let (_tx, dummy_rx) = unbounded();
        drop(std::mem::replace(&mut self.results_rx, dummy_rx));
        // Tear the subtree down; ChildProc::drop joins each thread.
        self.reaping.clear();
        for slot in &mut self.slots {
            slot.proc.take();
        }
    }
}
