//! Query processes: threads with message inboxes.
//!
//! A query process receives its plan function **once**, installed before
//! execution (paper §III), then a stream of `Call` messages carrying
//! batches of parameter tuples. For each call it evaluates the installed
//! body per parameter and ships `ResultBatch` frames back, terminated by
//! an `EndOfCall` — the message `FF_APPLYP` uses to know a child is idle
//! again. The configured [`crate::transport::BatchPolicy`] bounds how many
//! result tuples a child buffers before flushing a frame, and a model-time
//! threshold flushes a partially filled buffer so first-row latency stays
//! honest; the default policy is one tuple per frame, the paper's exact
//! semantics.
//!
//! Mailboxes are **bounded** ([`BatchPolicy::mailbox_capacity`]): a fast
//! producer blocks instead of buffering an entire parameter or result
//! stream in memory, and the time spent blocked is counted per node
//! ([`TreeRegistry::note_blocked_send`]) next to `msgs_down`/`msgs_up`.
//!
//! Plan functions and tuples cross the boundary as serialized bytes
//! ([`crate::wire`]); the parent pays the modeled client-side costs
//! (process startup, plan shipping, per-frame and per-tuple dispatch) so
//! the economics of the paper's single-core coordinator are preserved.
//! A warm process acquired from the [`crate::exec::pool`] skips the
//! startup and plan-ship charges entirely: it is re-wired to its new
//! parent with an `Attach` message instead of being spawned.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, SendError, Sender, TrySendError};

use wsmed_store::Tuple;

use crate::exec::{compile, eval, ExecContext, ProcEnv};
use crate::obs::{self, TraceEventKind, TraceLog};
use crate::stats::TreeRegistry;
use crate::transport::BatchPolicy;
use crate::wire;
use crate::{CoreError, CoreResult};

/// Messages a parent sends to a child query process.
#[derive(Debug)]
pub(crate) enum ToChild {
    /// Install the (serialized) plan function. Sent exactly once, first.
    Install(Bytes),
    /// Evaluate the installed plan function once per parameter tuple in
    /// the batch frame.
    Call {
        /// Correlation id, unique per parent.
        call_id: u64,
        /// Kind-prefixed message frame of parameter tuples — row or
        /// columnar format ([`wire::decode_message`]).
        params: Bytes,
    },
    /// Park-time: clear per-run state (adaptation cycle counters), and
    /// recursively reset the pooled subtree below so whole warm trees are
    /// reclaimed in one piece.
    Reset,
    /// Acquire-time: re-wire this warm process to a new parent run — new
    /// execution context (the pool is mediator-global, so the acquiring
    /// run may belong to a different query), new identity in that run's
    /// tree, new slot, new results channel, and a re-registration walk of
    /// the subtree into the run's fresh tree registry.
    Attach {
        /// The acquiring run's execution context.
        ctx: Arc<ExecContext>,
        /// This process's identity in the acquiring run's tree.
        env: ProcEnv,
        /// The process's slot at its new parent.
        slot: usize,
        /// The new parent's result channel.
        results: Sender<FromChild>,
    },
    /// Terminate: tear down the subtree and exit.
    Shutdown,
}

/// Messages a child sends back to its parent.
#[derive(Debug)]
pub(crate) enum FromChild {
    /// Plan function installed (or failed to).
    Installed {
        /// The child's slot at the parent.
        slot: usize,
        /// Install error, if any.
        error: Option<String>,
    },
    /// A batch of result tuples of the current call.
    ResultBatch {
        /// The child's slot at the parent.
        slot: usize,
        /// Correlation id of the call.
        call_id: u64,
        /// Kind-prefixed message frame of result tuples
        /// ([`wire::decode_message`]).
        tuples: Bytes,
    },
    /// The current call finished (successfully or not).
    EndOfCall {
        /// The child's slot at the parent.
        slot: usize,
        /// Correlation id of the call.
        call_id: u64,
        /// Evaluation error, if any.
        error: Option<String>,
        /// Parameter tuples dropped under partial failure mode while
        /// evaluating this call, as `(owf name, count)` entries. Shipped
        /// with the end-of-call so the parent commits skips exactly when
        /// it commits the call's rows — a dead child's skips are
        /// discarded with its rows and re-counted by whichever survivor
        /// re-evaluates the requeued parameters.
        skipped: Vec<(String, u64)>,
    },
}

/// Sends on a (possibly bounded) mailbox, charging time blocked on a full
/// channel to node `id`'s `blocked_send` counter (and recording a
/// `blocked_send` trace event when a log is live).
fn send_counted<T>(
    tx: &Sender<T>,
    msg: T,
    tree: &TreeRegistry,
    id: u64,
    trace: Option<&TraceLog>,
    level: usize,
    pf: &Arc<str>,
) -> Result<(), SendError<T>> {
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Disconnected(v)) => Err(SendError(v)),
        Err(TrySendError::Full(v)) => {
            let waited = Instant::now();
            let result = tx.send(v);
            let elapsed = waited.elapsed();
            tree.note_blocked_send(id, elapsed);
            if let Some(tr) = trace {
                tr.emit(
                    id,
                    level,
                    pf,
                    TraceEventKind::BlockedSend {
                        waited_secs: tr.model_secs(elapsed),
                    },
                );
            }
            result
        }
    }
}

/// A handle the parent keeps per child process.
#[derive(Debug)]
pub(crate) struct ChildProc {
    /// Process id in the tree registry.
    pub id: u64,
    tx: Sender<ToChild>,
    join: Option<JoinHandle<()>>,
    tree: Arc<TreeRegistry>,
    deregistered: bool,
    /// Tree level this process is attached at (refreshed on warm attach).
    level: usize,
    /// Content digest of the plan function this process runs.
    pf: Arc<str>,
    /// The run's trace log, when the run that spawned (or warm-attached)
    /// this process had tracing enabled. Cleared on park so pooled handles
    /// never keep a finished run's log alive.
    trace: Option<Arc<TraceLog>>,
    /// Whether this process's terminal lifecycle event (park/kill/join)
    /// was already recorded — each spawn gets exactly one terminal.
    terminal_emitted: bool,
}

impl ChildProc {
    /// Spawns a child query process and ships it the plan function.
    ///
    /// The calling (parent) thread pays the modeled process-startup and
    /// plan-shipping costs before this returns, serializing process
    /// management on the parent as on the paper's single-core client.
    /// This is the single site charging `process_startup`, so the pool's
    /// `cold_spawns` counter is exactly the number of startup charges.
    pub fn spawn(
        ctx: &Arc<ExecContext>,
        parent: &ProcEnv,
        slot: usize,
        pf_name: &str,
        pf_digest: &Arc<str>,
        pf_bytes: Bytes,
        results: Sender<FromChild>,
    ) -> CoreResult<ChildProc> {
        let id = ctx.next_process_id();
        let level = parent.level + 1;
        let tree = ctx.tree();
        tree.register(id, Some(parent.id), level, pf_name);
        if let Some(pool) = ctx.process_pool() {
            pool.note_cold_spawn(Some(ctx.pool_scope()));
        }

        // Client-side costs: starting the process and shipping the plan.
        let client = &ctx.sim().client;
        ctx.sim().sleep_model(client.process_startup);
        ctx.sim()
            .sleep_model(client.plan_ship_per_kib * pf_bytes.len() as f64 / 1024.0);
        ctx.record_shipped(pf_bytes.len());
        tree.note_msg_down(id);

        let (tx, rx) = bounded::<ToChild>(ctx.batch_policy().mailbox_capacity());
        let ctx_child = Arc::clone(ctx);
        let join = std::thread::Builder::new()
            .name(format!("wsmed-qp-{id}"))
            .spawn(move || child_main(ctx_child, ProcEnv { id, level }, slot, rx, results))
            .map_err(|e| {
                tree.deregister(id, false);
                CoreError::ProcessFailure(format!("failed to spawn query process q{id}: {e}"))
            })?;

        let mut proc = ChildProc {
            id,
            tx,
            join: Some(join),
            tree,
            deregistered: false,
            level,
            pf: Arc::clone(pf_digest),
            trace: ctx.tracer(),
            terminal_emitted: false,
        };
        if let Some(tr) = &proc.trace {
            tr.emit(
                id,
                level,
                &proc.pf,
                TraceEventKind::ChildSpawn { warm: false },
            );
        }
        if proc.tx.send(ToChild::Install(pf_bytes)).is_err() {
            // The thread died before reading its mailbox; reap it and
            // surface the failure instead of silently dropping the plan.
            drop(proc.join.take().map(JoinHandle::join));
            proc.tree.deregister(id, false);
            proc.deregistered = true;
            return Err(CoreError::ProcessFailure(format!(
                "query process q{id} died before plan installation"
            )));
        }
        Ok(proc)
    }

    /// Sends a batch of `n_params` parameter tuples as one frame; the
    /// parent pays the per-frame plus per-tuple dispatch cost. Fails when
    /// the child hung up (died), so the caller can requeue the work.
    pub fn send_call(
        &self,
        ctx: &ExecContext,
        call_id: u64,
        params: Bytes,
        n_params: usize,
    ) -> CoreResult<()> {
        let client = &ctx.sim().client;
        ctx.sim()
            .sleep_model(client.message_dispatch + client.tuple_dispatch * n_params as f64);
        ctx.record_shipped(params.len());
        self.tree.note_msg_down(self.id);
        send_counted(
            &self.tx,
            ToChild::Call { call_id, params },
            &self.tree,
            self.id,
            self.trace.as_deref(),
            self.level,
            &self.pf,
        )
        .map_err(|_| CoreError::ProcessFailure(format!("query process q{} hung up", self.id)))
    }

    /// Records this process's terminal lifecycle event (at most once per
    /// spawn/attach) and releases the log handle.
    fn emit_terminal(&mut self, kind: TraceEventKind) {
        if self.terminal_emitted {
            self.trace = None;
            return;
        }
        self.terminal_emitted = true;
        if let Some(tr) = self.trace.take() {
            tr.emit(self.id, self.level, &self.pf, kind);
        }
    }

    /// Prepares the process for parking: sends `Reset` (clearing per-run
    /// state down the subtree) and deregisters it from the current run's
    /// tree. Returns `None` when the process is already dead — the caller
    /// must drop it instead of pooling it.
    pub fn park(mut self, dropped_by_adaptation: bool) -> Option<ChildProc> {
        if self.tx.send(ToChild::Reset).is_err() {
            return None; // dropping `self` reaps the dead thread
        }
        self.tree.deregister(self.id, dropped_by_adaptation);
        self.deregistered = true;
        self.emit_terminal(TraceEventKind::ChildPark);
        Some(self)
    }

    /// Re-wires a warm (parked) process to a new parent: registers it in
    /// the current run's tree, charges one message-dispatch for the attach
    /// frame, and triggers the subtree's re-registration walk. Returns
    /// `false` when the parked thread turned out to be dead (the caller
    /// drops the handle and tries the next parked process).
    pub fn attach(
        &mut self,
        ctx: &Arc<ExecContext>,
        parent: &ProcEnv,
        slot: usize,
        pf_name: &str,
        results: Sender<FromChild>,
    ) -> bool {
        // A mediator-global pool can hand this process to a *different*
        // query's run; take a fresh id from the acquiring context so the
        // process can never collide with ids that context already issued.
        self.id = ctx.next_process_id();
        self.tree = ctx.tree();
        self.deregistered = false;
        self.tree
            .register(self.id, Some(parent.id), parent.level + 1, pf_name);
        ctx.sim().sleep_model(ctx.sim().client.message_dispatch);
        self.tree.note_msg_down(self.id);
        self.level = parent.level + 1;
        let trace = ctx.tracer();
        let ok = send_counted(
            &self.tx,
            ToChild::Attach {
                ctx: Arc::clone(ctx),
                env: ProcEnv {
                    id: self.id,
                    level: self.level,
                },
                slot,
                results,
            },
            &self.tree,
            self.id,
            trace.as_deref(),
            self.level,
            &self.pf,
        )
        .is_ok();
        if ok {
            // A warm acquire starts a fresh spawn→terminal lifecycle in
            // the new run's log; a dead parked thread keeps its old (and
            // already terminated) record instead.
            self.trace = trace;
            self.terminal_emitted = false;
            if let Some(tr) = &self.trace {
                tr.emit(
                    self.id,
                    self.level,
                    &self.pf,
                    TraceEventKind::ChildSpawn { warm: true },
                );
            }
        }
        ok
    }

    /// Forwards a `Reset` down one edge of a warm subtree being parked.
    pub fn forward_reset(&mut self) {
        if self.tx.send(ToChild::Reset).is_ok() {
            self.emit_terminal(TraceEventKind::ChildPark);
        }
    }

    /// Requests shutdown without joining — for a child that may be blocked
    /// sending into a full results channel the caller is not draining.
    /// The handle must be kept and dropped after the results receiver
    /// (dropping joins the thread, which by then exits promptly).
    pub fn begin_shutdown(mut self) -> ChildProc {
        self.tx.try_send(ToChild::Shutdown).ok();
        self.tree.deregister(self.id, false);
        self.deregistered = true;
        self.emit_terminal(TraceEventKind::ChildKill { adapt: false });
        self
    }

    /// Shuts the child down and waits for its subtree to terminate.
    pub fn shutdown(mut self, dropped_by_adaptation: bool) {
        self.emit_terminal(TraceEventKind::ChildKill {
            adapt: dropped_by_adaptation,
        });
        self.tx.send(ToChild::Shutdown).ok();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
        self.tree.deregister(self.id, dropped_by_adaptation);
        self.deregistered = true;
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        // Teardown on the normal path (operator dropped) and on unwinding.
        // Threads must never leak.
        self.emit_terminal(TraceEventKind::ChildJoin);
        self.tx.send(ToChild::Shutdown).ok();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
        if !self.deregistered {
            self.tree.deregister(self.id, false);
            self.deregistered = true;
        }
    }
}

/// The child process main loop.
fn child_main(
    mut ctx: Arc<ExecContext>,
    mut env: ProcEnv,
    mut slot: usize,
    rx: Receiver<ToChild>,
    mut results: Sender<FromChild>,
) {
    // Bind this thread to its tree node so events recorded deep inside
    // `eval` (cache lookups, retries, WS calls) carry the right identity;
    // the pf digest is filled in once the plan function arrives.
    obs::set_current_proc(env.id, env.level, Arc::from(""));
    // ---- install phase ----------------------------------------------------
    let (pf, pf_digest) = match rx.recv() {
        Ok(ToChild::Install(bytes)) => match wire::decode_plan_function(bytes.clone()) {
            // Digest the shipped bytes (the same bytes the parent hashed)
            // so parent-side memo lookups hit what this child inserts.
            Ok(pf) => {
                let digest = crate::cache::pf_digest(&pf.name, &bytes);
                obs::set_current_proc(env.id, env.level, Arc::from(digest.as_str()));
                (pf, digest)
            }
            Err(e) => {
                send_up(
                    &ctx,
                    &env,
                    &results,
                    FromChild::Installed {
                        slot,
                        error: Some(e.to_string()),
                    },
                );
                return;
            }
        },
        Ok(ToChild::Shutdown) | Ok(ToChild::Reset) | Ok(ToChild::Attach { .. }) | Err(_) => return,
        Ok(ToChild::Call { call_id, .. }) => {
            send_up(
                &ctx,
                &env,
                &results,
                FromChild::EndOfCall {
                    slot,
                    call_id,
                    error: Some("call before plan function installation".into()),
                    skipped: Vec::new(),
                },
            );
            return;
        }
    };

    // Compiling the body spawns this process's own children (the next tree
    // level) — "each query process initially receives its own plan function
    // definition once before execution" (§III).
    let mut body = match compile(&ctx, &env, &pf.body) {
        Ok(node) => node,
        Err(e) => {
            send_up(
                &ctx,
                &env,
                &results,
                FromChild::Installed {
                    slot,
                    error: Some(e.to_string()),
                },
            );
            return;
        }
    };
    ctx.tree().note_msg_up(env.id);
    if results
        .send(FromChild::Installed { slot, error: None })
        .is_err()
    {
        return;
    }

    // ---- call loop ---------------------------------------------------------
    while let Ok(msg) = rx.recv() {
        match msg {
            ToChild::Call { call_id, params } => {
                let prune_key = pf.prune.as_ref().map(|s| s.section_key.as_str());
                if !handle_call(
                    &ctx, &env, slot, &mut body, &pf_digest, prune_key, call_id, params, &results,
                ) {
                    return; // parent hung up
                }
            }
            ToChild::Reset => {
                // Parked: clear per-run state down the whole warm subtree.
                crate::exec::reset_subtree(&mut body);
            }
            ToChild::Attach {
                ctx: new_ctx,
                env: new_env,
                slot: new_slot,
                results: new_results,
            } => {
                // Re-wired to a new parent run, possibly under a different
                // query's execution context: rebind everything — context,
                // identity, slot, results channel — then re-register the
                // warm subtree into the new run's tree with fresh ids.
                ctx = new_ctx;
                env = new_env;
                slot = new_slot;
                results = new_results;
                obs::set_current_proc(env.id, env.level, Arc::from(pf_digest.as_str()));
                crate::exec::reattach_subtree(&mut body, &ctx, &env);
            }
            ToChild::Shutdown => break,
            ToChild::Install(_) => {
                // Re-installation is a protocol violation; ignore.
            }
        }
    }
    // `body` drops here, recursively shutting down this process's children.
}

/// Sends one frame up to the parent, counting the message (and any time
/// blocked on a full channel) against this process's node.
fn send_up(ctx: &Arc<ExecContext>, env: &ProcEnv, results: &Sender<FromChild>, msg: FromChild) {
    let tree = ctx.tree();
    tree.note_msg_up(env.id);
    let trace = ctx.tracer();
    let (_, level, pf) = obs::current_proc();
    send_counted(results, msg, &tree, env.id, trace.as_deref(), level, &pf).ok();
}

/// Evaluates one parameter batch, streaming result frames through a
/// bounded flush buffer. Returns `false` if the parent hung up.
///
/// Each parameter's complete result set is also memoized in the call
/// cache's plan-function row memo (keyed by `pf_digest` and the
/// parameter's wire encoding) so the parent can short-circuit later
/// duplicates without shipping them to any child.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    ctx: &Arc<ExecContext>,
    env: &ProcEnv,
    slot: usize,
    body: &mut crate::exec::ExecNode,
    pf_digest: &str,
    prune_key: Option<&str>,
    call_id: u64,
    params: Bytes,
    results: &Sender<FromChild>,
) -> bool {
    let cache = ctx.call_cache();
    let mut flush = FlushBuffer::new(ctx, env, slot, call_id, results);
    // Fresh per call: skips recorded by `eval` under partial failure mode
    // accumulate here and ship with this call's end-of-call message.
    crate::resilience::install_skip_sink();
    let outcome = (|| -> crate::CoreResult<()> {
        // One parameter's evaluation: stream its rows through the flush
        // buffer and memoize its complete result set under its row-format
        // wire encoding (`key` is computed lazily — columnar frames only
        // re-encode a row when the memo will actually be written).
        let mut eval_param = |param: &Tuple,
                              key: &mut dyn FnMut() -> crate::cache::CacheKey,
                              flush: &mut FlushBuffer|
         -> crate::CoreResult<()> {
            let skips_before = crate::resilience::skip_sink_len();
            let rows = eval(body, ctx, param)?;
            for tuple in &rows {
                if !flush.push(tuple) {
                    return Err(crate::CoreError::ProcessFailure("parent gone".into()));
                }
            }
            // A parameter that deterministically produced no rows (no call
            // was skipped) is a semi-join pruning candidate: report it under
            // this section's stable key so a later planning pass can drop it
            // parent-side before any dependent call is issued.
            if rows.is_empty() && crate::resilience::skip_sink_len() == skips_before {
                if let (Some(key), Some(obs)) = (prune_key, ctx.planner_obs()) {
                    obs.observe_empty(key, wire::encode_tuple(param));
                }
            }
            if let Some(cache) = &cache {
                // A parameter whose evaluation skipped any call produced
                // an incomplete row set; memoizing it would let a later
                // duplicate short-circuit to partial rows without its
                // skip being counted.
                if crate::resilience::skip_sink_len() == skips_before {
                    cache.insert_rows(&key(), std::sync::Arc::new(rows), Some(ctx.cache_scope()));
                }
            }
            // A cheap parameter between expensive ones must not strand
            // buffered results past the latency bound.
            if !flush.flush_if_stale() {
                return Err(crate::CoreError::ProcessFailure("parent gone".into()));
            }
            Ok(())
        };
        match wire::decode_message(params)? {
            wire::MessageBatch::Rows(parts) => {
                for encoded in parts {
                    let param = wire::decode_tuple(encoded.clone())?;
                    eval_param(
                        &param,
                        &mut || crate::cache::CacheKey::for_rows(pf_digest, &encoded),
                        &mut flush,
                    )?;
                }
            }
            wire::MessageBatch::Columnar(batch) => {
                for i in 0..batch.len() {
                    let param = batch.row(i);
                    // Memo-key parity: the key bytes come straight from the
                    // column slices and equal the parent's `encode_tuple`
                    // output exactly.
                    eval_param(
                        &param,
                        &mut || crate::cache::CacheKey::for_batch_row(pf_digest, &batch, i),
                        &mut flush,
                    )?;
                }
            }
        }
        Ok(())
    })();
    let skipped = crate::resilience::take_skip_sink();
    let error = match outcome {
        Ok(()) => {
            if !flush.finish() {
                return false;
            }
            None
        }
        Err(e) => Some(e.to_string()),
    };
    if error.is_some() && flush.parent_gone {
        return false;
    }
    let tree = ctx.tree();
    tree.note_msg_up(env.id);
    let trace = ctx.tracer();
    let (_, level, pf) = obs::current_proc();
    send_counted(
        results,
        FromChild::EndOfCall {
            slot,
            call_id,
            error,
            skipped,
        },
        &tree,
        env.id,
        trace.as_deref(),
        level,
        &pf,
    )
    .is_ok()
}

/// Child-side result buffer: accumulates encoded tuples and flushes a
/// [`FromChild::ResultBatch`] frame when `max_result_tuples` is reached,
/// when `flush_model_secs` of model time passed since the buffer's first
/// tuple, or at end of call. At the default policy (1 tuple per frame)
/// every tuple flushes immediately — the paper's streaming behaviour.
struct FlushBuffer<'a> {
    ctx: &'a Arc<ExecContext>,
    env: &'a ProcEnv,
    slot: usize,
    call_id: u64,
    results: &'a Sender<FromChild>,
    max_tuples: usize,
    flush_model_secs: f64,
    /// Row mode: per-tuple encodings, framed with a memcpy at flush.
    buf: Vec<Bytes>,
    /// Columnar mode: buffered rows, whole-column encoded at flush.
    rows: Vec<Tuple>,
    columnar: bool,
    buffered_since: Option<Instant>,
    parent_gone: bool,
}

impl<'a> FlushBuffer<'a> {
    fn new(
        ctx: &'a Arc<ExecContext>,
        env: &'a ProcEnv,
        slot: usize,
        call_id: u64,
        results: &'a Sender<FromChild>,
    ) -> Self {
        let policy: BatchPolicy = ctx.batch_policy();
        FlushBuffer {
            ctx,
            env,
            slot,
            call_id,
            results,
            max_tuples: policy.max_result_tuples.max(1),
            flush_model_secs: policy.flush_model_secs,
            buf: Vec::new(),
            rows: Vec::new(),
            columnar: policy.columnar,
            buffered_since: None,
            parent_gone: false,
        }
    }

    fn buffered(&self) -> usize {
        if self.columnar {
            self.rows.len()
        } else {
            self.buf.len()
        }
    }

    /// Buffers one result tuple, flushing if the buffer filled or went
    /// stale. Returns `false` if the parent hung up.
    fn push(&mut self, tuple: &Tuple) -> bool {
        if self.columnar {
            self.rows.push(tuple.clone());
        } else {
            self.buf.push(wire::encode_tuple(tuple));
        }
        self.buffered_since.get_or_insert_with(Instant::now);
        if self.buffered() >= self.max_tuples {
            return self.flush();
        }
        self.flush_if_stale()
    }

    /// Flushes when the oldest buffered tuple has waited longer than the
    /// model-time bound (only measurable when the sim is time-scaled).
    fn flush_if_stale(&mut self) -> bool {
        let Some(since) = self.buffered_since else {
            return true;
        };
        let scale = self.ctx.sim().time_scale;
        if scale > 0.0 && since.elapsed().as_secs_f64() / scale >= self.flush_model_secs {
            return self.flush();
        }
        true
    }

    /// Flushes any remaining tuples at end of call.
    fn finish(&mut self) -> bool {
        if self.buffered() == 0 {
            true
        } else {
            self.flush()
        }
    }

    fn flush(&mut self) -> bool {
        let n = self.buffered();
        if n == 0 {
            return true;
        }
        let frame = if self.columnar {
            wire::encode_columnar_message(&self.rows)
        } else {
            wire::encode_rows_message(&self.buf)
        };
        self.buf.clear();
        self.rows.clear();
        self.buffered_since = None;
        // The child pays its own send cost: one frame plus its tuples.
        let client = &self.ctx.sim().client;
        self.ctx
            .sim()
            .sleep_model(client.message_dispatch + client.tuple_dispatch * n as f64);
        self.ctx.record_shipped(frame.len());
        let tree = self.ctx.tree();
        tree.note_msg_up(self.env.id);
        let trace = self.ctx.tracer();
        let (_, level, pf) = obs::current_proc();
        let ok = send_counted(
            self.results,
            FromChild::ResultBatch {
                slot: self.slot,
                call_id: self.call_id,
                tuples: frame,
            },
            &tree,
            self.env.id,
            trace.as_deref(),
            level,
            &pf,
        )
        .is_ok();
        self.parent_gone = !ok;
        ok
    }
}
