//! Query processes: threads with message inboxes.
//!
//! A query process receives its plan function **once**, installed before
//! execution (paper §III), then a stream of `Call` messages carrying
//! parameter tuples. For each call it evaluates the installed body and
//! streams `Result` messages back, terminated by an `EndOfCall` — the
//! message `FF_APPLYP` uses to know a child is idle again.
//!
//! Plan functions and tuples cross the boundary as serialized bytes
//! ([`crate::wire`]); the parent pays the modeled client-side costs
//! (process startup, plan shipping, message dispatch) so the economics of
//! the paper's single-core coordinator are preserved.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::exec::{compile, eval, ExecContext, ProcEnv};
use crate::wire;

/// Messages a parent sends to a child query process.
#[derive(Debug)]
pub(crate) enum ToChild {
    /// Install the (serialized) plan function. Sent exactly once, first.
    Install(Bytes),
    /// Evaluate the installed plan function for a parameter tuple.
    Call {
        /// Correlation id, unique per parent.
        call_id: u64,
        /// Serialized parameter tuple.
        param: Bytes,
    },
    /// Terminate: tear down the subtree and exit.
    Shutdown,
}

/// Messages a child sends back to its parent.
#[derive(Debug)]
pub(crate) enum FromChild {
    /// Plan function installed (or failed to).
    Installed {
        /// The child's slot at the parent.
        slot: usize,
        /// Install error, if any.
        error: Option<String>,
    },
    /// One result tuple of the current call.
    Result {
        /// The child's slot at the parent.
        slot: usize,
        /// Correlation id of the call.
        call_id: u64,
        /// Serialized result tuple.
        tuple: Bytes,
    },
    /// The current call finished (successfully or not).
    EndOfCall {
        /// The child's slot at the parent.
        slot: usize,
        /// Correlation id of the call.
        call_id: u64,
        /// Evaluation error, if any.
        error: Option<String>,
    },
}

/// A handle the parent keeps per child process.
#[derive(Debug)]
pub(crate) struct ChildProc {
    /// Process id in the tree registry.
    pub id: u64,
    tx: Sender<ToChild>,
    join: Option<JoinHandle<()>>,
    tree: std::sync::Arc<crate::stats::TreeRegistry>,
    deregistered: bool,
}

impl ChildProc {
    /// Spawns a child query process and ships it the plan function.
    ///
    /// The calling (parent) thread pays the modeled process-startup and
    /// plan-shipping costs before this returns, serializing process
    /// management on the parent as on the paper's single-core client.
    pub fn spawn(
        ctx: &Arc<ExecContext>,
        parent: &ProcEnv,
        slot: usize,
        pf_name: &str,
        pf_bytes: Bytes,
        results: Sender<FromChild>,
    ) -> ChildProc {
        let id = ctx.next_process_id();
        let level = parent.level + 1;
        let tree = ctx.tree();
        tree.register(id, Some(parent.id), level, pf_name);

        // Client-side costs: starting the process and shipping the plan.
        let client = &ctx.sim().client;
        ctx.sim().sleep_model(client.process_startup);
        ctx.sim()
            .sleep_model(client.plan_ship_per_kib * pf_bytes.len() as f64 / 1024.0);
        ctx.record_shipped(pf_bytes.len());

        let (tx, rx) = unbounded::<ToChild>();
        let ctx_child = Arc::clone(ctx);
        let join = std::thread::Builder::new()
            .name(format!("wsmed-q{id}"))
            .spawn(move || child_main(ctx_child, ProcEnv { id, level }, slot, rx, results))
            .expect("failed to spawn query process thread");

        tx.send(ToChild::Install(pf_bytes)).ok();
        ChildProc {
            id,
            tx,
            join: Some(join),
            tree,
            deregistered: false,
        }
    }

    /// Sends a parameter tuple; the parent pays the dispatch cost.
    pub fn send_call(&self, ctx: &ExecContext, call_id: u64, param: Bytes) {
        ctx.sim().sleep_model(ctx.sim().client.message_dispatch);
        ctx.record_shipped(param.len());
        self.tx.send(ToChild::Call { call_id, param }).ok();
    }

    /// Shuts the child down and waits for its subtree to terminate.
    pub fn shutdown(mut self, dropped_by_adaptation: bool) {
        self.tx.send(ToChild::Shutdown).ok();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
        self.tree.deregister(self.id, dropped_by_adaptation);
        self.deregistered = true;
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        // Teardown on the normal path (operator dropped) and on unwinding.
        // Threads must never leak.
        self.tx.send(ToChild::Shutdown).ok();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
        if !self.deregistered {
            self.tree.deregister(self.id, false);
            self.deregistered = true;
        }
    }
}

/// The child process main loop.
fn child_main(
    ctx: Arc<ExecContext>,
    env: ProcEnv,
    slot: usize,
    rx: Receiver<ToChild>,
    results: Sender<FromChild>,
) {
    // ---- install phase ----------------------------------------------------
    let pf = match rx.recv() {
        Ok(ToChild::Install(bytes)) => match wire::decode_plan_function(bytes) {
            Ok(pf) => pf,
            Err(e) => {
                results
                    .send(FromChild::Installed {
                        slot,
                        error: Some(e.to_string()),
                    })
                    .ok();
                return;
            }
        },
        Ok(ToChild::Shutdown) | Err(_) => return,
        Ok(ToChild::Call { call_id, .. }) => {
            results
                .send(FromChild::EndOfCall {
                    slot,
                    call_id,
                    error: Some("call before plan function installation".into()),
                })
                .ok();
            return;
        }
    };

    // Compiling the body spawns this process's own children (the next tree
    // level) — "each query process initially receives its own plan function
    // definition once before execution" (§III).
    let mut body = match compile(&ctx, &env, &pf.body) {
        Ok(node) => node,
        Err(e) => {
            results
                .send(FromChild::Installed {
                    slot,
                    error: Some(e.to_string()),
                })
                .ok();
            return;
        }
    };
    if results
        .send(FromChild::Installed { slot, error: None })
        .is_err()
    {
        return;
    }

    // ---- call loop ---------------------------------------------------------
    while let Ok(msg) = rx.recv() {
        match msg {
            ToChild::Call { call_id, param } => {
                let outcome =
                    wire::decode_tuple(param).and_then(|param| eval(&mut body, &ctx, &param));
                match outcome {
                    Ok(tuples) => {
                        for tuple in &tuples {
                            // The child pays its own send cost; results are
                            // streamed one message per tuple, as in §III.A.
                            ctx.sim().sleep_model(ctx.sim().client.message_dispatch);
                            let encoded = wire::encode_tuple(tuple);
                            ctx.record_shipped(encoded.len());
                            if results
                                .send(FromChild::Result {
                                    slot,
                                    call_id,
                                    tuple: encoded,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        if results
                            .send(FromChild::EndOfCall {
                                slot,
                                call_id,
                                error: None,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(e) => {
                        if results
                            .send(FromChild::EndOfCall {
                                slot,
                                call_id,
                                error: Some(e.to_string()),
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            ToChild::Shutdown => break,
            ToChild::Install(_) => {
                // Re-installation is a protocol violation; ignore.
            }
        }
    }
    // `body` drops here, recursively shutting down this process's children.
}
