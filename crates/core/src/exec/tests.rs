//! Executor tests: sequential evaluation, FF_APPLYP, AFF_APPLYP.

use std::sync::Arc;
use std::time::Duration;

use wsmed_store::{canonicalize, SqlType, Tuple, Value};
use wsmed_wsdl::OwfDef;

use crate::catalog::OwfCatalog;
use crate::exec::ExecContext;
use crate::plan::{AdaptiveConfig, ArgExpr, PlanFunction, PlanOp, QueryPlan};
use crate::transport::{MockTransport, WsTransport};
use crate::{CoreError, CoreResult};

/// Builds a catalog with one mock OWF `Echo(x) -> <y>` that the mock
/// transport answers by splitting its argument on `|`.
fn echo_catalog() -> Arc<OwfCatalog> {
    use wsmed_wsdl::{OperationDef, TypeNode, WsdlDocument};
    let mut cat = OwfCatalog::new();
    let doc = WsdlDocument {
        service_name: "Mock".into(),
        target_namespace: "urn:mock".into(),
        operations: vec![OperationDef {
            name: "Echo".into(),
            inputs: vec![("x".into(), SqlType::Charstring)],
            output: TypeNode::Record {
                name: "EchoResponse".into(),
                fields: vec![TypeNode::Repeated {
                    element: Box::new(TypeNode::Scalar {
                        name: "y".into(),
                        ty: SqlType::Charstring,
                    }),
                }],
            },
            doc: None,
        }],
    };
    cat.import(&doc, "urn:mock.wsdl").unwrap();
    Arc::new(cat)
}

/// Wraps rows in the shape `xml_to_value` gives an `<EchoResponse>` body:
/// a record whose `y` field holds the repeated values.
fn echo_response(parts: Vec<Value>) -> Value {
    Value::Record(wsmed_store::Record::new().with("y", Value::Sequence(parts)))
}

/// Splits an argument on `sep` into an Echo response.
fn split_response(arg: &str, sep: char) -> Value {
    echo_response(
        arg.split(sep)
            .filter(|s| !s.is_empty())
            .map(Value::str)
            .collect(),
    )
}

/// Mock responder: `Echo("a|b")` yields rows `a`, `b`. The response shape
/// matches the Echo OWF's flatten spec (a repeated scalar).
fn echo_responder(_owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
    let arg = args[0].as_str().map_err(CoreError::Store)?;
    Ok(split_response(arg, '|'))
}

fn mock_ctx(transport: Arc<MockTransport>) -> Arc<ExecContext> {
    ExecContext::new(
        transport as Arc<dyn WsTransport>,
        echo_catalog(),
        wsmed_netsim::SimConfig::default(),
    )
}

/// A two-stage Echo plan over the seed string:
/// `unit → extend(seed) → Echo(#0)` splits the seed in the coordinator,
/// then a second `Echo(#1)` runs once per value — inline (sequential), via
/// `FF_APPLYP`, or via `AFF_APPLYP`.
fn echo_plan(seed: &str, parallel: Option<(usize, bool)>) -> QueryPlan {
    let source = PlanOp::ApplyOwf {
        owf: "Echo".into(),
        args: vec![ArgExpr::Col(0)],
        output_arity: 1,
        input: Box::new(PlanOp::Extend {
            exprs: vec![ArgExpr::Const(Value::str(seed))],
            input: Box::new(PlanOp::Unit),
        }),
    };
    let per_value = |input: PlanOp, param_col: usize| PlanOp::ApplyOwf {
        owf: "Echo".into(),
        args: vec![ArgExpr::Col(param_col)],
        output_arity: 1,
        input: Box::new(input),
    };
    let root = match parallel {
        None => PlanOp::Project {
            columns: vec![2],
            input: Box::new(per_value(source, 1)),
        },
        Some((fanout, adaptive)) => {
            let pf = PlanFunction {
                name: "PF1".into(),
                param_arity: 2,
                body: Box::new(per_value(PlanOp::Param { arity: 2 }, 1)),
                output_arity: 3,
                prune: None,
            };
            let par = if adaptive {
                PlanOp::AffApply {
                    pf,
                    config: AdaptiveConfig {
                        init_fanout: fanout,
                        ..Default::default()
                    },
                    input: Box::new(source),
                }
            } else {
                PlanOp::FfApply {
                    pf,
                    fanout,
                    input: Box::new(source),
                }
            };
            PlanOp::Project {
                columns: vec![2],
                input: Box::new(par),
            }
        }
    };
    QueryPlan {
        root,
        column_names: vec!["y".into()],
    }
}

fn rows_as_strings(rows: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|t| t.get(0).as_str().unwrap().to_owned())
        .collect();
    out.sort();
    out
}

#[test]
fn sequential_chain_evaluates() {
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    let plan = echo_plan("a|b|c", None);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["a", "b", "c"]);
    // One splitting call plus one per value.
    assert_eq!(transport.call_count(), 4);
    assert_eq!(report.column_names, vec!["y"]);
}

#[test]
fn ff_apply_matches_sequential_results() {
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|b|c", Some((3, false)));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["a", "b", "c"]);
    // Process tree: coordinator + 3 children on level 1.
    assert_eq!(report.tree.levels[1].alive, 3);
    assert_eq!(report.tree.fanout_at(0), Some(3.0));
}

/// A two-level nested plan: the outer PF splits on '|', the inner on ','.
fn nested_plan(fo1: usize, fo2: usize) -> QueryPlan {
    let inner_pf = PlanFunction {
        name: "PF2".into(),
        param_arity: 2,
        body: Box::new(PlanOp::ApplyOwf {
            owf: "Echo".into(),
            args: vec![ArgExpr::Col(1)],
            output_arity: 1,
            input: Box::new(PlanOp::Param { arity: 2 }),
        }),
        output_arity: 3,
        prune: None,
    };
    let outer_pf = PlanFunction {
        name: "PF1".into(),
        param_arity: 1,
        body: Box::new(PlanOp::FfApply {
            pf: inner_pf,
            fanout: fo2,
            input: Box::new(PlanOp::ApplyOwf {
                owf: "Echo".into(),
                args: vec![ArgExpr::Col(0)],
                output_arity: 1,
                input: Box::new(PlanOp::Param { arity: 1 }),
            }),
        }),
        output_arity: 3,
        prune: None,
    };
    QueryPlan {
        root: PlanOp::Project {
            columns: vec![2],
            input: Box::new(PlanOp::FfApply {
                pf: outer_pf,
                fanout: fo1,
                input: Box::new(PlanOp::Extend {
                    exprs: vec![ArgExpr::Const(Value::str("x,y|z,w"))],
                    input: Box::new(PlanOp::Unit),
                }),
            }),
        },
        column_names: vec!["y".into()],
    }
}

#[test]
fn nested_ff_builds_two_level_tree_and_is_correct() {
    // Seed "x,y|z,w": outer Echo → "x,y", "z,w"; inner Echo splits commas.
    let transport = MockTransport::new(|owf, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        let sep = if arg.contains('|') { '|' } else { ',' };
        let _ = owf;
        Ok(split_response(arg, sep))
    });
    let ctx = mock_ctx(transport);
    let report = ctx.run_plan(&nested_plan(2, 3)).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["w", "x", "y", "z"]);
    // Tree: 1 coordinator, 2 level-1 children, each with 3 level-2 children.
    assert_eq!(report.tree.levels[1].alive, 2);
    assert_eq!(report.tree.levels[2].alive, 6);
    assert_eq!(report.tree.fanout_at(1), Some(3.0));
    assert_eq!(report.tree.peak_alive, 9);
}

#[test]
fn ff_apply_overlaps_calls_in_wall_time() {
    // 16 params, 30ms per call: sequential would take ≥ 480ms; with fanout
    // 8 it must finish far sooner.
    let seed = (0..16)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let split_plan = echo_plan(&seed, None);
    let transport = MockTransport::with_delay(Duration::from_millis(30), echo_responder);
    let ctx = mock_ctx(transport);
    let sequential = ctx.run_plan(&split_plan).unwrap();
    assert_eq!(sequential.rows.len(), 16);

    // Parallel: first split the seed (1 call), then fan out per-parameter
    // calls of Echo over the 16 values.
    let plan = echo_plan(&seed, Some((8, false)));
    let transport = MockTransport::with_delay(Duration::from_millis(30), echo_responder);
    let ctx = mock_ctx(transport);
    let parallel = ctx.run_plan(&plan).unwrap();
    assert_eq!(parallel.rows.len(), 16);
    assert_eq!(
        canonicalize(parallel.rows.clone()),
        canonicalize(sequential.rows.clone())
    );
    // 17 calls of 30ms each: sequential ≥ 510ms. Parallel: 1 + ceil(16/8)
    // rounds ≈ 90ms. Allow generous slack for scheduling.
    assert!(
        parallel.wall < sequential.wall / 2,
        "parallel {:?} not faster than sequential {:?}",
        parallel.wall,
        sequential.wall
    );
}

#[test]
fn ff_apply_first_finished_dispatch_beats_stragglers() {
    // One slow parameter ("slow") takes 150ms, others 5ms. With fanout 2
    // and FF dispatch, the fast children keep churning while one child is
    // stuck — total should be ≈ 150ms, not 150ms + stragglers.
    let transport = MockTransport::new(|_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg.starts_with("slow") {
            std::thread::sleep(Duration::from_millis(150));
        } else if !arg.contains('|') {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(split_response(arg, '|'))
    });
    let seed = "slow|a|b|c|d|e|f|g|h";
    let plan = echo_plan(seed, Some((2, false)));
    let ctx = mock_ctx(transport);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.rows.len(), 9);
    // First-finished: the fast child absorbs the 8 fast params (~40ms)
    // while the slow child handles one. Bound well below the ~190ms a
    // round-robin split (slow + 4 fast on one child) could cost.
    assert!(
        report.wall < Duration::from_millis(400),
        "took {:?}",
        report.wall
    );
}

#[test]
fn aff_apply_produces_correct_results_and_adapts() {
    // 40 parameters with a small per-call delay: enough monitoring cycles
    // for at least one add stage from the initial binary tree.
    let seed = (0..40)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let plan = echo_plan(&seed, Some((2, true)));
    let ctx = mock_ctx(MockTransport::new(move |_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if !arg.contains('|') {
            std::thread::sleep(Duration::from_millis(3));
        }
        Ok(split_response(arg, '|'))
    }));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.rows.len(), 40);
    // Started binary, added at least once after the first monitoring cycle.
    assert!(
        report.tree.levels[1].ever > 2,
        "no add stage ran: {:?}",
        report.tree
    );
    assert!(report.tree.adds >= 3); // 2 initial + at least 1 added
}

#[test]
fn adaptive_plan_same_results_as_fixed() {
    let seed = (0..25)
        .map(|i| format!("v{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let fixed = echo_plan(&seed, Some((4, false)));
    let adaptive = echo_plan(&seed, Some((2, true)));
    let r1 = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&fixed)
        .unwrap();
    let r2 = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&adaptive)
        .unwrap();
    assert_eq!(canonicalize(r1.rows), canonicalize(r2.rows));
}

#[test]
fn child_call_error_propagates() {
    let transport = MockTransport::new(|_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg == "boom" {
            return Err(CoreError::ProcessFailure("injected failure".into()));
        }
        Ok(split_response(arg, '|'))
    });
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|boom|c", Some((2, false)));
    let err = ctx.run_plan(&plan).unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => assert!(msg.contains("injected failure"), "{msg}"),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn error_in_coordinator_section_propagates() {
    let transport =
        MockTransport::new(|_, _| Err(CoreError::ProcessFailure("root failure".into())));
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|b", None);
    assert!(matches!(
        ctx.run_plan(&plan),
        Err(CoreError::ProcessFailure(_))
    ));
}

#[test]
fn unknown_owf_fails_at_compile_time() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let plan = QueryPlan {
        root: PlanOp::ApplyOwf {
            owf: "Mystery".into(),
            args: vec![],
            output_arity: 1,
            input: Box::new(PlanOp::Unit),
        },
        column_names: vec!["x".into()],
    };
    assert!(matches!(ctx.run_plan(&plan), Err(CoreError::UnknownOwf(_))));
}

#[test]
fn zero_fanout_rejected_at_compile() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let mut plan = echo_plan("a", Some((1, false)));
    // Patch fanout to zero.
    if let PlanOp::Project { input, .. } = &mut plan.root {
        if let PlanOp::FfApply { fanout, .. } = &mut **input {
            *fanout = 0;
        }
    }
    assert!(matches!(
        ctx.run_plan(&plan),
        Err(CoreError::InvalidPlan(_))
    ));
}

#[test]
fn processes_are_torn_down_after_run() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let plan = echo_plan("a|b|c|d", Some((3, false)));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.tree.levels[1].alive, 3); // snapshot at completion
                                                // After run_plan returns, the tree registry shows only dead children.
    let now = ctx.tree().snapshot();
    assert_eq!(
        now.levels.get(1).map(|l| l.alive).unwrap_or(0),
        0,
        "children leaked: {now:?}"
    );
}

#[test]
fn single_flight_issues_one_transport_call_for_concurrent_identical_calls() {
    // K threads hammer one cold key; single-flight must let exactly one
    // reach the transport while the rest block on the latch and share the
    // leader's value.
    let transport = MockTransport::with_delay(Duration::from_millis(50), echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.set_call_cache(true);
    let catalog = echo_catalog();
    let owf = catalog.get("Echo").unwrap();
    const K: usize = 8;
    let barrier = std::sync::Barrier::new(K);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    ctx.call_with_retry(owf, &[Value::str("p|q")]).unwrap()
                })
            })
            .collect();
        let values: Vec<Value> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in &values {
            assert_eq!(v, &values[0], "waiters must share the leader's value");
        }
    });
    assert_eq!(transport.call_count(), 1, "one real call for {K} threads");
    let stats = ctx.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.dedup_waits as usize, K - 1);
}

#[test]
fn cross_run_memo_short_circuits_repeated_params() {
    use crate::cache::{CachePolicy, CallCache};
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.install_call_cache(Some(Arc::new(CallCache::new(
        CachePolicy::cross_run(),
        0.0,
    ))));
    let plan = echo_plan("a|a|b", Some((2, false)));
    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&first.rows), vec!["a", "a", "b"]);
    // One split call plus one per *distinct* value — the duplicate "a"
    // parameter dedups through the call cache.
    assert_eq!(transport.call_count(), 3);

    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(second.rows.clone()),
        canonicalize(first.rows.clone())
    );
    // Second run: the split call hits the call cache and all three PF
    // parameters are answered parent-side from the rows memo — nothing
    // reaches the transport, no parameter is shipped to a child.
    assert_eq!(transport.call_count(), 3);
    assert_eq!(second.cache.short_circuits, 3);
    assert_eq!(second.tree.total_short_circuits(), 3);
    assert!(second.cache.hits >= 1);
}

#[test]
fn per_run_counters_reset_between_runs() {
    // One ExecContext, two runs: the second report must not accumulate the
    // first run's hits/misses.
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.set_call_cache(true);
    let plan = echo_plan("a|a|b", None);
    let first = ctx.run_plan(&plan).unwrap();
    assert!(first.cache.misses > 0);
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(second.cache.misses, first.cache.misses, "counters reset");
    assert_eq!(second.cache.hits, first.cache.hits);
}

// ---------------------------------------------------------------------------
// Warm process pool + bounded mailboxes
// ---------------------------------------------------------------------------

use crate::exec::pool::{PoolPolicy, ProcessPool};

/// A context with a warm pool installed (the test owns the pool `Arc`, as
/// `Wsmed` does in production).
fn pooled_ctx(
    transport: Arc<MockTransport>,
    policy: PoolPolicy,
    time_scale: f64,
) -> (Arc<ExecContext>, Arc<ProcessPool>) {
    let ctx = mock_ctx(transport);
    let pool = Arc::new(ProcessPool::new(policy, time_scale));
    ctx.install_process_pool(Some(&pool));
    (ctx, pool)
}

#[test]
fn second_run_acquires_warm_and_spawns_nothing() {
    let transport = MockTransport::new(echo_responder);
    let (ctx, pool) = pooled_ctx(transport, PoolPolicy::default(), 0.0);
    let plan = echo_plan("a|b|c|d", Some((3, false)));

    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&first.rows), vec!["a", "b", "c", "d"]);
    assert_eq!(first.pool.cold_spawns, 3);
    assert_eq!(first.pool.warm_acquires, 0);
    assert_eq!(pool.idle_total(), 3, "all three children parked");

    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(second.rows.clone()),
        canonicalize(first.rows.clone())
    );
    // The entire second tree came from the pool: zero modeled startup or
    // plan-ship charges.
    assert_eq!(second.pool.cold_spawns, 0, "second run must be all-warm");
    assert_eq!(second.pool.warm_acquires, 3);
    assert!(second.pool.startup_model_secs_saved > 0.0);
    assert_eq!(pool.idle_total(), 3, "children parked again");
}

#[test]
fn warm_acquire_skips_by_plan_function_digest() {
    // Two different seeds share the same plan function (the seed is bound
    // at the source, outside the PF), so the second query's tree is warm.
    let transport = MockTransport::new(echo_responder);
    let (ctx, _pool) = pooled_ctx(transport, PoolPolicy::default(), 0.0);
    ctx.run_plan(&echo_plan("a|b", Some((2, false)))).unwrap();
    let second = ctx.run_plan(&echo_plan("x|y|z", Some((2, false)))).unwrap();
    assert_eq!(rows_as_strings(&second.rows), vec!["x", "y", "z"]);
    assert_eq!(second.pool.cold_spawns, 0);
    assert_eq!(second.pool.warm_acquires, 2);
}

#[test]
fn nested_warm_tree_reattaches_whole_subtree() {
    let responder = |_: &OwfDef, args: &[Value]| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        let sep = if arg.contains('|') { '|' } else { ',' };
        Ok(split_response(arg, sep))
    };
    let transport = MockTransport::new(responder);
    let (ctx, pool) = pooled_ctx(transport, PoolPolicy::default(), 0.0);
    let plan = nested_plan(2, 3);

    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&first.rows), vec!["w", "x", "y", "z"]);
    assert_eq!(first.pool.cold_spawns, 8); // 2 level-1 + 6 level-2
                                           // Only the level-1 children park *into the pool*; their level-2
                                           // subtrees stay attached beneath them.
    assert_eq!(pool.idle_total(), 2);

    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(second.rows.clone()),
        canonicalize(first.rows.clone())
    );
    assert_eq!(second.pool.cold_spawns, 0, "nested tree fully warm");
    assert_eq!(second.pool.warm_acquires, 2);
    // The re-attached subtree re-registered into the fresh run's registry.
    assert_eq!(second.tree.levels[1].alive, 2);
    assert_eq!(second.tree.levels[2].alive, 6);
}

#[test]
fn disabled_pool_counts_cold_spawns_but_parks_nothing() {
    let transport = MockTransport::new(echo_responder);
    let policy = PoolPolicy {
        enabled: false,
        ..Default::default()
    };
    let (ctx, pool) = pooled_ctx(transport, policy, 0.0);
    let plan = echo_plan("a|b", Some((2, false)));
    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(first.pool.cold_spawns, 2);
    assert_eq!(pool.idle_total(), 0);
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(second.pool.cold_spawns, 2, "every run cold when disabled");
    assert_eq!(second.pool.warm_acquires, 0);
}

#[test]
fn pool_respects_per_pf_and_total_bounds() {
    let transport = MockTransport::new(echo_responder);
    let policy = PoolPolicy {
        max_idle_per_pf: 2,
        max_idle_total: 2,
        ..Default::default()
    };
    let (ctx, pool) = pooled_ctx(transport, policy, 0.0);
    let report = ctx
        .run_plan(&echo_plan("a|b|c|d|e", Some((4, false))))
        .unwrap();
    // Four children tried to park; the bounds kept two.
    assert_eq!(pool.idle_total(), 2);
    assert_eq!(report.pool.evictions, 2);
    let second = ctx
        .run_plan(&echo_plan("a|b|c|d|e", Some((4, false))))
        .unwrap();
    assert_eq!(second.pool.warm_acquires, 2);
    assert_eq!(second.pool.cold_spawns, 2);
}

#[test]
fn ttl_expires_parked_processes_in_model_time() {
    let transport = MockTransport::new(echo_responder);
    // TTL of zero model-seconds at a non-zero time scale: everything
    // parked is already expired by the next acquire.
    let policy = PoolPolicy {
        idle_ttl_model_secs: Some(0.0),
        ..Default::default()
    };
    let (ctx, pool) = pooled_ctx(transport, policy, 1.0);
    let plan = echo_plan("a|b", Some((2, false)));
    ctx.run_plan(&plan).unwrap();
    assert_eq!(pool.idle_total(), 2);
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(second.pool.warm_acquires, 0, "parked processes expired");
    assert_eq!(second.pool.cold_spawns, 2);
    assert!(second.pool.evictions >= 2);
}

#[test]
fn ttl_is_inert_when_time_scale_is_zero() {
    let transport = MockTransport::new(echo_responder);
    let policy = PoolPolicy {
        idle_ttl_model_secs: Some(0.0),
        ..Default::default()
    };
    // time_scale 0: model time is not measurable, TTL must not fire.
    let (ctx, _pool) = pooled_ctx(transport, policy, 0.0);
    let plan = echo_plan("a|b", Some((2, false)));
    ctx.run_plan(&plan).unwrap();
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(second.pool.warm_acquires, 2);
    assert_eq!(second.pool.cold_spawns, 0);
}

#[test]
fn failed_run_does_not_park_children() {
    let transport = MockTransport::new(|_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg == "boom" {
            return Err(CoreError::ProcessFailure("injected failure".into()));
        }
        Ok(split_response(arg, '|'))
    });
    let (ctx, pool) = pooled_ctx(transport, PoolPolicy::default(), 0.0);
    let plan = echo_plan("a|boom|c", Some((2, false)));
    assert!(ctx.run_plan(&plan).is_err());
    assert_eq!(pool.idle_total(), 0, "no parking after a failed run");
}

#[test]
fn adaptive_drop_stage_parks_dropped_children_warm() {
    // Start wide with a strictly shrinking workload pattern is hard to
    // force; instead run an adaptive plan and just assert that whatever
    // was dropped or left idle ended up parked, and that a repeat run
    // acquires at least some of it warm with identical results.
    let seed = (0..30)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let make_transport = || {
        MockTransport::new(move |_, args: &[Value]| {
            let arg = args[0].as_str().map_err(CoreError::Store)?;
            if !arg.contains('|') {
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(split_response(arg, '|'))
        })
    };
    let (ctx, pool) = pooled_ctx(make_transport(), PoolPolicy::default(), 0.0);
    let plan = echo_plan(&seed, Some((2, true)));
    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(first.rows.len(), 30);
    assert!(pool.idle_total() > 0, "adaptive tree parked nothing");
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(second.rows.clone()),
        canonicalize(first.rows.clone())
    );
    assert!(second.pool.warm_acquires > 0);
}

#[test]
fn mid_stream_child_drop_requeues_in_flight_params() {
    // Baseline without failure injection.
    let seed = (0..12)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let plan = echo_plan(&seed, Some((3, false)));
    let baseline = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&plan)
        .unwrap();
    assert_eq!(baseline.rows.len(), 12);

    // Same plan, but after the 2nd end-of-call one busy child is abruptly
    // killed: its in-flight parameters must migrate to the survivors and
    // the result multiset must not change (no loss, no duplication).
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    ctx.arm_child_failure_after_eocs(2);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(report.rows.clone()),
        canonicalize(baseline.rows.clone()),
        "child drop changed the result multiset"
    );
}

#[test]
fn mid_stream_child_drop_requeues_under_round_robin() {
    // Round-robin pre-assigns parameters per slot; a killed slot's backlog
    // must migrate to the survivors instead of being stranded.
    let seed = (0..12)
        .map(|i| format!("r{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let plan = echo_plan(&seed, Some((3, false)));
    let baseline = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&plan)
        .unwrap();

    let ctx = mock_ctx(MockTransport::new(echo_responder));
    ctx.set_dispatch_policy(crate::transport::DispatchPolicy::RoundRobin);
    ctx.arm_child_failure_after_eocs(1);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(report.rows.clone()),
        canonicalize(baseline.rows.clone()),
        "round-robin child drop lost or duplicated rows"
    );
}

#[test]
fn warm_pool_survives_mid_stream_child_drop() {
    // A run that kills a child still parks the *surviving* children only
    // if the run succeeded; the dead child must not be parked.
    let seed = (0..10)
        .map(|i| format!("s{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let plan = echo_plan(&seed, Some((3, false)));
    let (ctx, pool) = pooled_ctx(
        MockTransport::new(echo_responder),
        PoolPolicy::default(),
        0.0,
    );
    let baseline = ctx.run_plan(&plan).unwrap();
    assert_eq!(pool.idle_total(), 3);
    ctx.arm_child_failure_after_eocs(2);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(report.rows.clone()),
        canonicalize(baseline.rows.clone())
    );
    assert_eq!(pool.idle_total(), 2, "dead child must not be parked");
}

#[test]
fn tiny_mailbox_capacity_is_correct_under_load() {
    // Capacity 2 (the floor): every frame contends for mailbox space; the
    // run must still produce exactly the right multiset.
    let seed = (0..40)
        .map(|i| format!("m{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let sequential = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&echo_plan(&seed, None))
        .unwrap();
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    ctx.set_batch_policy(crate::transport::BatchPolicy {
        mailbox_frames: Some(2),
        ..Default::default()
    });
    let report = ctx.run_plan(&echo_plan(&seed, Some((4, false)))).unwrap();
    assert_eq!(
        canonicalize(report.rows.clone()),
        canonicalize(sequential.rows.clone())
    );
}

#[test]
fn full_results_mailbox_records_blocked_send() {
    // One child answers a single call with 300 result tuples at one tuple
    // per frame, into a results channel holding only 2 frames, while the
    // parent pays modeled dispatch time per frame — the child must spend
    // measurable wall time blocked in `send`.
    let transport = MockTransport::new(move |_, args: &[Value]| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg == "big" {
            return Ok(echo_response(
                (0..300).map(|i| Value::str(format!("t{i}"))).collect(),
            ));
        }
        Ok(split_response(arg, '|'))
    });
    let ctx = ExecContext::new(
        transport as Arc<dyn WsTransport>,
        echo_catalog(),
        wsmed_netsim::SimConfig::new(0.05, 7), // real sleeps: 0.1ms/frame
    );
    ctx.set_batch_policy(crate::transport::BatchPolicy {
        mailbox_frames: Some(2),
        ..Default::default()
    });
    // Seed "big|pad" splits at the coordinator; the child's Echo("big")
    // call is the one that floods the results channel.
    let report = ctx
        .run_plan(&echo_plan("big|pad", Some((1, false))))
        .unwrap();
    assert_eq!(report.rows.len(), 301);
    assert!(
        report.tree.total_blocked_send() > Duration::ZERO,
        "no backpressure recorded: {:?}",
        report.tree
    );
}

#[test]
fn report_counts_ws_calls_via_sim_transport() {
    use wsmed_services::{install_paper_services, Dataset, DatasetConfig};
    let network = wsmed_netsim::Network::new(wsmed_netsim::SimConfig::default());
    let dataset = Arc::new(Dataset::generate(DatasetConfig::tiny()));
    let registry = install_paper_services(network, dataset);
    let mut wsmed = crate::Wsmed::new(registry);
    wsmed.import_all_wsdl().unwrap();
    let report = wsmed
        .run_central("select gs.State from GetAllStates gs")
        .unwrap();
    assert_eq!(report.rows.len(), 51);
    assert_eq!(report.ws_calls, 1);
    assert!(report.ws_bytes > 0);
}
