//! Executor tests: sequential evaluation, FF_APPLYP, AFF_APPLYP.

use std::sync::Arc;
use std::time::Duration;

use wsmed_store::{canonicalize, SqlType, Tuple, Value};
use wsmed_wsdl::OwfDef;

use crate::catalog::OwfCatalog;
use crate::exec::ExecContext;
use crate::plan::{AdaptiveConfig, ArgExpr, PlanFunction, PlanOp, QueryPlan};
use crate::transport::{MockTransport, WsTransport};
use crate::{CoreError, CoreResult};

/// Builds a catalog with one mock OWF `Echo(x) -> <y>` that the mock
/// transport answers by splitting its argument on `|`.
fn echo_catalog() -> Arc<OwfCatalog> {
    use wsmed_wsdl::{OperationDef, TypeNode, WsdlDocument};
    let mut cat = OwfCatalog::new();
    let doc = WsdlDocument {
        service_name: "Mock".into(),
        target_namespace: "urn:mock".into(),
        operations: vec![OperationDef {
            name: "Echo".into(),
            inputs: vec![("x".into(), SqlType::Charstring)],
            output: TypeNode::Record {
                name: "EchoResponse".into(),
                fields: vec![TypeNode::Repeated {
                    element: Box::new(TypeNode::Scalar {
                        name: "y".into(),
                        ty: SqlType::Charstring,
                    }),
                }],
            },
            doc: None,
        }],
    };
    cat.import(&doc, "urn:mock.wsdl").unwrap();
    Arc::new(cat)
}

/// Wraps rows in the shape `xml_to_value` gives an `<EchoResponse>` body:
/// a record whose `y` field holds the repeated values.
fn echo_response(parts: Vec<Value>) -> Value {
    Value::Record(wsmed_store::Record::new().with("y", Value::Sequence(parts)))
}

/// Splits an argument on `sep` into an Echo response.
fn split_response(arg: &str, sep: char) -> Value {
    echo_response(
        arg.split(sep)
            .filter(|s| !s.is_empty())
            .map(Value::str)
            .collect(),
    )
}

/// Mock responder: `Echo("a|b")` yields rows `a`, `b`. The response shape
/// matches the Echo OWF's flatten spec (a repeated scalar).
fn echo_responder(_owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
    let arg = args[0].as_str().map_err(CoreError::Store)?;
    Ok(split_response(arg, '|'))
}

fn mock_ctx(transport: Arc<MockTransport>) -> Arc<ExecContext> {
    ExecContext::new(
        transport as Arc<dyn WsTransport>,
        echo_catalog(),
        wsmed_netsim::SimConfig::default(),
    )
}

/// A two-stage Echo plan over the seed string:
/// `unit → extend(seed) → Echo(#0)` splits the seed in the coordinator,
/// then a second `Echo(#1)` runs once per value — inline (sequential), via
/// `FF_APPLYP`, or via `AFF_APPLYP`.
fn echo_plan(seed: &str, parallel: Option<(usize, bool)>) -> QueryPlan {
    let source = PlanOp::ApplyOwf {
        owf: "Echo".into(),
        args: vec![ArgExpr::Col(0)],
        output_arity: 1,
        input: Box::new(PlanOp::Extend {
            exprs: vec![ArgExpr::Const(Value::str(seed))],
            input: Box::new(PlanOp::Unit),
        }),
    };
    let per_value = |input: PlanOp, param_col: usize| PlanOp::ApplyOwf {
        owf: "Echo".into(),
        args: vec![ArgExpr::Col(param_col)],
        output_arity: 1,
        input: Box::new(input),
    };
    let root = match parallel {
        None => PlanOp::Project {
            columns: vec![2],
            input: Box::new(per_value(source, 1)),
        },
        Some((fanout, adaptive)) => {
            let pf = PlanFunction {
                name: "PF1".into(),
                param_arity: 2,
                body: Box::new(per_value(PlanOp::Param { arity: 2 }, 1)),
                output_arity: 3,
            };
            let par = if adaptive {
                PlanOp::AffApply {
                    pf,
                    config: AdaptiveConfig {
                        init_fanout: fanout,
                        ..Default::default()
                    },
                    input: Box::new(source),
                }
            } else {
                PlanOp::FfApply {
                    pf,
                    fanout,
                    input: Box::new(source),
                }
            };
            PlanOp::Project {
                columns: vec![2],
                input: Box::new(par),
            }
        }
    };
    QueryPlan {
        root,
        column_names: vec!["y".into()],
    }
}

fn rows_as_strings(rows: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|t| t.get(0).as_str().unwrap().to_owned())
        .collect();
    out.sort();
    out
}

#[test]
fn sequential_chain_evaluates() {
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    let plan = echo_plan("a|b|c", None);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["a", "b", "c"]);
    // One splitting call plus one per value.
    assert_eq!(transport.call_count(), 4);
    assert_eq!(report.column_names, vec!["y"]);
}

#[test]
fn ff_apply_matches_sequential_results() {
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|b|c", Some((3, false)));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["a", "b", "c"]);
    // Process tree: coordinator + 3 children on level 1.
    assert_eq!(report.tree.levels[1].alive, 3);
    assert_eq!(report.tree.fanout_at(0), Some(3.0));
}

/// A two-level nested plan: the outer PF splits on '|', the inner on ','.
fn nested_plan(fo1: usize, fo2: usize) -> QueryPlan {
    let inner_pf = PlanFunction {
        name: "PF2".into(),
        param_arity: 2,
        body: Box::new(PlanOp::ApplyOwf {
            owf: "Echo".into(),
            args: vec![ArgExpr::Col(1)],
            output_arity: 1,
            input: Box::new(PlanOp::Param { arity: 2 }),
        }),
        output_arity: 3,
    };
    let outer_pf = PlanFunction {
        name: "PF1".into(),
        param_arity: 1,
        body: Box::new(PlanOp::FfApply {
            pf: inner_pf,
            fanout: fo2,
            input: Box::new(PlanOp::ApplyOwf {
                owf: "Echo".into(),
                args: vec![ArgExpr::Col(0)],
                output_arity: 1,
                input: Box::new(PlanOp::Param { arity: 1 }),
            }),
        }),
        output_arity: 3,
    };
    QueryPlan {
        root: PlanOp::Project {
            columns: vec![2],
            input: Box::new(PlanOp::FfApply {
                pf: outer_pf,
                fanout: fo1,
                input: Box::new(PlanOp::Extend {
                    exprs: vec![ArgExpr::Const(Value::str("x,y|z,w"))],
                    input: Box::new(PlanOp::Unit),
                }),
            }),
        },
        column_names: vec!["y".into()],
    }
}

#[test]
fn nested_ff_builds_two_level_tree_and_is_correct() {
    // Seed "x,y|z,w": outer Echo → "x,y", "z,w"; inner Echo splits commas.
    let transport = MockTransport::new(|owf, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        let sep = if arg.contains('|') { '|' } else { ',' };
        let _ = owf;
        Ok(split_response(arg, sep))
    });
    let ctx = mock_ctx(transport);
    let report = ctx.run_plan(&nested_plan(2, 3)).unwrap();
    assert_eq!(rows_as_strings(&report.rows), vec!["w", "x", "y", "z"]);
    // Tree: 1 coordinator, 2 level-1 children, each with 3 level-2 children.
    assert_eq!(report.tree.levels[1].alive, 2);
    assert_eq!(report.tree.levels[2].alive, 6);
    assert_eq!(report.tree.fanout_at(1), Some(3.0));
    assert_eq!(report.tree.peak_alive, 9);
}

#[test]
fn ff_apply_overlaps_calls_in_wall_time() {
    // 16 params, 30ms per call: sequential would take ≥ 480ms; with fanout
    // 8 it must finish far sooner.
    let seed = (0..16)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let split_plan = echo_plan(&seed, None);
    let transport = MockTransport::with_delay(Duration::from_millis(30), echo_responder);
    let ctx = mock_ctx(transport);
    let sequential = ctx.run_plan(&split_plan).unwrap();
    assert_eq!(sequential.rows.len(), 16);

    // Parallel: first split the seed (1 call), then fan out per-parameter
    // calls of Echo over the 16 values.
    let plan = echo_plan(&seed, Some((8, false)));
    let transport = MockTransport::with_delay(Duration::from_millis(30), echo_responder);
    let ctx = mock_ctx(transport);
    let parallel = ctx.run_plan(&plan).unwrap();
    assert_eq!(parallel.rows.len(), 16);
    assert_eq!(
        canonicalize(parallel.rows.clone()),
        canonicalize(sequential.rows.clone())
    );
    // 17 calls of 30ms each: sequential ≥ 510ms. Parallel: 1 + ceil(16/8)
    // rounds ≈ 90ms. Allow generous slack for scheduling.
    assert!(
        parallel.wall < sequential.wall / 2,
        "parallel {:?} not faster than sequential {:?}",
        parallel.wall,
        sequential.wall
    );
}

#[test]
fn ff_apply_first_finished_dispatch_beats_stragglers() {
    // One slow parameter ("slow") takes 150ms, others 5ms. With fanout 2
    // and FF dispatch, the fast children keep churning while one child is
    // stuck — total should be ≈ 150ms, not 150ms + stragglers.
    let transport = MockTransport::new(|_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg.starts_with("slow") {
            std::thread::sleep(Duration::from_millis(150));
        } else if !arg.contains('|') {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(split_response(arg, '|'))
    });
    let seed = "slow|a|b|c|d|e|f|g|h";
    let plan = echo_plan(seed, Some((2, false)));
    let ctx = mock_ctx(transport);
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.rows.len(), 9);
    // First-finished: the fast child absorbs the 8 fast params (~40ms)
    // while the slow child handles one. Bound well below the ~190ms a
    // round-robin split (slow + 4 fast on one child) could cost.
    assert!(
        report.wall < Duration::from_millis(400),
        "took {:?}",
        report.wall
    );
}

#[test]
fn aff_apply_produces_correct_results_and_adapts() {
    // 40 parameters with a small per-call delay: enough monitoring cycles
    // for at least one add stage from the initial binary tree.
    let seed = (0..40)
        .map(|i| format!("p{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let plan = echo_plan(&seed, Some((2, true)));
    let ctx = mock_ctx(MockTransport::new(move |_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if !arg.contains('|') {
            std::thread::sleep(Duration::from_millis(3));
        }
        Ok(split_response(arg, '|'))
    }));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.rows.len(), 40);
    // Started binary, added at least once after the first monitoring cycle.
    assert!(
        report.tree.levels[1].ever > 2,
        "no add stage ran: {:?}",
        report.tree
    );
    assert!(report.tree.adds >= 3); // 2 initial + at least 1 added
}

#[test]
fn adaptive_plan_same_results_as_fixed() {
    let seed = (0..25)
        .map(|i| format!("v{i}"))
        .collect::<Vec<_>>()
        .join("|");
    let fixed = echo_plan(&seed, Some((4, false)));
    let adaptive = echo_plan(&seed, Some((2, true)));
    let r1 = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&fixed)
        .unwrap();
    let r2 = mock_ctx(MockTransport::new(echo_responder))
        .run_plan(&adaptive)
        .unwrap();
    assert_eq!(canonicalize(r1.rows), canonicalize(r2.rows));
}

#[test]
fn child_call_error_propagates() {
    let transport = MockTransport::new(|_, args| {
        let arg = args[0].as_str().map_err(CoreError::Store)?;
        if arg == "boom" {
            return Err(CoreError::ProcessFailure("injected failure".into()));
        }
        Ok(split_response(arg, '|'))
    });
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|boom|c", Some((2, false)));
    let err = ctx.run_plan(&plan).unwrap_err();
    match err {
        CoreError::ProcessFailure(msg) => assert!(msg.contains("injected failure"), "{msg}"),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn error_in_coordinator_section_propagates() {
    let transport =
        MockTransport::new(|_, _| Err(CoreError::ProcessFailure("root failure".into())));
    let ctx = mock_ctx(transport);
    let plan = echo_plan("a|b", None);
    assert!(matches!(
        ctx.run_plan(&plan),
        Err(CoreError::ProcessFailure(_))
    ));
}

#[test]
fn unknown_owf_fails_at_compile_time() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let plan = QueryPlan {
        root: PlanOp::ApplyOwf {
            owf: "Mystery".into(),
            args: vec![],
            output_arity: 1,
            input: Box::new(PlanOp::Unit),
        },
        column_names: vec!["x".into()],
    };
    assert!(matches!(ctx.run_plan(&plan), Err(CoreError::UnknownOwf(_))));
}

#[test]
fn zero_fanout_rejected_at_compile() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let mut plan = echo_plan("a", Some((1, false)));
    // Patch fanout to zero.
    if let PlanOp::Project { input, .. } = &mut plan.root {
        if let PlanOp::FfApply { fanout, .. } = &mut **input {
            *fanout = 0;
        }
    }
    assert!(matches!(
        ctx.run_plan(&plan),
        Err(CoreError::InvalidPlan(_))
    ));
}

#[test]
fn processes_are_torn_down_after_run() {
    let ctx = mock_ctx(MockTransport::new(echo_responder));
    let plan = echo_plan("a|b|c|d", Some((3, false)));
    let report = ctx.run_plan(&plan).unwrap();
    assert_eq!(report.tree.levels[1].alive, 3); // snapshot at completion
                                                // After run_plan returns, the tree registry shows only dead children.
    let now = ctx.tree().snapshot();
    assert_eq!(
        now.levels.get(1).map(|l| l.alive).unwrap_or(0),
        0,
        "children leaked: {now:?}"
    );
}

#[test]
fn single_flight_issues_one_transport_call_for_concurrent_identical_calls() {
    // K threads hammer one cold key; single-flight must let exactly one
    // reach the transport while the rest block on the latch and share the
    // leader's value.
    let transport = MockTransport::with_delay(Duration::from_millis(50), echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.set_call_cache(true);
    let catalog = echo_catalog();
    let owf = catalog.get("Echo").unwrap();
    const K: usize = 8;
    let barrier = std::sync::Barrier::new(K);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    ctx.call_with_retry(owf, &[Value::str("p|q")]).unwrap()
                })
            })
            .collect();
        let values: Vec<Value> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in &values {
            assert_eq!(v, &values[0], "waiters must share the leader's value");
        }
    });
    assert_eq!(transport.call_count(), 1, "one real call for {K} threads");
    let stats = ctx.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.dedup_waits as usize, K - 1);
}

#[test]
fn cross_run_memo_short_circuits_repeated_params() {
    use crate::cache::{CachePolicy, CallCache};
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.install_call_cache(Some(Arc::new(CallCache::new(
        CachePolicy::cross_run(),
        0.0,
    ))));
    let plan = echo_plan("a|a|b", Some((2, false)));
    let first = ctx.run_plan(&plan).unwrap();
    assert_eq!(rows_as_strings(&first.rows), vec!["a", "a", "b"]);
    // One split call plus one per *distinct* value — the duplicate "a"
    // parameter dedups through the call cache.
    assert_eq!(transport.call_count(), 3);

    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(
        canonicalize(second.rows.clone()),
        canonicalize(first.rows.clone())
    );
    // Second run: the split call hits the call cache and all three PF
    // parameters are answered parent-side from the rows memo — nothing
    // reaches the transport, no parameter is shipped to a child.
    assert_eq!(transport.call_count(), 3);
    assert_eq!(second.cache.short_circuits, 3);
    assert_eq!(second.tree.total_short_circuits(), 3);
    assert!(second.cache.hits >= 1);
}

#[test]
fn per_run_counters_reset_between_runs() {
    // One ExecContext, two runs: the second report must not accumulate the
    // first run's hits/misses.
    let transport = MockTransport::new(echo_responder);
    let ctx = mock_ctx(Arc::clone(&transport));
    ctx.set_call_cache(true);
    let plan = echo_plan("a|a|b", None);
    let first = ctx.run_plan(&plan).unwrap();
    assert!(first.cache.misses > 0);
    let second = ctx.run_plan(&plan).unwrap();
    assert_eq!(second.cache.misses, first.cache.misses, "counters reset");
    assert_eq!(second.cache.hits, first.cache.hits);
}

#[test]
fn report_counts_ws_calls_via_sim_transport() {
    use wsmed_services::{install_paper_services, Dataset, DatasetConfig};
    let network = wsmed_netsim::Network::new(wsmed_netsim::SimConfig::default());
    let dataset = Arc::new(Dataset::generate(DatasetConfig::tiny()));
    let registry = install_paper_services(network, dataset);
    let mut wsmed = crate::Wsmed::new(registry);
    wsmed.import_all_wsdl().unwrap();
    let report = wsmed
        .run_central("select gs.State from GetAllStates gs")
        .unwrap();
    assert_eq!(report.rows.len(), 51);
    assert_eq!(report.ws_calls, 1);
    assert!(report.ws_bytes > 0);
}
