//! Warm process-tree pool: reuse query processes across executions.
//!
//! The paper's §IV/§V cost analysis singles out process startup and
//! plan-function shipping as the overheads parallelization must amortize —
//! it is why `AFF_APPLYP` grows its tree incrementally instead of spawning
//! a wide fanout up front. This module removes those overheads from the
//! steady state entirely: at the end of a successful run the coordinator
//! *parks* its child query processes here instead of joining them, keyed
//! by plan-function content digest ([`crate::cache::pf_digest`]) and tree
//! level, and the next run's `FF_APPLYP`/`AFF_APPLYP` *acquire* warm
//! processes — skipping the modeled startup and plan-ship charges, the
//! compile, and the real thread spawn. Because a parked child keeps its
//! own (already installed) subtree alive, acquiring one warm level-1
//! process reclaims the whole warm tree below it.
//!
//! The pool is owned by the mediator ([`crate::Wsmed`]) and outlives
//! individual executions; the per-run [`crate::exec::ExecContext`] holds
//! only a `Weak` reference so parked threads (which hold the context
//! `Arc`) never form a strong cycle with the pool that owns their join
//! handles.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::exec::process::ChildProc;

/// Configuration of the warm process pool, installed via
/// [`crate::Wsmed::set_pool_policy`] and mirroring
/// [`crate::transport::BatchPolicy`] / [`crate::cache::CachePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolPolicy {
    /// Maximum idle processes parked per (plan function, tree level) key;
    /// releasing beyond this evicts the oldest parked process of the key.
    pub max_idle_per_pf: usize,
    /// Maximum idle processes parked across all keys; releasing beyond
    /// this evicts the globally oldest parked process.
    pub max_idle_total: usize,
    /// Model-seconds a parked process stays warm; `None` never expires.
    /// Expiry is measured in *model* time, so it only takes effect when
    /// the simulation runs at a non-zero time scale (matching
    /// [`crate::cache::CachePolicy::ttl_model_secs`]).
    pub idle_ttl_model_secs: Option<f64>,
    /// Master switch: when false, every spawn is cold and nothing parks.
    pub enabled: bool,
}

impl Default for PoolPolicy {
    fn default() -> Self {
        PoolPolicy {
            max_idle_per_pf: 8,
            max_idle_total: 64,
            idle_ttl_model_secs: None,
            enabled: true,
        }
    }
}

/// Per-run pool counters, surfaced in [`crate::ExecutionReport::pool`].
/// All counters reset at the start of each run; parked processes persist.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Child processes acquired warm from the pool this run.
    pub warm_acquires: u64,
    /// Child processes spawned cold this run (each charged the modeled
    /// `process_startup` plus plan-shipping cost).
    pub cold_spawns: u64,
    /// Modeled seconds of startup + plan-ship cost skipped this run,
    /// counting both the acquired processes and every process of the warm
    /// subtrees re-attached beneath them.
    pub startup_model_secs_saved: f64,
    /// Parked processes evicted this run (bounds, TTL, or a dead thread
    /// discovered at acquire time).
    pub evictions: u64,
}

/// One parked (idle, warm) query process.
struct ParkedProc {
    proc: ChildProc,
    parked_at: Instant,
    /// Modeled seconds (startup + plan ship) a future warm acquire of
    /// this process will skip, recorded by the parking parent.
    saved_model_secs: f64,
}

/// A warm process popped from the pool, ready to be re-attached.
pub(crate) struct WarmProc {
    /// The parked child process handle.
    pub proc: ChildProc,
    /// Modeled seconds the acquire skipped (startup + plan ship).
    pub saved_model_secs: f64,
}

#[derive(Default)]
struct PoolInner {
    /// Parked processes per (plan-function digest, tree level). Keying by
    /// level as well as digest means a warm subtree is only ever re-used
    /// at the tree position it was built for.
    idle: HashMap<(String, usize), VecDeque<ParkedProc>>,
    total: usize,
}

/// The warm process pool. One per [`crate::Wsmed`]; shared with the
/// execution context through a `Weak` reference.
pub struct ProcessPool {
    policy: PoolPolicy,
    time_scale: f64,
    inner: Mutex<PoolInner>,
    warm_acquires: AtomicU64,
    cold_spawns: AtomicU64,
    saved_micros: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessPool")
            .field("policy", &self.policy)
            .field("idle", &self.idle_total())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ProcessPool {
    /// Creates an empty pool with the given policy. `time_scale` is the
    /// simulation time scale the TTL is measured against.
    pub fn new(policy: PoolPolicy, time_scale: f64) -> Self {
        ProcessPool {
            policy,
            time_scale,
            inner: Mutex::default(),
            warm_acquires: AtomicU64::new(0),
            cold_spawns: AtomicU64::new(0),
            saved_micros: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The installed policy.
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Resets the per-run counters. Parked processes are kept — cross-run
    /// reuse is the pool's entire point.
    pub fn begin_run(&self) {
        self.warm_acquires.store(0, Ordering::Relaxed);
        self.cold_spawns.store(0, Ordering::Relaxed);
        self.saved_micros.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the per-run counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            warm_acquires: self.warm_acquires.load(Ordering::Relaxed),
            cold_spawns: self.cold_spawns.load(Ordering::Relaxed),
            startup_model_secs_saved: self.saved_micros.load(Ordering::Relaxed) as f64 / 1e6,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total processes currently parked.
    pub fn idle_total(&self) -> usize {
        self.inner.lock().total
    }

    /// Counts one cold spawn (called from `ChildProc::spawn`, the single
    /// site that charges the modeled startup cost — so `cold_spawns` is
    /// exactly the number of startup charges this run).
    pub(crate) fn note_cold_spawn(&self) {
        self.cold_spawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops the most recently parked (warmest) live process for a key,
    /// discarding TTL-expired entries on the way. Returns `None` when the
    /// pool is disabled or has nothing warm for this key.
    pub(crate) fn acquire(&self, digest: &str, level: usize) -> Option<WarmProc> {
        if !self.policy.enabled {
            return None;
        }
        let mut expired: Vec<ParkedProc> = Vec::new();
        let warm = {
            let mut inner = self.inner.lock();
            let queue = inner.idle.get_mut(&(digest.to_owned(), level))?;
            let mut found = None;
            while let Some(parked) = queue.pop_back() {
                if self.is_expired(&parked) {
                    expired.push(parked);
                    continue;
                }
                found = Some(parked);
                break;
            }
            if queue.is_empty() {
                inner.idle.remove(&(digest.to_owned(), level));
            }
            inner.total -= expired.len() + usize::from(found.is_some());
            found
        };
        // Joining evicted threads must happen outside the pool lock.
        self.evictions
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        drop(expired);
        warm.map(|p| WarmProc {
            proc: p.proc,
            saved_model_secs: p.saved_model_secs,
        })
    }

    /// Counts a successful warm attach: one spawn's worth of modeled
    /// startup + plan-ship cost skipped.
    pub(crate) fn note_warm_acquire(&self, saved_model_secs: f64) {
        self.warm_acquires.fetch_add(1, Ordering::Relaxed);
        self.note_saved(saved_model_secs);
    }

    /// Adds skipped modeled cost without counting an acquire — used for
    /// the subtree processes re-attached beneath a warm acquire (each
    /// skipped its own startup + plan-ship charge, but was never itself in
    /// the pool).
    pub(crate) fn note_saved(&self, saved_model_secs: f64) {
        self.saved_micros
            .fetch_add((saved_model_secs * 1e6) as u64, Ordering::Relaxed);
    }

    /// Counts a parked process that turned out to be dead at attach time.
    pub(crate) fn note_dead_on_acquire(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Parks an idle process for later reuse, evicting the oldest parked
    /// processes beyond the per-key and total bounds. `saved_model_secs`
    /// is the modeled cost a future warm acquire will skip (startup plus
    /// plan shipping for this process's plan-function bytes).
    pub(crate) fn release(
        &self,
        digest: &str,
        level: usize,
        proc: ChildProc,
        saved_model_secs: f64,
    ) {
        if !self.policy.enabled
            || self.policy.max_idle_total == 0
            || self.policy.max_idle_per_pf == 0
        {
            return; // drop: cold teardown
        }
        let mut evicted: Vec<ParkedProc> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let queue = inner.idle.entry((digest.to_owned(), level)).or_default();
            queue.push_back(ParkedProc {
                proc,
                parked_at: Instant::now(),
                saved_model_secs,
            });
            while queue.len() > self.policy.max_idle_per_pf {
                if let Some(old) = queue.pop_front() {
                    evicted.push(old);
                }
            }
            inner.total = inner.total + 1 - evicted.len();
            while inner.total > self.policy.max_idle_total {
                if let Some(old) = Self::pop_globally_oldest(&mut inner) {
                    evicted.push(old);
                    inner.total -= 1;
                } else {
                    break;
                }
            }
        }
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        // ChildProc::drop joins the thread — never do that under the lock.
        drop(evicted);
    }

    /// Drops every parked process (joining their threads). Used when the
    /// catalog or policy changes invalidate warm state.
    pub fn clear(&self) {
        let drained: Vec<VecDeque<ParkedProc>> = {
            let mut inner = self.inner.lock();
            inner.total = 0;
            inner.idle.drain().map(|(_, q)| q).collect()
        };
        drop(drained);
    }

    fn pop_globally_oldest(inner: &mut PoolInner) -> Option<ParkedProc> {
        let key = inner
            .idle
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(_, q)| q.front().map(|p| p.parked_at))?
            .0
            .clone();
        let queue = inner.idle.get_mut(&key)?;
        let oldest = queue.pop_front();
        if queue.is_empty() {
            inner.idle.remove(&key);
        }
        oldest
    }

    fn is_expired(&self, parked: &ParkedProc) -> bool {
        let Some(ttl) = self.policy.idle_ttl_model_secs else {
            return false;
        };
        // Model-time TTL: only measurable when the sim is time-scaled.
        self.time_scale > 0.0 && parked.parked_at.elapsed().as_secs_f64() / self.time_scale >= ttl
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        self.clear();
    }
}
