//! Warm process-tree pool: reuse query processes across executions.
//!
//! The paper's §IV/§V cost analysis singles out process startup and
//! plan-function shipping as the overheads parallelization must amortize —
//! it is why `AFF_APPLYP` grows its tree incrementally instead of spawning
//! a wide fanout up front. This module removes those overheads from the
//! steady state entirely: at the end of a successful run the coordinator
//! *parks* its child query processes here instead of joining them, keyed
//! by plan-function content digest ([`crate::cache::pf_digest`]) and tree
//! level, and the next run's `FF_APPLYP`/`AFF_APPLYP` *acquire* warm
//! processes — skipping the modeled startup and plan-ship charges, the
//! compile, and the real thread spawn. Because a parked child keeps its
//! own (already installed) subtree alive, acquiring one warm level-1
//! process reclaims the whole warm tree below it.
//!
//! The pool is owned by the mediator ([`crate::Wsmed`]) and outlives
//! individual executions; the per-run [`crate::exec::ExecContext`] holds
//! only a `Weak` reference so parked threads (which hold the context
//! `Arc`) never form a strong cycle with the pool that owns their join
//! handles.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::exec::process::ChildProc;

/// Configuration of the warm process pool, installed via
/// [`crate::Wsmed::set_pool_policy`] and mirroring
/// [`crate::transport::BatchPolicy`] / [`crate::cache::CachePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolPolicy {
    /// Maximum idle processes parked per (plan function, tree level) key;
    /// releasing beyond this evicts the oldest parked process of the key.
    pub max_idle_per_pf: usize,
    /// Maximum idle processes parked across all keys; releasing beyond
    /// this evicts the globally oldest parked process.
    pub max_idle_total: usize,
    /// Model-seconds a parked process stays warm; `None` never expires.
    /// Expiry is measured in *model* time, so it only takes effect when
    /// the simulation runs at a non-zero time scale (matching
    /// [`crate::cache::CachePolicy::ttl_model_secs`]).
    pub idle_ttl_model_secs: Option<f64>,
    /// Master switch: when false, every spawn is cold and nothing parks.
    pub enabled: bool,
    /// Fair-share bound on warm acquisitions per query (`None` =
    /// unlimited). With many queries sharing one pool, an unbounded
    /// first-comer drains every warm process LIFO; capping per-query
    /// acquisitions slices the warm fleet round-robin across queries
    /// (each query stays LIFO — warmest-first — within its budget) while
    /// the losers fall back to cold spawns instead of starving.
    pub warm_acquire_budget_per_query: Option<u64>,
}

impl Default for PoolPolicy {
    fn default() -> Self {
        PoolPolicy {
            max_idle_per_pf: 8,
            max_idle_total: 64,
            idle_ttl_model_secs: None,
            enabled: true,
            warm_acquire_budget_per_query: None,
        }
    }
}

/// Per-run pool counters, surfaced in [`crate::ExecutionReport::pool`].
/// All counters reset at the start of each run; parked processes persist.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Child processes acquired warm from the pool this run.
    pub warm_acquires: u64,
    /// Child processes spawned cold this run (each charged the modeled
    /// `process_startup` plus plan-shipping cost).
    pub cold_spawns: u64,
    /// Modeled seconds of startup + plan-ship cost skipped this run,
    /// counting both the acquired processes and every process of the warm
    /// subtrees re-attached beneath them.
    pub startup_model_secs_saved: f64,
    /// Parked processes evicted this run (bounds, TTL, or a dead thread
    /// discovered at acquire time).
    pub evictions: u64,
}

/// Per-query attribution counters for one shared [`ProcessPool`], owned
/// by the execution context. Scoped pool operations bump both the
/// pool-global counters and the acquiring query's scope, so a query's
/// [`crate::ExecutionReport::pool`] describes *its* warm reuse even when
/// many queries share the pool concurrently. The warm-acquire count also
/// enforces [`PoolPolicy::warm_acquire_budget_per_query`].
#[derive(Debug, Default)]
pub(crate) struct PoolScope {
    warm_acquires: AtomicU64,
    cold_spawns: AtomicU64,
    saved_micros: AtomicU64,
    evictions: AtomicU64,
}

impl PoolScope {
    /// Rearms the scope for a new run.
    pub(crate) fn reset(&self) {
        self.warm_acquires.store(0, Ordering::Relaxed);
        self.cold_spawns.store(0, Ordering::Relaxed);
        self.saved_micros.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Warm acquisitions so far this run (the fair-share budget meter).
    pub(crate) fn warm_acquires(&self) -> u64 {
        self.warm_acquires.load(Ordering::Relaxed)
    }

    /// This query's slice of the shared pool activity.
    pub(crate) fn snapshot(&self) -> PoolStats {
        PoolStats {
            warm_acquires: self.warm_acquires.load(Ordering::Relaxed),
            cold_spawns: self.cold_spawns.load(Ordering::Relaxed),
            startup_model_secs_saved: self.saved_micros.load(Ordering::Relaxed) as f64 / 1e6,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// One parked (idle, warm) query process.
struct ParkedProc {
    proc: ChildProc,
    parked_at: Instant,
    /// Modeled seconds (startup + plan ship) a future warm acquire of
    /// this process will skip, recorded by the parking parent.
    saved_model_secs: f64,
}

/// A warm process popped from the pool, ready to be re-attached.
pub(crate) struct WarmProc {
    /// The parked child process handle.
    pub proc: ChildProc,
    /// Modeled seconds the acquire skipped (startup + plan ship).
    pub saved_model_secs: f64,
}

#[derive(Default)]
struct PoolInner {
    /// Parked processes per (plan-function digest, tree level). Keying by
    /// level as well as digest means a warm subtree is only ever re-used
    /// at the tree position it was built for.
    idle: HashMap<(String, usize), VecDeque<ParkedProc>>,
    total: usize,
}

/// The warm process pool. One per [`crate::Wsmed`]; shared with the
/// execution context through a `Weak` reference.
pub struct ProcessPool {
    policy: PoolPolicy,
    time_scale: f64,
    inner: Mutex<PoolInner>,
    warm_acquires: AtomicU64,
    cold_spawns: AtomicU64,
    saved_micros: AtomicU64,
    evictions: AtomicU64,
    /// Runs currently using this pool; counters reset only on the
    /// idle → busy edge so overlapping runs share one busy period.
    active_runs: AtomicUsize,
}

impl std::fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessPool")
            .field("policy", &self.policy)
            .field("idle", &self.idle_total())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ProcessPool {
    /// Creates an empty pool with the given policy. `time_scale` is the
    /// simulation time scale the TTL is measured against.
    pub fn new(policy: PoolPolicy, time_scale: f64) -> Self {
        ProcessPool {
            policy,
            time_scale,
            inner: Mutex::default(),
            warm_acquires: AtomicU64::new(0),
            cold_spawns: AtomicU64::new(0),
            saved_micros: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            active_runs: AtomicUsize::new(0),
        }
    }

    /// The installed policy.
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Starts a run against this pool. Counters reset only on the
    /// idle → busy edge (no other run active); overlapping runs join the
    /// busy period. Parked processes are kept either way — cross-run
    /// reuse is the pool's entire point. Pair with
    /// [`ProcessPool::end_run`].
    pub fn begin_run(&self) {
        if self.active_runs.fetch_add(1, Ordering::AcqRel) > 0 {
            return;
        }
        self.warm_acquires.store(0, Ordering::Relaxed);
        self.cold_spawns.store(0, Ordering::Relaxed);
        self.saved_micros.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Marks one run as finished with this pool.
    pub fn end_run(&self) {
        // Tolerate historical callers that paired begin_run with nothing.
        let _ = self
            .active_runs
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
    }

    /// Snapshot of the busy-period counters (equals per-run counters for
    /// sequential callers).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            warm_acquires: self.warm_acquires.load(Ordering::Relaxed),
            cold_spawns: self.cold_spawns.load(Ordering::Relaxed),
            startup_model_secs_saved: self.saved_micros.load(Ordering::Relaxed) as f64 / 1e6,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total processes currently parked.
    pub fn idle_total(&self) -> usize {
        self.inner.lock().total
    }

    fn note_evictions(&self, n: u64, scope: Option<&PoolScope>) {
        if n == 0 {
            return;
        }
        self.evictions.fetch_add(n, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one cold spawn (called from `ChildProc::spawn`, the single
    /// site that charges the modeled startup cost — so `cold_spawns` is
    /// exactly the number of startup charges this run).
    pub(crate) fn note_cold_spawn(&self, scope: Option<&PoolScope>) {
        self.cold_spawns.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.cold_spawns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pops the most recently parked (warmest) live process for a key,
    /// discarding TTL-expired entries on the way. Returns `None` when the
    /// pool is disabled, has nothing warm for this key, or the acquiring
    /// query's fair-share budget
    /// ([`PoolPolicy::warm_acquire_budget_per_query`]) is spent.
    pub(crate) fn acquire(
        &self,
        digest: &str,
        level: usize,
        scope: Option<&PoolScope>,
    ) -> Option<WarmProc> {
        if !self.policy.enabled {
            return None;
        }
        if let (Some(budget), Some(scope)) = (self.policy.warm_acquire_budget_per_query, scope) {
            if scope.warm_acquires() >= budget {
                return None; // budget spent: fall back to a cold spawn
            }
        }
        let mut expired: Vec<ParkedProc> = Vec::new();
        let warm = {
            let mut inner = self.inner.lock();
            let queue = inner.idle.get_mut(&(digest.to_owned(), level))?;
            let mut found = None;
            while let Some(parked) = queue.pop_back() {
                if self.is_expired(&parked) {
                    expired.push(parked);
                    continue;
                }
                found = Some(parked);
                break;
            }
            if queue.is_empty() {
                inner.idle.remove(&(digest.to_owned(), level));
            }
            inner.total -= expired.len() + usize::from(found.is_some());
            found
        };
        // Joining evicted threads must happen outside the pool lock.
        self.note_evictions(expired.len() as u64, scope);
        drop(expired);
        warm.map(|p| WarmProc {
            proc: p.proc,
            saved_model_secs: p.saved_model_secs,
        })
    }

    /// Counts a successful warm attach: one spawn's worth of modeled
    /// startup + plan-ship cost skipped.
    pub(crate) fn note_warm_acquire(&self, saved_model_secs: f64, scope: Option<&PoolScope>) {
        self.warm_acquires.fetch_add(1, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.warm_acquires.fetch_add(1, Ordering::Relaxed);
        }
        self.note_saved(saved_model_secs, scope);
    }

    /// Adds skipped modeled cost without counting an acquire — used for
    /// the subtree processes re-attached beneath a warm acquire (each
    /// skipped its own startup + plan-ship charge, but was never itself in
    /// the pool).
    pub(crate) fn note_saved(&self, saved_model_secs: f64, scope: Option<&PoolScope>) {
        let micros = (saved_model_secs * 1e6) as u64;
        self.saved_micros.fetch_add(micros, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.saved_micros.fetch_add(micros, Ordering::Relaxed);
        }
    }

    /// Counts a parked process that turned out to be dead at attach time.
    pub(crate) fn note_dead_on_acquire(&self, scope: Option<&PoolScope>) {
        self.note_evictions(1, scope);
    }

    /// Parks an idle process for later reuse, evicting the oldest parked
    /// processes beyond the per-key and total bounds. `saved_model_secs`
    /// is the modeled cost a future warm acquire will skip (startup plus
    /// plan shipping for this process's plan-function bytes).
    pub(crate) fn release(
        &self,
        digest: &str,
        level: usize,
        proc: ChildProc,
        saved_model_secs: f64,
        scope: Option<&PoolScope>,
    ) {
        if !self.policy.enabled
            || self.policy.max_idle_total == 0
            || self.policy.max_idle_per_pf == 0
        {
            return; // drop: cold teardown
        }
        let mut evicted: Vec<ParkedProc> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let queue = inner.idle.entry((digest.to_owned(), level)).or_default();
            queue.push_back(ParkedProc {
                proc,
                parked_at: Instant::now(),
                saved_model_secs,
            });
            while queue.len() > self.policy.max_idle_per_pf {
                if let Some(old) = queue.pop_front() {
                    evicted.push(old);
                }
            }
            inner.total = inner.total + 1 - evicted.len();
            while inner.total > self.policy.max_idle_total {
                if let Some(old) = Self::pop_globally_oldest(&mut inner) {
                    evicted.push(old);
                    inner.total -= 1;
                } else {
                    break;
                }
            }
        }
        self.note_evictions(evicted.len() as u64, scope);
        // ChildProc::drop joins the thread — never do that under the lock.
        drop(evicted);
    }

    /// Drops every parked process (joining their threads). Used when the
    /// catalog or policy changes invalidate warm state.
    pub fn clear(&self) {
        let drained: Vec<VecDeque<ParkedProc>> = {
            let mut inner = self.inner.lock();
            inner.total = 0;
            inner.idle.drain().map(|(_, q)| q).collect()
        };
        drop(drained);
    }

    fn pop_globally_oldest(inner: &mut PoolInner) -> Option<ParkedProc> {
        let key = inner
            .idle
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(_, q)| q.front().map(|p| p.parked_at))?
            .0
            .clone();
        let queue = inner.idle.get_mut(&key)?;
        let oldest = queue.pop_front();
        if queue.is_empty() {
            inner.idle.remove(&key);
        }
        oldest
    }

    fn is_expired(&self, parked: &ParkedProc) -> bool {
        let Some(ttl) = self.policy.idle_ttl_model_secs else {
            return false;
        };
        // Model-time TTL: only measurable when the sim is time-scaled.
        self.time_scale > 0.0 && parked.parked_at.elapsed().as_secs_f64() / self.time_scale >= ttl
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        self.clear();
    }
}
