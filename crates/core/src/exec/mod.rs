//! Plan execution: the coordinator-side interpreter plus the query-process
//! runtime for `FF_APPLYP` / `AFF_APPLYP`.

mod parallel_op;
pub mod pool;
mod process;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::RwLock;

use wsmed_netsim::SimConfig;
use wsmed_store::{FunctionRegistry, Tuple, Value};
use wsmed_wsdl::OwfDef;

use crate::cache::{CacheKey, CachePolicy, CacheScope, CacheStats, CallCache, CallLookup};
use crate::catalog::OwfCatalog;
use crate::exec::pool::{PoolScope, PoolStats, ProcessPool};
use crate::obs::{self, TraceEventKind, TraceLog, TracePolicy};
use crate::plan::{ArgExpr, PlanOp, QueryPlan};
use crate::resilience::{
    self, Breakers, CallGate, FailureMode, ResilienceCollector, ResiliencePolicy, Transition,
};
use crate::router::{GroupView, Router, RouterCollector};
use crate::stats::{ExecutionReport, TreeRegistry};
use crate::transport::{BatchPolicy, DispatchPolicy, RetryPolicy, WsTransport};
use crate::{CoreError, CoreResult};

pub(crate) use parallel_op::ParallelApply;

/// Identity of the query process executing a plan fragment.
#[derive(Debug, Clone, Copy)]
pub struct ProcEnv {
    /// Process id in the tree registry (coordinator = 0).
    pub id: u64,
    /// Tree level (coordinator = 0).
    pub level: usize,
}

/// Shared execution state: transport, function registry, OWF catalog,
/// simulation config and the live process tree.
pub struct ExecContext {
    transport: Arc<dyn WsTransport>,
    functions: FunctionRegistry,
    owfs: Arc<OwfCatalog>,
    sim: SimConfig,
    tree: RwLock<Arc<TreeRegistry>>,
    next_id: AtomicU64,
    /// Parameter/result/plan bytes shipped between query processes.
    shipped_bytes: AtomicU64,
    /// Nanoseconds from run start until the coordinator saw its first
    /// result tuple (0 = not yet / not applicable).
    first_result_nanos: AtomicU64,
    /// Resilient-call policy (retries, deadline, breaker, hedge, failure
    /// mode) for web-service calls.
    resilience: RwLock<ResiliencePolicy>,
    /// Per-provider circuit-breaker states. Fresh per context by default;
    /// [`crate::Wsmed`] installs its mediator-global table so concurrent
    /// queries observe one shared view of each provider's health.
    breakers: RwLock<Arc<Breakers>>,
    /// Admission gate for per-tenant in-flight call budgets, when the
    /// mediator runs under a [`crate::QuotaPolicy`].
    admission: RwLock<Option<CallGate>>,
    /// Run-scoped resilience counters behind
    /// [`crate::ResilienceStats`].
    res_stats: ResilienceCollector,
    /// Client-side replica router, when [`crate::Wsmed`] installed one.
    /// `None` (the default) keeps every call on the legacy direct path.
    router: RwLock<Option<Arc<Router>>>,
    /// Run-scoped routing counters behind [`crate::RouterStats`].
    router_stats: RouterCollector,
    /// Parameter dispatch policy for fixed-fanout FF_APPLYP operators.
    dispatch: RwLock<DispatchPolicy>,
    /// Tuple batching policy for parent↔child message frames.
    batch: RwLock<BatchPolicy>,
    /// Memoization of web service calls and plan-function invocations
    /// (`None` = disabled). [`crate::Wsmed`] installs a shared instance
    /// here when the policy is cross-run.
    call_cache: RwLock<Option<Arc<CallCache>>>,
    /// Warm process pool, when [`crate::Wsmed`] installed one. Weak: the
    /// pool owns parked threads whose closures hold this context's `Arc`,
    /// so a strong reference here would form a leak cycle.
    pool: RwLock<Weak<ProcessPool>>,
    /// This context's query id — tags cache entries it creates so other
    /// queries' reads count as cross-query hits.
    query_id: AtomicU64,
    /// Per-query attribution of shared-cache traffic.
    cache_scope: CacheScope,
    /// Per-query attribution of warm-pool traffic.
    pool_scope: PoolScope,
    /// Web service calls this context issued this run (cache hits
    /// excluded; every attempt that reached the transport counts).
    ws_calls: AtomicU64,
    /// Wire bytes (request + response) those calls moved.
    ws_bytes: AtomicU64,
    /// Failure-injection knob for tests: after this many end-of-call
    /// messages at the coordinator, one busy child is abruptly killed.
    fail_child_after_eocs: AtomicU64,
    /// Run start marker used for the first-result measurement.
    run_started: parking_lot::Mutex<Option<Instant>>,
    /// Structured-trace policy applied at the start of each run.
    trace_policy: RwLock<TracePolicy>,
    /// Fast path for the disabled case: every trace hook checks this one
    /// relaxed atomic before touching the log handle below.
    trace_on: AtomicBool,
    /// The current (or last) run's trace log, when tracing was enabled.
    trace: RwLock<Option<Arc<TraceLog>>>,
    /// Planner-statistics sink: operator cardinalities, call latencies and
    /// empty-parameter observations feed back into it during execution.
    /// Installed by [`crate::Wsmed`] under a cost-based planner policy;
    /// `None` (the default) keeps every hook to one atomic load.
    planner_obs: RwLock<Option<Arc<crate::costs::PlannerStats>>>,
    /// Mirrors `planner_obs.is_some()` (same pattern as `trace_on`).
    obs_on: AtomicBool,
    /// Parameter tuples dropped parent-side by semi-join pruning this run.
    pruned_params: AtomicU64,
}

impl ExecContext {
    /// Creates a context. The function registry is preloaded with the
    /// built-in helping functions.
    pub fn new(
        transport: Arc<dyn WsTransport>,
        owfs: Arc<OwfCatalog>,
        sim: SimConfig,
    ) -> Arc<Self> {
        Arc::new(ExecContext {
            transport,
            functions: FunctionRegistry::with_builtins(),
            owfs,
            sim,
            tree: RwLock::new(TreeRegistry::new()),
            next_id: AtomicU64::new(1),
            shipped_bytes: AtomicU64::new(0),
            first_result_nanos: AtomicU64::new(0),
            resilience: RwLock::new(ResiliencePolicy::default()),
            breakers: RwLock::new(Arc::new(Breakers::default())),
            admission: RwLock::new(None),
            res_stats: ResilienceCollector::default(),
            router: RwLock::new(None),
            router_stats: RouterCollector::default(),
            dispatch: RwLock::new(DispatchPolicy::default()),
            batch: RwLock::new(BatchPolicy::default()),
            call_cache: RwLock::new(None),
            pool: RwLock::new(Weak::new()),
            query_id: AtomicU64::new(0),
            cache_scope: CacheScope::default(),
            pool_scope: PoolScope::default(),
            ws_calls: AtomicU64::new(0),
            ws_bytes: AtomicU64::new(0),
            fail_child_after_eocs: AtomicU64::new(0),
            run_started: parking_lot::Mutex::new(None),
            trace_policy: RwLock::new(TracePolicy::default()),
            trace_on: AtomicBool::new(false),
            trace: RwLock::new(None),
            planner_obs: RwLock::new(None),
            obs_on: AtomicBool::new(false),
            pruned_params: AtomicU64::new(0),
        })
    }

    /// The web service transport.
    pub fn transport(&self) -> &Arc<dyn WsTransport> {
        &self.transport
    }

    /// The helping-function registry.
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// The OWF catalog.
    pub fn owfs(&self) -> &OwfCatalog {
        &self.owfs
    }

    /// The simulation config (client cost model + time scale).
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// The live process-tree registry of the current (or last) run.
    pub fn tree(&self) -> Arc<TreeRegistry> {
        self.tree.read().clone()
    }

    /// Installs a retry policy for transient web-service faults (legacy
    /// wrapper: lifts it into a [`ResiliencePolicy`] with the current
    /// policy's non-retry knobs preserved).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        let mut res = self.resilience.write();
        res.max_attempts = policy.max_attempts.max(1);
        res.backoff_model_secs = policy.backoff_model_secs;
        res.backoff_multiplier = 1.0;
        res.backoff_jitter_frac = 0.0;
    }

    /// The retry-loop projection of the current resilience policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.resilience.read().as_retry()
    }

    /// Installs the full resilient-call policy (deadline, backoff,
    /// breaker, hedging, failure mode).
    pub fn set_resilience_policy(&self, policy: ResiliencePolicy) {
        *self.resilience.write() = policy;
    }

    /// The current resilience policy.
    pub fn resilience_policy(&self) -> ResiliencePolicy {
        *self.resilience.read()
    }

    /// The current query-level failure mode.
    pub(crate) fn failure_mode(&self) -> FailureMode {
        self.resilience.read().failure_mode
    }

    /// Installs a shared circuit-breaker table. [`crate::Wsmed`] points
    /// every per-query context at its mediator-global table so one
    /// provider's failures trip the breaker for all concurrent queries.
    pub(crate) fn install_breakers(&self, breakers: Arc<Breakers>) {
        *self.breakers.write() = breakers;
    }

    /// The circuit-breaker table this context consults (one cheap
    /// refcounted handle).
    pub(crate) fn breakers(&self) -> Arc<Breakers> {
        self.breakers.read().clone()
    }

    /// Installs (or clears) the admission gate charging this context's
    /// web-service calls against a tenant's in-flight budget.
    pub(crate) fn install_admission(&self, gate: Option<CallGate>) {
        *self.admission.write() = gate;
    }

    /// Installs (or clears, with `None`) the client-side replica router.
    /// [`crate::Wsmed`] shares one mediator-global instance across its
    /// per-query contexts so the round-robin rotation stays coherent.
    pub(crate) fn install_router(&self, router: Option<Arc<Router>>) {
        *self.router.write() = router;
    }

    /// The installed router, if any (one cheap refcounted handle).
    pub(crate) fn router(&self) -> Option<Arc<Router>> {
        self.router.read().clone()
    }

    /// Routing counters accumulated so far this run.
    pub fn router_stats(&self) -> crate::router::RouterStats {
        self.router_stats.snapshot()
    }

    /// Tags this context with the mediator-assigned query id used for
    /// cross-query cache attribution. Standalone contexts keep id 0.
    pub fn set_query_id(&self, id: u64) {
        self.query_id.store(id, Ordering::Relaxed);
    }

    /// Per-query cache attribution scope.
    pub(crate) fn cache_scope(&self) -> &CacheScope {
        &self.cache_scope
    }

    /// Per-query pool attribution scope.
    pub(crate) fn pool_scope(&self) -> &PoolScope {
        &self.pool_scope
    }

    /// The single chokepoint where this context touches the wire: meters
    /// calls and bytes onto per-context counters (correct under
    /// concurrent queries, unlike diffing global provider metrics) and
    /// emits the per-call trace event.
    pub(crate) fn transport_call(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
    ) -> CoreResult<Value> {
        self.transport_call_on(owf, args, deadline_model_secs, None)
    }

    /// [`ExecContext::transport_call`] pinned to a specific replica of the
    /// OWF's provider group when the router chose one (`None` keeps the
    /// transport's own endpoint resolution).
    pub(crate) fn transport_call_on(
        &self,
        owf: &OwfDef,
        args: &[Value],
        deadline_model_secs: Option<f64>,
        replica: Option<&str>,
    ) -> CoreResult<Value> {
        // Latency observation for the cost-based planner: the model-time
        // delta across the (blocking, latency-sleeping) call is the call's
        // own latency. Meaningless at time scale 0, where calls are
        // instant — the calibrated seed profiles stand in there.
        let observe = self.obs_on.load(Ordering::Relaxed) && self.sim.time_scale > 0.0;
        let started = observe.then(|| self.transport.model_now());
        let result = match replica {
            Some(replica) => {
                self.transport
                    .call_operation_replica(owf, args, deadline_model_secs, replica)
            }
            None => self
                .transport
                .call_operation_metered(owf, args, deadline_model_secs),
        };
        if let (Some(started), Ok(_)) = (started, &result) {
            if let Some(obs) = self.planner_obs() {
                obs.observe_latency(&owf.name, self.transport.model_now() - started);
            }
        }
        self.ws_calls.fetch_add(1, Ordering::Relaxed);
        if let Ok((_, bytes)) = &result {
            self.ws_bytes.fetch_add(*bytes, Ordering::Relaxed);
        }
        if self.tracing() {
            self.trace_here(TraceEventKind::WsCall {
                op: owf.operation.clone(),
                ok: result.is_ok(),
                err: result
                    .as_ref()
                    .err()
                    .map(|e| crate::transport::error_class(e).to_owned()),
            });
        }
        result.map(|(value, _bytes)| value)
    }

    /// Resilience counters accumulated so far this run.
    pub fn resilience_stats(&self) -> crate::ResilienceStats {
        self.res_stats.snapshot()
    }

    /// Routes one skipped parameter tuple (partial failure mode): into
    /// the calling thread's skip sink inside a child query process (it
    /// ships with the end-of-call message, committing together with the
    /// call's rows), or straight onto the run's collector at the
    /// coordinator.
    pub(crate) fn note_param_skip(&self, owf: &str) {
        if self.tracing() {
            self.trace_here(TraceEventKind::ParamSkipped { op: owf.to_owned() });
        }
        if !resilience::note_skip_local(owf) {
            self.res_stats.note_skips(owf, 1);
        }
    }

    /// Commits a batch of child-reported skips (successful end-of-call):
    /// re-routes through the local sink so skips propagate correctly
    /// through nested parallel operators, falling back to the collector
    /// at the coordinator.
    pub(crate) fn commit_skips(&self, skips: &[(String, u64)]) {
        for (owf, n) in skips {
            for _ in 0..*n {
                if !resilience::note_skip_local(owf) {
                    self.res_stats.note_skips(owf, 1);
                }
            }
        }
    }

    /// Sets the parameter dispatch policy (ablation knob; the default is
    /// the paper's first-finished dispatch).
    pub fn set_dispatch_policy(&self, policy: DispatchPolicy) {
        *self.dispatch.write() = policy;
    }

    /// The current dispatch policy.
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        *self.dispatch.read()
    }

    /// Sets the tuple batching policy for parent↔child message frames.
    /// The default ships one tuple per message, the paper's semantics.
    pub fn set_batch_policy(&self, policy: BatchPolicy) {
        *self.batch.write() = policy;
    }

    /// The current batching policy.
    pub fn batch_policy(&self) -> BatchPolicy {
        *self.batch.read()
    }

    /// Enables or disables memoization of web service calls with the
    /// default [`CachePolicy`] (per-run, 16 shards, single-flight).
    ///
    /// Data-providing web services are side-effect-free (the paper's §I
    /// premise), so within one query execution a repeated call with
    /// identical arguments must return the same result — the mediator can
    /// answer it from memory. This collapses the redundant calls a
    /// cartesian dependent join would otherwise re-issue.
    pub fn set_call_cache(&self, enabled: bool) {
        self.install_call_cache(
            enabled.then(|| Arc::new(CallCache::new(CachePolicy::default(), self.sim.time_scale))),
        );
    }

    /// Installs a specific cache instance (or disables caching with
    /// `None`). A shared instance installed into successive contexts is
    /// what makes [`CachePolicy::cross_run`] reuse work.
    pub fn install_call_cache(&self, cache: Option<Arc<CallCache>>) {
        *self.call_cache.write() = cache;
    }

    /// The installed call cache, if any (a cheap refcounted handle; one
    /// lock acquisition).
    pub fn call_cache(&self) -> Option<Arc<CallCache>> {
        self.call_cache.read().clone()
    }

    /// Web service calls answered from the memoization cache this run.
    pub fn cache_hits(&self) -> u64 {
        self.call_cache().map_or(0, |c| c.stats().hits)
    }

    /// Per-run cache counters (all zero when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.call_cache()
            .map_or_else(CacheStats::default, |c| c.stats())
    }

    /// Installs (or removes, with `None`) the warm process pool this
    /// context's parallel operators park into and acquire from. The
    /// context keeps only a weak reference; [`crate::Wsmed`] owns the pool.
    pub fn install_process_pool(&self, pool: Option<&Arc<ProcessPool>>) {
        *self.pool.write() = pool.map_or_else(Weak::new, Arc::downgrade);
    }

    /// The installed process pool, if it is still alive.
    pub(crate) fn process_pool(&self) -> Option<Arc<ProcessPool>> {
        self.pool.read().upgrade()
    }

    /// Installs the structured-trace policy applied at the start of each
    /// subsequent [`ExecContext::run_plan`]. The default policy is
    /// disabled, which keeps every trace hook to a single atomic load.
    pub fn set_trace_policy(&self, policy: TracePolicy) {
        *self.trace_policy.write() = policy;
    }

    /// The installed trace policy.
    pub fn trace_policy(&self) -> TracePolicy {
        *self.trace_policy.read()
    }

    /// The current (or last) run's trace log, when that run had tracing
    /// enabled. Also surfaced on [`crate::ExecutionReport::trace`].
    pub fn trace_handle(&self) -> Option<Arc<TraceLog>> {
        self.trace.read().clone()
    }

    /// True when the current run records a trace. Hook sites that must
    /// allocate to build an event payload check this first.
    pub(crate) fn tracing(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    /// The live trace log — `None` (after one atomic load) when disabled.
    pub(crate) fn tracer(&self) -> Option<Arc<TraceLog>> {
        if !self.trace_on.load(Ordering::Relaxed) {
            return None;
        }
        self.trace.read().clone()
    }

    /// Records a trace event attributed to the process-tree node the
    /// calling thread is bound to (coordinator or child query process).
    pub(crate) fn trace_here(&self, kind: TraceEventKind) {
        if let Some(log) = self.tracer() {
            let (id, level, pf) = obs::current_proc();
            log.emit(id, level, &pf, kind);
        }
    }

    /// Installs (or clears, with `None`) the planner-statistics sink that
    /// execution feeds operator cardinalities, observed call latencies and
    /// empty-parameter observations into. [`crate::Wsmed`] installs its
    /// mediator-lifetime [`crate::costs::PlannerStats`] here when the
    /// planner policy is cost-based.
    pub fn install_planner_obs(&self, stats: Option<Arc<crate::costs::PlannerStats>>) {
        self.obs_on.store(stats.is_some(), Ordering::Relaxed);
        *self.planner_obs.write() = stats;
    }

    /// The installed planner-statistics sink — `None` (after one atomic
    /// load) when planner observation is off.
    pub(crate) fn planner_obs(&self) -> Option<Arc<crate::costs::PlannerStats>> {
        if !self.obs_on.load(Ordering::Relaxed) {
            return None;
        }
        self.planner_obs.read().clone()
    }

    /// Counts parameter tuples dropped parent-side by semi-join pruning.
    pub(crate) fn note_pruned_params(&self, n: u64) {
        self.pruned_params.fetch_add(n, Ordering::Relaxed);
    }

    /// Arms the failure-injection knob: after `n` end-of-call messages at
    /// the coordinator's parallel operator, one busy child is abruptly
    /// killed and its in-flight parameters requeued. Test-only plumbing
    /// for the mid-stream child-drop regression tests.
    pub fn arm_child_failure_after_eocs(&self, n: u64) {
        self.fail_child_after_eocs.store(n, Ordering::Relaxed);
    }

    /// Decrements the armed failure counter; returns `true` exactly once,
    /// when the countdown hits zero.
    pub(crate) fn take_child_failure_trigger(&self) -> bool {
        loop {
            let n = self.fail_child_after_eocs.load(Ordering::Relaxed);
            if n == 0 {
                return false;
            }
            if self
                .fail_child_after_eocs
                .compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return n == 1;
            }
        }
    }

    /// Calls a web service operation, retrying transient faults per the
    /// configured [`RetryPolicy`] and consulting the call cache.
    ///
    /// Concurrent identical calls deduplicate through the cache's
    /// single-flight latch: one query process issues the call, the others
    /// block until it completes and share its value. A failed call
    /// releases the waiters (each retries on its own) and caches nothing.
    pub(crate) fn call_with_retry(&self, owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
        // One lock acquisition to fetch the handle; lookups then go
        // through the cache's own shard locks.
        let Some(cache) = self.call_cache() else {
            return self.call_uncached(owf, args);
        };
        // Cache keys serialize the arguments through the wire format so
        // value equality is structural.
        let key = CacheKey::for_call(&owf.name, args);
        loop {
            match cache.lookup_call_for(&key, Some(&self.cache_scope)) {
                CallLookup::Hit { value, waited } => {
                    if self.tracing() {
                        self.trace_here(TraceEventKind::CacheHit {
                            op: owf.name.clone(),
                            waited,
                        });
                    }
                    return Ok(value);
                }
                CallLookup::Miss(flight) => {
                    if self.tracing() {
                        self.trace_here(TraceEventKind::CacheMiss {
                            op: owf.name.clone(),
                        });
                    }
                    let result = self.call_uncached(owf, args);
                    if let Ok(value) = &result {
                        flight.complete(value);
                    } // dropping the flight on Err releases any waiters
                    return result;
                }
                // The in-flight leader failed; take the lead ourselves.
                CallLookup::Retry => {
                    if self.tracing() {
                        self.trace_here(TraceEventKind::CacheRetry {
                            op: owf.name.clone(),
                        });
                    }
                    continue;
                }
            }
        }
    }

    /// One uncached resilient call: breaker admission, bounded attempts
    /// with backoff, per-attempt deadline, optional hedging. With the
    /// default (plain, single-attempt) policy this is exactly one
    /// un-decorated transport call — the paper-reproduction fast path.
    fn call_uncached(&self, owf: &OwfDef, args: &[Value]) -> CoreResult<Value> {
        // Admission first: a shed call must not consume breaker budget or
        // reach the wire. The token spans every attempt (and hedge) of
        // this one logical call.
        let gate = self.admission.read().clone();
        let _token = match &gate {
            Some(gate) => match gate.begin_call(&owf.operation) {
                Ok(token) => Some(token),
                Err(e) => {
                    self.res_stats.note_admission_rejection();
                    if self.tracing() {
                        self.trace_here(TraceEventKind::AdmissionReject {
                            tenant: gate.tenant().to_owned(),
                            op: owf.operation.clone(),
                        });
                    }
                    return Err(e);
                }
            },
            None => None,
        };
        let policy = self.resilience_policy();
        // Resolve the routable replica view when a router is installed.
        // Resolution advances the topology scenario, so membership events
        // (joins, leaves, autoscale activations) surface here — once per
        // logical call, before any attempt.
        let routing: Option<(Arc<Router>, GroupView)> = match self.router() {
            Some(router) => self.transport.group_view(owf).map(|view| (router, view)),
            None => None,
        };
        if let Some((_, view)) = &routing {
            for change in &view.changes {
                self.router_stats.note_membership();
                if self.tracing() {
                    self.trace_here(TraceEventKind::Membership {
                        group: change.group.clone(),
                        replica: change.replica.clone(),
                        joined: change.joined,
                    });
                }
            }
        }
        if routing.is_none() && policy.is_plain() && policy.max_attempts <= 1 {
            return self.transport_call(owf, args, None);
        }
        let provider = self.transport.provider_name(owf);
        let breakers = self.breakers();
        let mut attempt: usize = 1;
        // Replicas that already failed an attempt of this logical call;
        // routing avoids them while fresh alternatives remain.
        let mut failed_replicas: Vec<String> = Vec::new();
        loop {
            // Pick this attempt's target. Routed: walk the router's choices
            // until one passes breaker admission — a rejected replica is a
            // failover, not a terminal error, and only when *every* routable
            // replica rejects is the group circuit-open. Direct: the single
            // provider's breaker decides alone, exactly as before.
            let route: Option<String> = match &routing {
                Some((router, view)) => {
                    let mut rejected: Vec<String> = Vec::new();
                    let chosen = loop {
                        let exclude: Vec<&str> = failed_replicas
                            .iter()
                            .chain(rejected.iter())
                            .map(String::as_str)
                            .collect();
                        let pick = router.select(view, &exclude).or_else(|| {
                            // Every fresh replica is spoken for: forgive
                            // earlier-attempt failures, but never a replica
                            // whose breaker rejected this very attempt.
                            let rejected_only: Vec<&str> =
                                rejected.iter().map(String::as_str).collect();
                            router.select(view, &rejected_only)
                        });
                        let Some(replica) = pick else { break None };
                        if let Some(bp) = &policy.breaker {
                            let admission =
                                breakers.admit(&replica, bp, self.transport.model_now());
                            if admission.went_half_open {
                                self.res_stats.note_breaker_half_open();
                                if self.tracing() {
                                    self.trace_here(TraceEventKind::BreakerHalfOpen {
                                        provider: replica.clone(),
                                    });
                                }
                            }
                            if !admission.allowed {
                                self.res_stats.note_breaker_rejection(&provider, &replica);
                                self.router_stats.note_failover();
                                if self.tracing() {
                                    self.trace_here(TraceEventKind::BreakerReject {
                                        provider: replica.clone(),
                                        op: owf.operation.clone(),
                                    });
                                    self.trace_here(TraceEventKind::ReplicaSkipped {
                                        group: provider.clone(),
                                        replica: replica.clone(),
                                        reason: "breaker_open".to_owned(),
                                    });
                                }
                                rejected.push(replica);
                                continue;
                            }
                        }
                        break Some(replica);
                    };
                    let Some(replica) = chosen else {
                        // Every routable replica is breaker-rejected (or
                        // the group has no active replica left).
                        return Err(CoreError::CircuitOpen {
                            provider,
                            operation: owf.operation.clone(),
                        });
                    };
                    self.router_stats.note_decision(&provider, &replica);
                    if self.tracing() {
                        self.trace_here(TraceEventKind::RouteDecision {
                            group: provider.clone(),
                            replica: replica.clone(),
                            alternatives: view.replicas.len() as u64,
                        });
                    }
                    Some(replica)
                }
                None => {
                    if let Some(bp) = &policy.breaker {
                        let admission = breakers.admit(&provider, bp, self.transport.model_now());
                        if admission.went_half_open {
                            self.res_stats.note_breaker_half_open();
                            if self.tracing() {
                                self.trace_here(TraceEventKind::BreakerHalfOpen {
                                    provider: provider.clone(),
                                });
                            }
                        }
                        if !admission.allowed {
                            self.res_stats.note_breaker_rejection(&provider, &provider);
                            if self.tracing() {
                                self.trace_here(TraceEventKind::BreakerReject {
                                    provider: provider.clone(),
                                    op: owf.operation.clone(),
                                });
                            }
                            // Terminal for this call: retrying against an open
                            // breaker would only burn the backoff budget.
                            return Err(CoreError::CircuitOpen {
                                provider,
                                operation: owf.operation.clone(),
                            });
                        }
                    }
                    None
                }
            };
            // The breaker (and per-replica counter) key for this attempt:
            // the replica actually called, or the lone provider itself.
            let breaker_key = route.clone().unwrap_or_else(|| provider.clone());
            // Pre-select the hedge's alternate replica (never the primary)
            // so a hedged backup lands on different hardware when any
            // exists. Selected up front — the seq bump is deterministic
            // whether or not the hedge ends up launching.
            let hedge_alt: Option<String> = match (&routing, &route) {
                (Some((router, view)), Some(primary)) if policy.hedge.is_some() => {
                    router.select(view, &[primary.as_str()])
                }
                _ => None,
            };
            match self.call_attempt(owf, args, &policy, route.as_deref(), hedge_alt.as_deref()) {
                Ok(value) => {
                    if policy.breaker.is_some()
                        && breakers.on_success(&breaker_key) == Some(Transition::Closed)
                    {
                        self.res_stats.note_breaker_close();
                        if self.tracing() {
                            self.trace_here(TraceEventKind::BreakerClose {
                                provider: breaker_key.clone(),
                            });
                        }
                    }
                    return Ok(value);
                }
                Err(e) if is_transient(&e) => {
                    if matches!(e, CoreError::DeadlineExceeded { .. }) {
                        self.res_stats.note_deadline_exceeded();
                    }
                    if let Some(bp) = &policy.breaker {
                        if breakers.on_failure(&breaker_key, bp, self.transport.model_now())
                            == Some(Transition::Opened)
                        {
                            self.res_stats.note_breaker_open(&provider, &breaker_key);
                            if self.tracing() {
                                self.trace_here(TraceEventKind::BreakerOpen {
                                    provider: breaker_key.clone(),
                                });
                            }
                        }
                    }
                    if let Some(replica) = &route {
                        if !failed_replicas.contains(replica) {
                            failed_replicas.push(replica.clone());
                        }
                    }
                    if attempt >= policy.max_attempts {
                        return Err(e);
                    }
                    // Jitter comes from a stream keyed by the arguments
                    // and attempt number — seeded model randomness, never
                    // wall time, so identically-seeded runs back off
                    // identically.
                    let roll = if policy.backoff_jitter_frac > 0.0 {
                        wsmed_netsim::DetRng::keyed(
                            self.sim.seed,
                            &format!("backoff/{}", owf.name),
                            fnv1a(&crate::wire::encode_value_slice(args)) ^ attempt as u64,
                        )
                        .next_f64()
                    } else {
                        0.5
                    };
                    self.sim.sleep_model(policy.backoff_for(attempt, roll));
                    attempt += 1;
                    self.res_stats.note_retry(&provider, &breaker_key);
                    if self.tracing() {
                        self.trace_here(TraceEventKind::RetryAttempt {
                            op: owf.name.clone(),
                            attempt: attempt as u32,
                        });
                    }
                }
                other => return other,
            }
        }
    }

    /// One attempt of a resilient call: the deadline-bounded transport
    /// call, plus the hedged backup when configured. The hedge sleeps the
    /// configured model-time delay, then — if the primary is still in
    /// flight — issues the same call and the first success wins. The
    /// loser's value is dropped here, below the caching layer, so a
    /// hedge can never insert a value the winner did not produce.
    /// When the router picked a `replica`, both the primary and the hedge
    /// pin their transport calls: the hedge to `hedge_replica` (a
    /// different replica, when the group has one) so the backup lands on
    /// different hardware than the call it is hedging against.
    fn call_attempt(
        &self,
        owf: &OwfDef,
        args: &[Value],
        policy: &ResiliencePolicy,
        replica: Option<&str>,
        hedge_replica: Option<&str>,
    ) -> CoreResult<Value> {
        let deadline = policy.deadline_model_secs;
        let Some(hedge) = policy.hedge else {
            return self.transport_call_on(owf, args, deadline, replica);
        };
        let settled = AtomicBool::new(false);
        let binding = obs::current_proc();
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            {
                let settled = &settled;
                let binding = &binding;
                scope.spawn(move || {
                    self.sim.sleep_model(hedge.delay_model_secs);
                    if settled.load(Ordering::Acquire) {
                        // Primary already finished; no backup call.
                        let _ = tx.send(None);
                        return;
                    }
                    // Attribute the hedge's trace events (and its WsCall)
                    // to the same process-tree node as the primary.
                    obs::set_current_proc(binding.0, binding.1, Arc::clone(&binding.2));
                    self.res_stats.note_hedge_launched();
                    if hedge_replica.is_some() {
                        self.router_stats.note_hedge_reroute();
                    }
                    if self.tracing() {
                        self.trace_here(TraceEventKind::HedgeLaunch {
                            op: owf.operation.clone(),
                        });
                    }
                    let _ = tx.send(Some(self.transport_call_on(
                        owf,
                        args,
                        deadline,
                        hedge_replica.or(replica),
                    )));
                });
            }
            let primary = self.transport_call_on(owf, args, deadline, replica);
            settled.store(true, Ordering::Release);
            if primary.is_ok() {
                // The hedge either never launches (it sees `settled`) or
                // loses; either way its value is discarded un-cached.
                return primary;
            }
            // Primary failed: wait for the hedge's verdict. The hedge
            // call is bounded by the same deadline, so this cannot wait
            // longer than one call.
            match rx.recv() {
                Ok(Some(Ok(value))) => {
                    self.res_stats.note_hedge_win();
                    if self.tracing() {
                        self.trace_here(TraceEventKind::HedgeWin {
                            op: owf.operation.clone(),
                        });
                    }
                    Ok(value)
                }
                // Hedge skipped, failed too, or died: report the
                // primary's error.
                _ => primary,
            }
        })
    }

    pub(crate) fn next_process_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records bytes shipped between query processes (plan functions,
    /// parameter tuples, result tuples).
    pub(crate) fn record_shipped(&self, bytes: usize) {
        self.shipped_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Called by the coordinator's parallel operator when the first result
    /// tuple of the run arrives (streaming latency, §III.A).
    pub(crate) fn record_first_result(&self) {
        if self.first_result_nanos.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Some(start) = *self.run_started.lock() {
            let nanos = start.elapsed().as_nanos() as u64;
            let _ = self.first_result_nanos.compare_exchange(
                0,
                nanos.max(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Executes a query plan as the coordinator process `q0` and collects
    /// the results plus an execution report.
    pub fn run_plan(self: &Arc<Self>, plan: &QueryPlan) -> CoreResult<ExecutionReport> {
        // Fresh tree per run so reports describe exactly this execution.
        let tree = TreeRegistry::new();
        *self.tree.write() = Arc::clone(&tree);
        tree.register(0, None, 0, "coordinator");
        // Shared infrastructure joins this run's busy period: counters
        // (and per-run entries / breaker states) reset only on the
        // idle→busy edge, so overlapping queries share live state while a
        // sequential caller still sees fresh counters every run. Each
        // `begin_run` is paired with an `end_run` below.
        let cache = self.call_cache();
        if let Some(cache) = &cache {
            cache.begin_run();
        }
        let pool = self.process_pool();
        if let Some(pool) = &pool {
            pool.begin_run();
        }
        let breakers = self.breakers();
        breakers.begin_run();
        // Per-query state is unconditionally fresh.
        self.res_stats.reset();
        self.router_stats.reset();
        self.cache_scope
            .reset(self.query_id.load(Ordering::Relaxed));
        self.pool_scope.reset();
        self.ws_calls.store(0, Ordering::Relaxed);
        self.ws_bytes.store(0, Ordering::Relaxed);
        self.pruned_params.store(0, Ordering::Relaxed);

        let shipped_before = self.shipped_bytes.load(Ordering::Relaxed);

        // Install this run's trace log (or clear a stale one) before any
        // process can emit; the log's epoch doubles as the run epoch for
        // model timestamps. WS-call events are emitted by this context's
        // own transport chokepoint, so the transport needs no handle.
        let policy = *self.trace_policy.read();
        let trace_log = policy
            .enabled
            .then(|| Arc::new(TraceLog::new(policy, self.sim.time_scale)));
        *self.trace.write() = trace_log.clone();
        self.trace_on.store(trace_log.is_some(), Ordering::Relaxed);
        obs::set_current_proc(0, 0, Arc::from(""));

        let start = Instant::now();
        self.first_result_nanos.store(0, Ordering::Relaxed);
        *self.run_started.lock() = Some(start);

        let env = ProcEnv { id: 0, level: 0 };
        self.trace_here(TraceEventKind::RunStart);
        let (result, snapshot) = match compile(self, &env, &plan.root) {
            Ok(mut root) => {
                let result = eval(&mut root, self, &Tuple::empty());
                let snapshot = tree.snapshot(); // before teardown: the final shape
                self.trace_here(TraceEventKind::RunEnd {
                    ok: result.is_ok(),
                    rows: result.as_ref().map_or(0, |r| r.len() as u64),
                });
                if result.is_ok() && pool.is_some() {
                    // Park idle children warm instead of joining them;
                    // whatever cannot be parked (busy, failed, over
                    // bounds) is torn down by the drop below.
                    park_tree(&mut root, self);
                }
                drop(root); // tears down whatever was not parked
                (result, snapshot)
            }
            Err(e) => {
                self.trace_here(TraceEventKind::RunEnd { ok: false, rows: 0 });
                (Err(e), tree.snapshot())
            }
        };
        // Leave the shared infrastructure's busy period (mirror of the
        // begin_run calls above), on success and failure alike.
        if let Some(cache) = &cache {
            cache.end_run();
        }
        if let Some(pool) = &pool {
            pool.end_run();
        }
        breakers.end_run();

        let wall = start.elapsed();
        let rows = result?;

        let model_seconds = if self.sim.time_scale > 0.0 {
            Some(wall.as_secs_f64() / self.sim.time_scale)
        } else {
            None
        };
        Ok(ExecutionReport {
            rows,
            column_names: plan.column_names.clone(),
            wall,
            model_seconds,
            ws_calls: self.ws_calls.load(Ordering::Relaxed),
            ws_bytes: self.ws_bytes.load(Ordering::Relaxed),
            shipped_bytes: self.shipped_bytes.load(Ordering::Relaxed) - shipped_before,
            messages: snapshot.total_messages(),
            cache: cache.map_or_else(CacheStats::default, |c| {
                self.cache_scope.snapshot(c.stats().entries)
            }),
            pool: pool.map_or_else(PoolStats::default, |_| self.pool_scope.snapshot()),
            resilience: self.res_stats.snapshot(),
            router: self.router_stats.snapshot(),
            pruned_params: self.pruned_params.load(Ordering::Relaxed),
            first_row_wall: match self.first_result_nanos.load(Ordering::Relaxed) {
                0 => None,
                nanos => Some(std::time::Duration::from_nanos(nanos)),
            },
            tree: snapshot,
            trace: trace_log,
        })
    }
}

/// Transient errors the retry loop may re-attempt: injected service
/// faults and deadline timeouts. Bad requests and unknown operations are
/// deterministic failures retrying cannot fix.
fn is_transient(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::Net(wsmed_netsim::NetError::ServiceFault { .. })
            | CoreError::Net(wsmed_netsim::NetError::Timeout { .. })
            | CoreError::DeadlineExceeded { .. }
    )
}

/// Errors that drop a parameter tuple under [`FailureMode::Partial`]
/// instead of aborting the query: a transient failure that exhausted its
/// retries, a breaker rejection, or an admission shed.
pub(crate) fn is_skippable(e: &CoreError) -> bool {
    is_transient(e)
        || matches!(
            e,
            CoreError::CircuitOpen { .. } | CoreError::Admission { .. }
        )
}

/// FNV-1a over a byte slice (backoff-jitter stream key).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("owfs", &self.owfs.names())
            .field("time_scale", &self.sim.time_scale)
            .finish()
    }
}

/// Walks a compiled tree parking every parallel operator's idle children
/// into the warm process pool (end of a successful run).
fn park_tree(node: &mut ExecNode, ctx: &Arc<ExecContext>) {
    match node {
        ExecNode::Unit | ExecNode::Param => {}
        ExecNode::ApplyOwf { input, .. }
        | ExecNode::ApplyFunction { input, .. }
        | ExecNode::Extend { input, .. }
        | ExecNode::Project { input, .. }
        | ExecNode::Sort { input, .. }
        | ExecNode::Distinct { input }
        | ExecNode::Limit { input, .. }
        | ExecNode::Count { input }
        | ExecNode::GroupBy { input, .. } => park_tree(input, ctx),
        ExecNode::Parallel { op, input } => {
            op.park_children(ctx);
            park_tree(input, ctx);
        }
    }
}

/// Walks a compiled subtree clearing per-run state (park-time `Reset`
/// inside a warm child: adaptation counters here, forwarded `Reset`
/// messages to the subtree's own children).
pub(crate) fn reset_subtree(node: &mut ExecNode) {
    match node {
        ExecNode::Unit | ExecNode::Param => {}
        ExecNode::ApplyOwf { input, .. }
        | ExecNode::ApplyFunction { input, .. }
        | ExecNode::Extend { input, .. }
        | ExecNode::Project { input, .. }
        | ExecNode::Sort { input, .. }
        | ExecNode::Distinct { input }
        | ExecNode::Limit { input, .. }
        | ExecNode::Count { input }
        | ExecNode::GroupBy { input, .. } => reset_subtree(input),
        ExecNode::Parallel { op, input } => {
            op.reset_children();
            reset_subtree(input);
        }
    }
}

/// Walks a compiled subtree re-registering every live process of a warm
/// tree into the new run's tree registry (attach-time walk inside a warm
/// child, forwarded recursively). `env` is the hosting process's identity
/// in the *new* run — a warm tree may be re-homed into a different
/// execution context with freshly allocated process ids.
pub(crate) fn reattach_subtree(node: &mut ExecNode, ctx: &Arc<ExecContext>, env: &ProcEnv) {
    match node {
        ExecNode::Unit | ExecNode::Param => {}
        ExecNode::ApplyOwf { input, .. }
        | ExecNode::ApplyFunction { input, .. }
        | ExecNode::Extend { input, .. }
        | ExecNode::Project { input, .. }
        | ExecNode::Sort { input, .. }
        | ExecNode::Distinct { input }
        | ExecNode::Limit { input, .. }
        | ExecNode::Count { input }
        | ExecNode::GroupBy { input, .. } => reattach_subtree(input, ctx, env),
        ExecNode::Parallel { op, input } => {
            op.reattach_children(ctx, env);
            reattach_subtree(input, ctx, env);
        }
    }
}

/// A compiled, stateful operator tree. `FF_APPLYP`/`AFF_APPLYP` nodes own
/// live child processes that persist across calls of the enclosing plan
/// function — the process tree is built once, then parameter tuples stream
/// through it.
pub(crate) enum ExecNode {
    Unit,
    Param,
    ApplyOwf {
        owf: OwfDef,
        args: Vec<ArgExpr>,
        input: Box<ExecNode>,
    },
    ApplyFunction {
        function: String,
        args: Vec<ArgExpr>,
        input: Box<ExecNode>,
    },
    Extend {
        exprs: Vec<ArgExpr>,
        input: Box<ExecNode>,
    },
    Project {
        columns: Vec<usize>,
        input: Box<ExecNode>,
    },
    Sort {
        keys: Vec<(usize, bool)>,
        input: Box<ExecNode>,
    },
    Distinct {
        input: Box<ExecNode>,
    },
    Limit {
        count: usize,
        input: Box<ExecNode>,
    },
    Count {
        input: Box<ExecNode>,
    },
    GroupBy {
        key_count: usize,
        aggs: Vec<(wsmed_sql::AggFunc, Option<usize>)>,
        input: Box<ExecNode>,
    },
    Parallel {
        op: ParallelApply,
        input: Box<ExecNode>,
    },
}

/// Compiles a plan into an executable node tree, spawning the child
/// processes of any parallel operators (plan functions are shipped at
/// compile time, before execution — §III).
pub(crate) fn compile(ctx: &Arc<ExecContext>, env: &ProcEnv, op: &PlanOp) -> CoreResult<ExecNode> {
    Ok(match op {
        PlanOp::Unit => ExecNode::Unit,
        PlanOp::Param { .. } => ExecNode::Param,
        PlanOp::ApplyOwf {
            owf,
            args,
            output_arity,
            input,
        } => {
            let def = ctx.owfs.get(owf)?.clone();
            if def.columns.len() != *output_arity {
                return Err(CoreError::InvalidPlan(format!(
                    "OWF {owf} output arity mismatch: plan says {output_arity}, OWF has {}",
                    def.columns.len()
                )));
            }
            ExecNode::ApplyOwf {
                owf: def,
                args: args.clone(),
                input: Box::new(compile(ctx, env, input)?),
            }
        }
        PlanOp::ApplyFunction {
            function,
            args,
            output_arity,
            input,
        } => {
            let sig = ctx.functions.signature(function)?;
            if sig.outputs.len() != *output_arity {
                return Err(CoreError::InvalidPlan(format!(
                    "function {function} output arity mismatch: plan says {output_arity}, \
                     signature has {}",
                    sig.outputs.len()
                )));
            }
            ExecNode::ApplyFunction {
                function: function.clone(),
                args: args.clone(),
                input: Box::new(compile(ctx, env, input)?),
            }
        }
        PlanOp::Extend { exprs, input } => ExecNode::Extend {
            exprs: exprs.clone(),
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::Project { columns, input } => ExecNode::Project {
            columns: columns.clone(),
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::Sort { keys, input } => ExecNode::Sort {
            keys: keys.clone(),
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::Distinct { input } => ExecNode::Distinct {
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::Limit { count, input } => ExecNode::Limit {
            count: *count,
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::Count { input } => ExecNode::Count {
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::GroupBy {
            key_count,
            aggs,
            input,
        } => ExecNode::GroupBy {
            key_count: *key_count,
            aggs: aggs.clone(),
            input: Box::new(compile(ctx, env, input)?),
        },
        PlanOp::FfApply { pf, fanout, input } => {
            if *fanout == 0 {
                return Err(CoreError::InvalidPlan(format!(
                    "FF_APPLYP of {} has fanout 0 (merge the section instead)",
                    pf.name
                )));
            }
            let op = ParallelApply::fixed(ctx, env, pf, *fanout)?;
            ExecNode::Parallel {
                op,
                input: Box::new(compile(ctx, env, input)?),
            }
        }
        PlanOp::AffApply { pf, config, input } => {
            let op = ParallelApply::adaptive(ctx, env, pf, config.clone())?;
            ExecNode::Parallel {
                op,
                input: Box::new(compile(ctx, env, input)?),
            }
        }
    })
}

/// Evaluates a compiled node for one parameter tuple, producing the full
/// (materialized) result bag. Within a query process evaluation is
/// sequential; parallelism happens across processes.
pub(crate) fn eval(
    node: &mut ExecNode,
    ctx: &Arc<ExecContext>,
    param: &Tuple,
) -> CoreResult<Vec<Tuple>> {
    match node {
        ExecNode::Unit => Ok(vec![Tuple::empty()]),
        ExecNode::Param => Ok(vec![param.clone()]),
        ExecNode::ApplyOwf { owf, args, input } => {
            let rows = eval(input, ctx, param)?;
            let rows_in = rows.len() as u64;
            let partial = ctx.failure_mode() == FailureMode::Partial;
            let mut out = Vec::new();
            for row in rows {
                let values = resolve_args(args, &row);
                let response = match ctx.call_with_retry(owf, &values) {
                    Ok(value) => value,
                    Err(e) if partial && is_skippable(&e) => {
                        // Degrade instead of aborting: this input row is
                        // dropped from the result and counted.
                        ctx.note_param_skip(&owf.name);
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                // Batch-at-a-time flattening: one columnar batch per
                // response, iterated through row views. OWF output is always
                // uniform-arity, so this never hits the row fallback.
                let produced = owf.flatten_batch(&response)?;
                for i in 0..produced.len() {
                    out.push(row.concat(&produced.row(i)));
                }
            }
            if let Some(obs) = ctx.planner_obs() {
                obs.observe_op(&owf.name, rows_in, out.len() as u64);
            }
            Ok(out)
        }
        ExecNode::ApplyFunction {
            function,
            args,
            input,
        } => {
            let rows = eval(input, ctx, param)?;
            let rows_in = rows.len() as u64;
            let mut out = Vec::new();
            for row in rows {
                let values = resolve_args(args, &row);
                for produced in ctx.functions.apply(function, &values)? {
                    out.push(row.concat(&produced));
                }
            }
            if let Some(obs) = ctx.planner_obs() {
                obs.observe_op(function, rows_in, out.len() as u64);
            }
            Ok(out)
        }
        ExecNode::Extend { exprs, input } => {
            let rows = eval(input, ctx, param)?;
            Ok(rows
                .into_iter()
                .map(|row| {
                    let extra = Tuple::new(resolve_args(exprs, &row));
                    row.concat(&extra)
                })
                .collect())
        }
        ExecNode::Project { columns, input } => {
            let rows = eval(input, ctx, param)?;
            Ok(rows.into_iter().map(|row| row.project(columns)).collect())
        }
        ExecNode::Sort { keys, input } => {
            let mut rows = eval(input, ctx, param)?;
            rows.sort_by(|a, b| {
                for &(col, desc) in keys.iter() {
                    let ord = a.get(col).total_cmp(b.get(col));
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        ExecNode::Distinct { input } => {
            let mut rows = eval(input, ctx, param)?;
            rows.sort_by(|a, b| a.total_cmp(b));
            rows.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
            Ok(rows)
        }
        ExecNode::Limit { count, input } => {
            let mut rows = eval(input, ctx, param)?;
            rows.truncate(*count);
            Ok(rows)
        }
        ExecNode::Count { input } => {
            let rows = eval(input, ctx, param)?;
            Ok(vec![Tuple::new(vec![Value::Int(rows.len() as i64)])])
        }
        ExecNode::GroupBy {
            key_count,
            aggs,
            input,
        } => {
            let rows = eval(input, ctx, param)?;
            group_rows(*key_count, aggs, rows)
        }
        ExecNode::Parallel { op, input } => {
            let params = eval(input, ctx, param)?;
            op.run(ctx, params)
        }
    }
}

/// Grouped aggregation: sorts by the leading `key_count` columns, then
/// emits one `keys ⊕ aggregate values` row per group. With no keys this is
/// a global aggregate: exactly one row, even over empty input.
pub(crate) fn group_rows(
    key_count: usize,
    aggs: &[(wsmed_sql::AggFunc, Option<usize>)],
    mut rows: Vec<Tuple>,
) -> CoreResult<Vec<Tuple>> {
    let key_cmp = |a: &Tuple, b: &Tuple| {
        for col in 0..key_count {
            let ord = a.get(col).total_cmp(b.get(col));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    rows.sort_by(key_cmp);

    let mut out = Vec::new();
    let mut start = 0;
    while start < rows.len() || (key_count == 0 && out.is_empty()) {
        let end = if start >= rows.len() {
            start // empty global group
        } else {
            let mut end = start + 1;
            while end < rows.len() && key_cmp(&rows[start], &rows[end]) == std::cmp::Ordering::Equal
            {
                end += 1;
            }
            end
        };
        let group = &rows[start..end];
        let mut values: Vec<Value> = if group.is_empty() {
            Vec::new()
        } else {
            (0..key_count).map(|c| group[0].get(c).clone()).collect()
        };
        for (func, arg) in aggs {
            values.push(aggregate(*func, *arg, group)?);
        }
        out.push(Tuple::new(values));
        if end == start {
            break; // the empty global group emitted once
        }
        start = end;
    }
    Ok(out)
}

fn aggregate(func: wsmed_sql::AggFunc, arg: Option<usize>, group: &[Tuple]) -> CoreResult<Value> {
    use wsmed_sql::AggFunc;
    let column = |row: &Tuple| -> Value { arg.map(|c| row.get(c).clone()).unwrap_or(Value::Null) };
    Ok(match func {
        AggFunc::Count => Value::Int(group.len() as i64),
        AggFunc::Sum => {
            if group.iter().all(|r| matches!(column(r), Value::Int(_))) {
                Value::Int(
                    group
                        .iter()
                        .map(|r| column(r).as_int())
                        .sum::<Result<i64, _>>()?,
                )
            } else {
                let mut sum = 0.0;
                for row in group {
                    sum += column(row).as_real()?;
                }
                Value::Real(sum)
            }
        }
        AggFunc::Avg => {
            if group.is_empty() {
                Value::Null
            } else {
                let mut sum = 0.0;
                for row in group {
                    sum += column(row).as_real()?;
                }
                Value::Real(sum / group.len() as f64)
            }
        }
        AggFunc::Min => group
            .iter()
            .map(&column)
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        AggFunc::Max => group
            .iter()
            .map(&column)
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
    })
}

fn resolve_args(args: &[ArgExpr], row: &Tuple) -> Vec<Value> {
    args.iter()
        .map(|a| match a {
            ArgExpr::Col(i) => row.get(*i).clone(),
            ArgExpr::Const(v) => v.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests;
