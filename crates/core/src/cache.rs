//! The web-service call cache: sharded, single-flight, reusable across runs.
//!
//! Data-providing web services are side-effect-free (the paper's §I
//! premise), so a repeated call with identical arguments must return the
//! same result — the mediator can answer it from memory. Dependent joins
//! over skewed parameter streams (the Query2-style zip→place chains) re-
//! issue the same downstream call many times, both *within* a run and
//! *across* runs, and the web service call is by far the most expensive
//! "operator" in any plan, so a memoized answer is always the cheapest one.
//!
//! Three mechanisms make the cache scale with the process tree instead of
//! serializing it:
//!
//! * **Sharding** — keys hash to one of [`CachePolicy::shards`]
//!   independently locked maps, so concurrent query processes on different
//!   keys never contend on a global lock.
//! * **Single-flight deduplication** — when several query processes miss
//!   on the *same* key concurrently, exactly one issues the web service
//!   call; the rest block on a per-key in-flight latch and receive the
//!   leader's value. A failed leader releases its waiters without caching
//!   anything (each waiter then retries on its own, preserving uncached
//!   error semantics).
//! * **LRU eviction with optional model-time TTL** — each shard keeps a
//!   lazy recency queue; inserts beyond the per-shard capacity evict the
//!   least recently used entry, and entries older than
//!   [`CachePolicy::ttl_model_secs`] model seconds expire on access.
//!
//! The cache also memoizes whole **plan-function invocations** (keyed by a
//! digest of the shipped plan-function bytes plus the encoded parameter
//! tuple), which is what lets `FF_APPLYP`/`AFF_APPLYP` dispatch answer an
//! already-seen parameter parent-side instead of shipping it to a child —
//! the *dedup-aware dispatch* counted by `cache_short_circuits`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use wsmed_store::{Tuple, Value};

/// How long a single-flight waiter blocks on the in-flight latch before
/// giving up and issuing its own call. Generously above any modeled
/// latency; only reached if the leading thread died without completing.
const WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// Configuration of the [`CallCache`].
///
/// Installed on the mediator via [`crate::Wsmed::set_cache_policy`]; the
/// legacy `enable_call_cache(true)` is a thin wrapper over
/// `Some(CachePolicy::default())`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicy {
    /// Maximum cached entries (split evenly across shards, LRU beyond).
    pub capacity: usize,
    /// Model-seconds a cached entry stays fresh; `None` never expires.
    /// Expiry is measured in *model* time, so it only takes effect when
    /// the simulation runs at a non-zero time scale.
    pub ttl_model_secs: Option<f64>,
    /// Number of independently locked shards (≥ 1; default 16).
    pub shards: usize,
    /// Keep entries across runs of the same [`crate::Wsmed`]. When false
    /// the cache is cleared at the start of every run (the historical
    /// per-run memoization behaviour).
    pub cross_run: bool,
    /// Deduplicate concurrent identical calls through an in-flight latch.
    /// Disabling it turns a concurrent duplicate into a second real call
    /// (the ablation baseline).
    pub single_flight: bool,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            capacity: 100_000,
            ttl_model_secs: None,
            shards: 16,
            cross_run: false,
            single_flight: true,
        }
    }
}

impl CachePolicy {
    /// A policy that keeps entries across runs of the same mediator.
    pub fn cross_run() -> Self {
        CachePolicy {
            cross_run: true,
            ..Default::default()
        }
    }
}

/// Key of one cached web service call: the OWF name plus the arguments
/// serialized through the wire format, so value equality is structural
/// (bit-exact for reals — the same discrimination `Value::total_cmp`
/// makes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    owf: String,
    args: Bytes,
}

impl CacheKey {
    /// Builds the key for a web service call `owf(args)`.
    pub fn for_call(owf: &str, args: &[Value]) -> Self {
        CacheKey {
            owf: owf.to_owned(),
            args: crate::wire::encode_value_slice(args),
        }
    }

    /// Builds the key for a plan-function invocation: the content digest
    /// of the shipped plan function plus the already-encoded parameter
    /// tuple.
    pub(crate) fn for_rows(pf_digest: &str, param: &Bytes) -> Self {
        CacheKey {
            owf: pf_digest.to_owned(),
            args: param.clone(),
        }
    }

    /// [`CacheKey::for_rows`] for row `i` of a columnar batch: the key
    /// bytes come straight from the column slices
    /// ([`crate::wire::encode_row_tuple`]) without materializing the row
    /// as a `Tuple`, and equal the parent-side `encode_tuple` key bytes
    /// exactly — the memo-parity invariant the dedup screens rely on.
    pub(crate) fn for_batch_row(
        pf_digest: &str,
        batch: &wsmed_store::ValueBatch,
        i: usize,
    ) -> Self {
        CacheKey {
            owf: pf_digest.to_owned(),
            args: crate::wire::encode_row_tuple(batch, i),
        }
    }
}

/// Content digest of a shipped plan function, used to scope the rows memo
/// so equally named plan functions of *different* queries never collide.
pub(crate) fn pf_digest(pf_name: &str, pf_bytes: &[u8]) -> String {
    // FNV-1a, 64-bit: tiny, deterministic, good enough to content-address
    // the handful of plan functions alive in one mediator.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in pf_bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("pf:{pf_name}:{}:{hash:016x}", pf_bytes.len())
}

/// Per-run cache counters, surfaced in
/// [`crate::ExecutionReport::cache`]. All counters reset at the start of
/// each run (entries may persist when the policy is cross-run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Web service calls answered from a completed cache entry.
    pub hits: u64,
    /// Web service calls that went to the transport (cache enabled).
    pub misses: u64,
    /// Calls that blocked on another process's identical in-flight call
    /// and received its value instead of issuing a duplicate.
    pub dedup_waits: u64,
    /// Entries removed by LRU pressure or TTL expiry.
    pub evictions: u64,
    /// Parameter tuples answered parent-side by dedup-aware dispatch
    /// instead of being shipped to a child query process.
    pub short_circuits: u64,
    /// Hits (including dedup waits and short circuits) whose entry was
    /// produced by a *different* query sharing this cache — the
    /// cross-query single-flight payoff under a concurrent mediator.
    pub cross_query_hits: u64,
    /// Entries resident when the snapshot was taken (calls + memoized
    /// plan-function invocations).
    pub entries: u64,
}

impl CacheStats {
    /// Cache lookups that did not reach the transport, as a fraction of
    /// all call lookups (`None` when no lookup happened).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses + self.dedup_waits;
        (total > 0).then(|| (self.hits + self.dedup_waits) as f64 / total as f64)
    }
}

/// Per-query attribution counters for one shared [`CallCache`]. Every
/// execution context owns one; scoped cache operations bump both the
/// cache-global counters and the caller's scope, so a query's
/// [`crate::ExecutionReport::cache`] describes *its* traffic even when
/// many queries share the cache concurrently.
#[derive(Debug, Default)]
pub(crate) struct CacheScope {
    query: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    dedup_waits: AtomicU64,
    evictions: AtomicU64,
    short_circuits: AtomicU64,
    cross_query_hits: AtomicU64,
}

impl CacheScope {
    /// Rearms the scope for a new run attributed to query `query`.
    pub(crate) fn reset(&self, query: u64) {
        self.query.store(query, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.dedup_waits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.short_circuits.store(0, Ordering::Relaxed);
        self.cross_query_hits.store(0, Ordering::Relaxed);
    }

    /// The query id entries produced through this scope are tagged with.
    pub(crate) fn query(&self) -> u64 {
        self.query.load(Ordering::Relaxed)
    }

    fn note_hit(&self, owner: u64) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if owner != self.query() {
            self.cross_query_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// This query's slice of the shared cache activity; `entries` is the
    /// cache-global resident count at snapshot time.
    pub(crate) fn snapshot(&self, entries: u64) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
            cross_query_hits: self.cross_query_hits.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// Eviction counter fan-out: every eviction is charged to the cache's
/// global counter and, when the evicting operation ran under a query's
/// scope, to that scope as well.
#[derive(Clone, Copy)]
struct EvictSink<'a> {
    global: &'a AtomicU64,
    scope: Option<&'a AtomicU64>,
}

impl EvictSink<'_> {
    fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.global.fetch_add(n, Ordering::Relaxed);
        if let Some(scope) = self.scope {
            scope.fetch_add(n, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------- latch --

/// The per-key in-flight latch single-flight waiters block on.
struct Latch<V> {
    state: StdMutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Pending,
    Done(V),
    /// The leader's call failed; waiters must retry themselves.
    Aborted,
}

impl<V: Clone> Latch<V> {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            state: StdMutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    fn settle(&self, outcome: Option<V>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match outcome {
            Some(v) => FlightState::Done(v),
            None => FlightState::Aborted,
        };
        self.cv.notify_all();
    }

    /// Blocks until the leader settles; `None` means aborted (or the
    /// leader vanished past the timeout) — the waiter retries itself.
    fn wait(&self) -> Option<V> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + WAIT_TIMEOUT;
        loop {
            match &*state {
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Aborted => return None,
                FlightState::Pending => {}
            }
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }
}

// --------------------------------------------------------------- shards --

enum EntryState<V> {
    Ready {
        value: V,
        stamp: u64,
        inserted: Instant,
        /// Query id of the run that produced the value (0 for unscoped
        /// callers) — the provenance behind `cross_query_hits`.
        owner: u64,
    },
    InFlight(Arc<Latch<V>>, u64),
}

struct Shard<V> {
    map: HashMap<CacheKey, EntryState<V>>,
    /// Lazy LRU order: `(key, stamp)` pairs; an entry is current only if
    /// its stamp matches the map's. Stale pairs are skipped on eviction
    /// and compacted away when the queue outgrows the shard.
    queue: VecDeque<(CacheKey, u64)>,
    tick: u64,
    ready: usize,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
            ready: 0,
        }
    }
}

impl<V> Shard<V> {
    fn touch(&mut self, key: &CacheKey) -> u64 {
        self.tick += 1;
        self.queue.push_back((key.clone(), self.tick));
        self.tick
    }

    /// Evicts least-recently-used ready entries until `ready <= cap`.
    fn evict_to(&mut self, cap: usize, evictions: EvictSink<'_>) {
        while self.ready > cap {
            let Some((key, stamp)) = self.queue.pop_front() else {
                break; // only in-flight entries left
            };
            let current = matches!(
                self.map.get(&key),
                Some(EntryState::Ready { stamp: s, .. }) if *s == stamp
            );
            if current {
                self.map.remove(&key);
                self.ready -= 1;
                evictions.add(1);
            }
        }
        // Bound the lazy queue: rebuild it from live stamps when stale
        // pairs dominate.
        if self.queue.len() > 4 * cap.max(16) {
            let map = &self.map;
            self.queue.retain(
                |(key, stamp)| matches!(map.get(key), Some(EntryState::Ready { stamp: s, .. }) if s == stamp),
            );
        }
    }

    fn remove_ready(&mut self, key: &CacheKey) {
        if matches!(self.map.remove(key), Some(EntryState::Ready { .. })) {
            self.ready -= 1;
        }
    }
}

/// One sharded concurrent map with LRU + TTL + optional single-flight.
struct Sharded<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
}

/// Outcome of an internal lookup-or-begin. `Ready` and `Wait` carry the
/// query id that owns (or is producing) the entry.
enum Probe<V> {
    Ready(V, u64),
    Wait(Arc<Latch<V>>, u64),
    Begin,
}

impl<V: Clone> Sharded<V> {
    fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        Sharded {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn expired(ttl: Option<f64>, time_scale: f64, inserted: Instant) -> bool {
        match ttl {
            Some(ttl) if time_scale > 0.0 => inserted.elapsed().as_secs_f64() / time_scale >= ttl,
            _ => false,
        }
    }

    /// Non-blocking read; bumps recency, expires stale entries. Returns
    /// the value and the owning query's id.
    fn get(
        &self,
        key: &CacheKey,
        ttl: Option<f64>,
        time_scale: f64,
        evictions: EvictSink<'_>,
    ) -> Option<(V, u64)> {
        let mut shard = self.shard(key).lock();
        let inserted = match shard.map.get(key) {
            Some(EntryState::Ready { inserted, .. }) => *inserted,
            _ => return None,
        };
        if Self::expired(ttl, time_scale, inserted) {
            shard.remove_ready(key);
            evictions.add(1);
            return None;
        }
        let stamp = shard.touch(key);
        let Some(EntryState::Ready {
            value,
            stamp: s,
            owner,
            ..
        }) = shard.map.get_mut(key)
        else {
            unreachable!("entry vanished under the shard lock");
        };
        *s = stamp;
        Some((value.clone(), *owner))
    }

    /// Plain insert (used by the rows memo and by completing flights).
    fn insert(&self, key: &CacheKey, value: V, owner: u64, evictions: EvictSink<'_>) {
        let mut shard = self.shard(key).lock();
        let stamp = shard.touch(key);
        let was_ready = matches!(shard.map.get(key), Some(EntryState::Ready { .. }));
        shard.map.insert(
            key.clone(),
            EntryState::Ready {
                value,
                stamp,
                inserted: Instant::now(),
                owner,
            },
        );
        if !was_ready {
            shard.ready += 1;
        }
        shard.evict_to(self.per_shard_cap, evictions);
    }

    /// Read or register an in-flight entry under one lock acquisition.
    /// `owner` tags the in-flight entry with the would-be leader's query.
    fn probe(
        &self,
        key: &CacheKey,
        single_flight: bool,
        ttl: Option<f64>,
        time_scale: f64,
        owner: u64,
        evictions: EvictSink<'_>,
    ) -> Probe<V> {
        if !single_flight {
            return match self.get(key, ttl, time_scale, evictions) {
                Some((v, entry_owner)) => Probe::Ready(v, entry_owner),
                None => Probe::Begin,
            };
        }
        let mut shard = self.shard(key).lock();
        enum Seen<V> {
            Fresh,
            Expired,
            Wait(Arc<Latch<V>>, u64),
            Cold,
        }
        let seen = match shard.map.get(key) {
            Some(EntryState::Ready { inserted, .. }) => {
                if Self::expired(ttl, time_scale, *inserted) {
                    Seen::Expired
                } else {
                    Seen::Fresh
                }
            }
            Some(EntryState::InFlight(latch, leader)) => Seen::Wait(Arc::clone(latch), *leader),
            None => Seen::Cold,
        };
        match seen {
            Seen::Fresh => {
                let stamp = shard.touch(key);
                let Some(EntryState::Ready {
                    value,
                    stamp: s,
                    owner: entry_owner,
                    ..
                }) = shard.map.get_mut(key)
                else {
                    unreachable!("entry vanished under the shard lock");
                };
                *s = stamp;
                return Probe::Ready(value.clone(), *entry_owner);
            }
            Seen::Wait(latch, leader) => return Probe::Wait(latch, leader),
            Seen::Expired => {
                shard.remove_ready(key);
                evictions.add(1);
            }
            Seen::Cold => {}
        }
        shard
            .map
            .insert(key.clone(), EntryState::InFlight(Latch::new(), owner));
        Probe::Begin
    }

    /// Settles an in-flight entry: `Some` caches the value (owned by
    /// `owner`) and wakes the waiters with it; `None` removes the entry
    /// and wakes them empty-handed (error results are never cached).
    fn finish(&self, key: &CacheKey, outcome: Option<V>, owner: u64, evictions: EvictSink<'_>) {
        let latch = {
            let mut shard = self.shard(key).lock();
            let latch = match shard.map.get(key) {
                Some(EntryState::InFlight(latch, _)) => Some(Arc::clone(latch)),
                _ => None,
            };
            match &outcome {
                Some(value) => {
                    let stamp = shard.touch(key);
                    let was_ready = matches!(shard.map.get(key), Some(EntryState::Ready { .. }));
                    shard.map.insert(
                        key.clone(),
                        EntryState::Ready {
                            value: value.clone(),
                            stamp,
                            inserted: Instant::now(),
                            owner,
                        },
                    );
                    if !was_ready {
                        shard.ready += 1;
                    }
                    shard.evict_to(self.per_shard_cap, evictions);
                }
                None => {
                    if latch.is_some() {
                        shard.map.remove(key);
                    }
                }
            }
            latch
        };
        if let Some(latch) = latch {
            latch.settle(outcome);
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            // In-flight latches stay registered: clearing mid-call must
            // not strand waiters. Only settled entries are dropped.
            let retained: HashMap<CacheKey, EntryState<V>> = shard
                .map
                .drain()
                .filter(|(_, e)| matches!(e, EntryState::InFlight(..)))
                .collect();
            shard.map = retained;
            shard.queue.clear();
            shard.ready = 0;
        }
    }

    fn ready_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().ready).sum()
    }
}

// ---------------------------------------------------------------- cache --

/// Outcome of [`CallCache::lookup_call`].
pub enum CallLookup<'a> {
    /// The call was answered from the cache.
    Hit {
        /// The cached response value.
        value: Value,
        /// True when this lookup blocked on another caller's in-flight
        /// call (single-flight dedup) rather than finding a stored value.
        waited: bool,
    },
    /// Cold key: the caller must issue the web service call and settle the
    /// returned flight with [`Flight::complete`] (dropping it unsettled
    /// releases any waiters empty-handed).
    Miss(Flight<'a>),
    /// An identical in-flight call failed (or its leader vanished); the
    /// caller should look up again and take the lead itself.
    Retry,
}

/// The leader's handle on an in-flight single-flight entry.
pub struct Flight<'a> {
    cache: &'a CallCache,
    key: CacheKey,
    settled: bool,
    owner: u64,
}

impl Flight<'_> {
    /// Caches `value` and hands it to every waiter.
    pub fn complete(mut self, value: &Value) {
        self.settled = true;
        self.cache.calls.finish(
            &self.key,
            Some(value.clone()),
            self.owner,
            EvictSink {
                global: &self.cache.evictions,
                scope: None,
            },
        );
    }
}

impl Drop for Flight<'_> {
    fn drop(&mut self) {
        if !self.settled {
            // Error path (or leader unwound): release waiters, cache
            // nothing.
            self.cache.calls.finish(
                &self.key,
                None,
                self.owner,
                EvictSink {
                    global: &self.cache.evictions,
                    scope: None,
                },
            );
        }
    }
}

/// The sharded single-flight call cache (see the module docs).
///
/// One instance lives per execution by default; with
/// [`CachePolicy::cross_run`] the same instance is installed into every
/// run of a [`crate::Wsmed`], so later queries reuse earlier answers.
pub struct CallCache {
    policy: CachePolicy,
    time_scale: f64,
    /// Memoized web service calls: `owf(args) → response value`.
    calls: Sharded<Value>,
    /// Memoized plan-function invocations: `digest(pf) ⊕ param → rows`.
    rows: Sharded<Arc<Vec<Tuple>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    dedup_waits: AtomicU64,
    evictions: AtomicU64,
    short_circuits: AtomicU64,
    cross_query_hits: AtomicU64,
    /// Runs currently using this cache. Counter resets and per-run
    /// entry clears happen only on the idle → busy edge, so overlapping
    /// runs share state instead of clobbering each other.
    active_runs: AtomicUsize,
}

impl CallCache {
    /// Creates a cache. `time_scale` (wall seconds per model second, as in
    /// [`wsmed_netsim::SimConfig`]) anchors the model-time TTL; at scale 0
    /// model time is unobservable and entries never expire.
    pub fn new(policy: CachePolicy, time_scale: f64) -> Self {
        CallCache {
            calls: Sharded::new(policy.shards, policy.capacity),
            rows: Sharded::new(policy.shards, policy.capacity),
            policy,
            time_scale,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
            cross_query_hits: AtomicU64::new(0),
            active_runs: AtomicUsize::new(0),
        }
    }

    /// The policy this cache was built with.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    fn sink<'a>(&'a self, scope: Option<&'a CacheScope>) -> EvictSink<'a> {
        EvictSink {
            global: &self.evictions,
            scope: scope.map(|s| &s.evictions),
        }
    }

    /// Starts a run against this cache. On the idle → busy edge (no
    /// other run active) the busy-period counters reset and entries are
    /// cleared unless the policy is cross-run; runs overlapping an
    /// already-active run join the busy period and share its state —
    /// that sharing is what cross-query single-flight rides on. Pair
    /// with [`CallCache::end_run`].
    pub fn begin_run(&self) {
        if self.active_runs.fetch_add(1, Ordering::AcqRel) > 0 {
            return;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.dedup_waits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.short_circuits.store(0, Ordering::Relaxed);
        self.cross_query_hits.store(0, Ordering::Relaxed);
        if !self.policy.cross_run {
            self.calls.clear();
            self.rows.clear();
        }
    }

    /// Marks one run as finished with this cache (the busy period ends
    /// when every overlapping run has).
    pub fn end_run(&self) {
        // Tolerate historical callers that paired begin_run with nothing.
        let _ = self
            .active_runs
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
    }

    /// Looks a call key up, blocking on an identical in-flight call when
    /// single-flight is enabled. The caller loops on [`CallLookup::Retry`]
    /// (each retry is preceded by a real failed call, so the loop is
    /// bounded by the transport's own failure behaviour).
    pub fn lookup_call(&self, key: &CacheKey) -> CallLookup<'_> {
        self.lookup_call_for(key, None)
    }

    /// [`CallCache::lookup_call`] attributed to one query's scope: the
    /// scope's counters are bumped alongside the cache-global ones, and
    /// hits on entries owned by a different query count as cross-query.
    pub(crate) fn lookup_call_for<'a>(
        &'a self,
        key: &CacheKey,
        scope: Option<&CacheScope>,
    ) -> CallLookup<'a> {
        let ttl = self.policy.ttl_model_secs;
        let query = scope.map_or(0, CacheScope::query);
        match self.calls.probe(
            key,
            self.policy.single_flight,
            ttl,
            self.time_scale,
            query,
            self.sink(scope),
        ) {
            Probe::Ready(value, owner) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.note_hit(owner);
                }
                if scope.is_some_and(|s| owner != s.query()) {
                    self.cross_query_hits.fetch_add(1, Ordering::Relaxed);
                }
                CallLookup::Hit {
                    value,
                    waited: false,
                }
            }
            Probe::Begin => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.misses.fetch_add(1, Ordering::Relaxed);
                }
                CallLookup::Miss(Flight {
                    cache: self,
                    key: key.clone(),
                    settled: false,
                    owner: query,
                })
            }
            Probe::Wait(latch, leader) => {
                self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                if let Some(scope) = scope {
                    scope.dedup_waits.fetch_add(1, Ordering::Relaxed);
                    if leader != scope.query() {
                        scope.cross_query_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if scope.is_some_and(|s| leader != s.query()) {
                    self.cross_query_hits.fetch_add(1, Ordering::Relaxed);
                }
                match latch.wait() {
                    Some(value) => CallLookup::Hit {
                        value,
                        waited: true,
                    },
                    None => CallLookup::Retry,
                }
            }
        }
    }

    /// Memoized result rows of a plan-function invocation, if present
    /// (non-blocking — dedup-aware dispatch never waits on a child).
    /// A hit on another query's memoized rows counts as cross-query on
    /// both the scope and the cache.
    pub(crate) fn peek_rows(
        &self,
        key: &CacheKey,
        scope: Option<&CacheScope>,
    ) -> Option<Arc<Vec<Tuple>>> {
        let (rows, owner) = self.rows.get(
            key,
            self.policy.ttl_model_secs,
            self.time_scale,
            self.sink(scope),
        )?;
        if let Some(scope) = scope {
            if owner != scope.query() {
                scope.cross_query_hits.fetch_add(1, Ordering::Relaxed);
                self.cross_query_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(rows)
    }

    /// Records the result rows of one plan-function invocation.
    pub(crate) fn insert_rows(
        &self,
        key: &CacheKey,
        rows: Arc<Vec<Tuple>>,
        scope: Option<&CacheScope>,
    ) {
        let owner = scope.map_or(0, CacheScope::query);
        self.rows.insert(key, rows, owner, self.sink(scope));
    }

    /// Counts parameter tuples answered parent-side by dedup-aware
    /// dispatch.
    pub(crate) fn note_short_circuits(&self, n: u64, scope: Option<&CacheScope>) {
        self.short_circuits.fetch_add(n, Ordering::Relaxed);
        if let Some(scope) = scope {
            scope.short_circuits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Entries currently resident (completed calls + memoized rows).
    pub fn ready_entries(&self) -> usize {
        self.calls.ready_entries() + self.rows.ready_entries()
    }

    /// Snapshot of the busy-period counters (since the last idle → busy
    /// edge; equals per-run counters for sequential callers).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
            cross_query_hits: self.cross_query_hits.load(Ordering::Relaxed),
            entries: self.ready_entries() as u64,
        }
    }
}

impl std::fmt::Debug for CallCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallCache")
            .field("policy", &self.policy)
            .field("entries", &self.ready_entries())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(owf: &str, n: i64) -> CacheKey {
        CacheKey::for_call(owf, &[Value::Int(n)])
    }

    fn complete_miss(cache: &CallCache, k: &CacheKey, v: Value) {
        match cache.lookup_call(k) {
            CallLookup::Miss(flight) => flight.complete(&v),
            _ => panic!("expected a miss"),
        }
    }

    #[test]
    fn hit_after_complete_miss() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(10));
        match cache.lookup_call(&key("F", 1)) {
            CallLookup::Hit { value: v, .. } => assert_eq!(v, Value::Int(10)),
            _ => panic!("expected a hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), Some(0.5));
    }

    #[test]
    fn distinct_args_are_distinct_keys() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(10));
        assert!(matches!(
            cache.lookup_call(&key("F", 2)),
            CallLookup::Miss(_)
        ));
        assert!(matches!(
            cache.lookup_call(&CacheKey::for_call("G", &[Value::Int(1)])),
            CallLookup::Miss(_)
        ));
    }

    #[test]
    fn dropped_flight_releases_and_caches_nothing() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        match cache.lookup_call(&key("F", 1)) {
            CallLookup::Miss(flight) => drop(flight), // error path
            _ => panic!("expected a miss"),
        }
        // The key is cold again — a new leader can begin.
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Miss(_)
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let policy = CachePolicy {
            capacity: 2,
            shards: 1,
            ..Default::default()
        };
        let cache = CallCache::new(policy, 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        complete_miss(&cache, &key("F", 2), Value::Int(2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
        complete_miss(&cache, &key("F", 3), Value::Int(3));
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup_call(&key("F", 3)),
            CallLookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup_call(&key("F", 2)),
            CallLookup::Miss(_)
        ));
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn ttl_expires_in_model_time() {
        // 1 model second at scale 0.001 = 1 ms of wall time.
        let policy = CachePolicy {
            ttl_model_secs: Some(1.0),
            ..Default::default()
        };
        let cache = CallCache::new(policy, 0.001);
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Miss(_)
        ));
    }

    #[test]
    fn ttl_ignored_at_zero_time_scale() {
        let policy = CachePolicy {
            ttl_model_secs: Some(0.0001),
            ..Default::default()
        };
        let cache = CallCache::new(policy, 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
    }

    #[test]
    fn begin_run_resets_stats_and_clears_per_run_entries() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        cache.begin_run();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Miss(_)
        ));
    }

    #[test]
    fn begin_run_keeps_cross_run_entries() {
        let cache = CallCache::new(CachePolicy::cross_run(), 0.0);
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        cache.begin_run();
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
        assert_eq!(cache.stats().hits, 1, "stats still reset per run");
    }

    #[test]
    fn single_flight_disabled_never_waits() {
        let policy = CachePolicy {
            single_flight: false,
            ..Default::default()
        };
        let cache = CallCache::new(policy, 0.0);
        // Two concurrent "misses" on one key are both told to call.
        let first = cache.lookup_call(&key("F", 1));
        let second = cache.lookup_call(&key("F", 1));
        assert!(matches!(first, CallLookup::Miss(_)));
        assert!(matches!(second, CallLookup::Miss(_)));
    }

    #[test]
    fn single_flight_waiters_get_leader_value() {
        let cache = Arc::new(CallCache::new(CachePolicy::default(), 0.0));
        let k = key("F", 7);
        let CallLookup::Miss(flight) = cache.lookup_call(&k) else {
            panic!("leader must miss");
        };
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            waiters.push(std::thread::spawn(move || match cache.lookup_call(&k) {
                CallLookup::Hit { value: v, .. } => v,
                _ => panic!("waiter must resolve to the leader's value"),
            }));
        }
        // Give the waiters time to park on the latch.
        std::thread::sleep(Duration::from_millis(30));
        flight.complete(&Value::Int(77));
        for w in waiters {
            assert_eq!(w.join().unwrap(), Value::Int(77));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.dedup_waits, 4);
    }

    #[test]
    fn failed_leader_sends_waiters_into_retry() {
        let cache = Arc::new(CallCache::new(CachePolicy::default(), 0.0));
        let k = key("F", 9);
        let CallLookup::Miss(flight) = cache.lookup_call(&k) else {
            panic!("leader must miss");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            std::thread::spawn(move || matches!(cache.lookup_call(&k), CallLookup::Retry))
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(flight); // leader's call failed
        assert!(waiter.join().unwrap(), "waiter must be told to retry");
    }

    #[test]
    fn rows_memo_round_trips() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        let param = crate::wire::encode_tuple(&Tuple::new(vec![Value::Int(5)]));
        let k = CacheKey::for_rows("pf:PF1:10:abcd", &param);
        assert!(cache.peek_rows(&k, None).is_none());
        let rows = Arc::new(vec![Tuple::new(vec![Value::str("a")])]);
        cache.insert_rows(&k, Arc::clone(&rows), None);
        assert_eq!(cache.peek_rows(&k, None).as_deref(), Some(rows.as_ref()));
    }

    #[test]
    fn scoped_lookups_attribute_cross_query_hits() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        let a = CacheScope::default();
        a.reset(1);
        let b = CacheScope::default();
        b.reset(2);
        // Query 1 produces the entry.
        match cache.lookup_call_for(&key("F", 1), Some(&a)) {
            CallLookup::Miss(flight) => flight.complete(&Value::Int(10)),
            _ => panic!("expected a miss"),
        }
        // Query 1 re-reading its own entry is a plain hit.
        assert!(matches!(
            cache.lookup_call_for(&key("F", 1), Some(&a)),
            CallLookup::Hit { .. }
        ));
        // Query 2 reading query 1's entry is a cross-query hit.
        assert!(matches!(
            cache.lookup_call_for(&key("F", 1), Some(&b)),
            CallLookup::Hit { .. }
        ));
        let sa = a.snapshot(0);
        let sb = b.snapshot(0);
        assert_eq!((sa.misses, sa.hits, sa.cross_query_hits), (1, 1, 0));
        assert_eq!((sb.misses, sb.hits, sb.cross_query_hits), (0, 1, 1));
        assert_eq!(cache.stats().cross_query_hits, 1);
        // Scope sums equal the cache-global counters.
        let total = cache.stats();
        assert_eq!(sa.hits + sb.hits, total.hits);
        assert_eq!(sa.misses + sb.misses, total.misses);
    }

    #[test]
    fn rows_memo_attributes_cross_query_reads() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        let a = CacheScope::default();
        a.reset(7);
        let b = CacheScope::default();
        b.reset(8);
        let param = crate::wire::encode_tuple(&Tuple::new(vec![Value::Int(5)]));
        let k = CacheKey::for_rows("pf:PF1:10:abcd", &param);
        let rows = Arc::new(vec![Tuple::new(vec![Value::str("a")])]);
        cache.insert_rows(&k, rows, Some(&a));
        assert!(cache.peek_rows(&k, Some(&a)).is_some());
        assert_eq!(a.snapshot(0).cross_query_hits, 0);
        assert!(cache.peek_rows(&k, Some(&b)).is_some());
        assert_eq!(b.snapshot(0).cross_query_hits, 1);
    }

    #[test]
    fn overlapping_runs_share_one_busy_period() {
        let cache = CallCache::new(CachePolicy::default(), 0.0);
        cache.begin_run();
        complete_miss(&cache, &key("F", 1), Value::Int(1));
        // A second overlapping run neither clears entries nor counters.
        cache.begin_run();
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Hit { .. }
        ));
        assert_eq!(cache.stats().misses, 1);
        cache.end_run();
        cache.end_run();
        // Idle again: the next run starts a fresh busy period.
        cache.begin_run();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(matches!(
            cache.lookup_call(&key("F", 1)),
            CallLookup::Miss(_)
        ));
        cache.end_run();
        // Unbalanced historical callers saturate at zero.
        cache.end_run();
        cache.begin_run();
        cache.end_run();
    }

    #[test]
    fn pf_digest_separates_bodies_and_names() {
        let a = pf_digest("PF1", b"body-a");
        let b = pf_digest("PF1", b"body-b");
        let c = pf_digest("PF2", b"body-a");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, pf_digest("PF1", b"body-a"));
    }
}
